//! Minimal offline stand-in for the `bytes` crate.
//!
//! The workspace vendors the tiny subset of the `bytes` API it actually
//! uses (length-prefixed framing in `pasn-net::wire` and the wire-format
//! property tests): [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`]
//! accessor traits.  Semantics match the real crate for this subset; the
//! zero-copy internals are intentionally not reproduced.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Remaining (unread) length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Splits off and returns the first `len` remaining bytes.
    pub fn split_to(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + len,
        };
        self.start += len;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads and consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32;

    /// Reads and consumes a single byte.
    fn get_u8(&mut self) -> u8;

    /// Consumes `len` bytes and returns them as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32(&mut self) -> u32 {
        let raw: [u8; 4] = self.as_slice()[..4].try_into().expect("4 bytes remain");
        self.start += 4;
        u32::from_be_bytes(raw)
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.as_slice()[0];
        self.start += 1;
        b
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.split_to(len)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32);

    /// Appends a single byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a byte slice.
    fn put_slice(&mut self, data: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut out = BytesMut::new();
        out.put_u32(5);
        out.put_slice(b"hello");
        out.put_u8(7);
        assert_eq!(out.len(), 10);
        let mut buf = out.freeze();
        assert_eq!(buf.remaining(), 10);
        assert_eq!(buf.get_u32(), 5);
        assert_eq!(buf.copy_to_bytes(5).as_ref(), b"hello");
        assert_eq!(buf.get_u8(), 7);
        assert!(buf.is_empty());
    }
}
