//! Offline stand-in for `serde`.
//!
//! The workspace annotates a few metric/config structs with
//! `#[derive(Serialize, Deserialize)]` so downstream users can persist them,
//! but nothing in-tree serialises through serde.  This shim re-exports
//! no-op derive macros with the same names so those annotations compile
//! without network access; swapping the path dependency for the crates.io
//! release restores real serialisation.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
