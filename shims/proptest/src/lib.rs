//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, integer-range and
//! `any::<T>()` strategies, `collection::vec`, a character-class regex
//! subset for string strategies (`"[a-z][a-zA-Z0-9]{0,12}"`), and the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] macros.  Generation is
//! deterministic per test (seeded from the test name); there is no
//! shrinking — a failing case panics with the ordinary assert message.

#![forbid(unsafe_code)]

/// Per-test configuration (`ProptestConfig` in the real crate).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG used by all strategies.
pub mod test_runner {
    /// xoshiro256** seeded from a splitmix64 expansion of the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Builds the RNG for a named test, deterministically.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                state: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform sample below `bound` (which must be non-zero).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }
    }
}

/// The strategy abstraction: a deterministic value generator.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeFrom, RangeInclusive};
    use std::sync::Arc;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates the leaves, and
        /// `recurse` wraps an inner strategy into the next level, up to
        /// `depth` levels.  (The size-hint parameters of the real crate are
        /// accepted but unused.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = BoxedStrategy(Arc::new(self));
            for _ in 0..depth {
                current = BoxedStrategy(Arc::new(recurse(current.clone())));
            }
            current
        }
    }

    /// A cheaply cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }

        /// Boxes one alternative (used by the `prop_oneof!` macro).
        pub fn boxed<S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn Strategy<Value = V>> {
            Box::new(s)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).generate(rng)
                }
            }
        )*};
    }

    impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_128_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start);
                    self.start.wrapping_add((rng.next_u128() % span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    match end.abs_diff(start).checked_add(1) {
                        Some(span) => start.wrapping_add((rng.next_u128() % span) as $t),
                        // Full domain: every 128-bit pattern is valid.
                        None => rng.next_u128() as $t,
                    }
                }
            }

            impl Strategy for RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).generate(rng)
                }
            }
        )*};
    }

    impl_128_strategies!(u128, i128);

    /// `any::<T>()` strategy.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            rng.next_u128()
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            rng.next_u128() as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// String strategy from a regex subset: a sequence of literal characters
    /// and character classes (`[a-zA-Z0-9_.:@-]`), each optionally repeated
    /// with `{n}` or `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (chars, min, max) in &atoms {
                let n = *min + rng.below((*max - *min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .expect("unterminated character class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "invalid class range {lo}-{hi}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repetition lower bound"),
                        n.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!class.is_empty(), "empty character class");
            atoms.push((class, min, max));
        }
        atoms
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };

    /// Namespace alias so `prop::collection::vec` works as in the real crate.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Union::boxed($strategy) ),+
        ])
    };
}

/// Property assertion (plain `assert!` — the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.  Expands to a
/// `continue` of the case loop the [`proptest!`] macro generates.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each case draws its arguments from the given
/// strategies and runs the body `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vectors(n in 3u32..9, xs in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(xs.len() < 5);
        }

        #[test]
        fn strings_match_their_classes(s in "[a-z][a-zA-Z0-9]{0,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 13);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..4).prop_map(|x| x as u64),
            any::<bool>().prop_map(|b| if b { 100u64 } else { 200 }),
        ]) {
            prop_assert!(v < 4 || v == 100 || v == 200);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let gen = |name: &str| {
            let mut rng = crate::test_runner::TestRng::for_test(name);
            (0..4)
                .map(|_| "[a-f0-9]{4}".generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen("t"), gen("t"));
        assert_ne!(gen("t"), gen("u"));
    }
}
