//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! (nothing actually serialises through serde at runtime), so these derives
//! expand to nothing.  The real derive is restored simply by swapping the
//! path dependency for the crates.io release.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
