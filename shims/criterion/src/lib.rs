//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple wall-clock
//! measurement loop: a warm-up run, then `sample_size` timed samples whose
//! total duration is capped by `measurement_time`.  Median and mean sample
//! times are printed one line per benchmark.  No statistics, plots, or
//! baselines; swapping the path dependency for the crates.io release
//! restores the full harness.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Throughput annotation attached to a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting up to `sample_size` samples within the
    /// measurement-time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (uncounted).
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time (accepted for API compatibility; the shim
    /// always does exactly one uncounted warm-up iteration).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.name, |b| f(b, input));
        self
    }

    fn run(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, name);
        report(&full, &mut bencher.samples, self.throughput);
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<50} no samples collected");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let rate = throughput
        .map(|t| {
            let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(b) => format!("  {:>10.1} MB/s", per_sec(b) / 1e6),
                Throughput::Elements(e) => format!("  {:>10.1} elem/s", per_sec(e)),
            }
        })
        .unwrap_or_default();
    println!(
        "{name:<50} median {median:>12.3?}  mean {mean:>12.3?}  ({} samples){rate}",
        samples.len()
    );
}

/// The harness entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        };
        f(&mut bencher);
        report(name, &mut bencher.samples, None);
        self.benchmarks_run += 1;
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
        assert_eq!(c.benchmarks_run, 2);
    }
}
