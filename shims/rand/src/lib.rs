//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand` 0.8 API the workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, integer `gen_range` over
//! half-open and inclusive ranges, and [`rngs::StdRng`] backed by a
//! xoshiro256** generator seeded with splitmix64.  The stream differs from
//! upstream `rand`, but every consumer in this workspace only relies on
//! determinism (same seed, same stream), not on specific values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: raw integer and byte output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type describing how to draw a uniform sample of `T` from a range.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..n` or `1..=max`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed, as recommended by the
            // xoshiro authors for state initialisation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let x: u32 = rng.gen_range(0..10);
            assert!(x < 10);
            let y: u64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: i64 = rng.gen_range(-3..3);
            assert!((-3..3).contains(&z));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
