//! DNSSEC-style secure name resolution: the chain of trust of every answer
//! is authenticated provenance anchored at the resolver's root key.
//!
//! ```text
//! cargo run --example dnssec_chain
//! ```

use pasn::trust::{TrustEvaluator, TrustPolicy};
use pasn_overlay::dns::{Resolver, SecureDns};
use pasn_provenance::{ProvTag, VarTable};

fn main() {
    println!("== DNSSEC-style resolution as authenticated provenance ==\n");

    let mut dns = SecureDns::builder()
        .seed(2008)
        .zone("org", ".")
        .zone("com", ".")
        .zone("example.org", "org")
        .zone("cdn.example.org", "example.org")
        .address("com", "registry.com", 0x0102_0304)
        .address("example.org", "www.example.org", 0x0a01_0001)
        .address("cdn.example.org", "edge1.cdn.example.org", 0x0a02_0001)
        .build()
        .expect("hierarchy builds");
    println!("zones: {:?}\n", dns.zone_names());

    let resolver = Resolver::anchored_at(&dns).expect("root key known");

    for name in ["www.example.org", "edge1.cdn.example.org", "registry.com"] {
        let res = resolver.resolve(&dns, name).expect("resolution validates");
        println!(
            "{name} -> {:#010x} via {} zone(s):",
            res.address,
            res.chain.len()
        );
        print!("{}", res.render_chain());

        // The answer's provenance tree, rooted at the trust anchor.
        let graph = res.provenance_graph();
        let root = graph
            .find(&format!("resolved({name},{})", res.address))
            .expect("answer node");
        println!("{}", graph.render_tree(root));
    }

    // Trust management over the chain: accept only answers vouched for by
    // the .org registry.
    let res = resolver.resolve(&dns, "www.example.org").unwrap();
    let org = dns.zone("org").unwrap().principal.0;
    let var_table = VarTable::new();
    let evaluator = TrustEvaluator::new(&var_table, Default::default());
    let decision = evaluator.evaluate(
        &ProvTag::Vote(res.vote()),
        &TrustPolicy::TrustedPrincipals([org].into_iter().collect()),
    );
    println!("policy \"answer must involve the org registry\": {decision:?}\n");

    // Attacks are detected, not silently accepted.
    dns.tamper_address("example.org", "www.example.org", 0xdead_beef)
        .expect("record exists");
    match resolver.resolve(&dns, "www.example.org") {
        Err(e) => println!("after an on-path rewrite of the A record: {e}"),
        Ok(_) => unreachable!("tampered record must not validate"),
    }

    let mut dns2 = SecureDns::builder()
        .seed(2008)
        .zone("org", ".")
        .zone("example.org", "org")
        .address("example.org", "www.example.org", 0x0a01_0001)
        .build()
        .unwrap();
    dns2.substitute_zone_key("example.org", 1).unwrap();
    let resolver2 = Resolver::anchored_at(&dns2).unwrap();
    match resolver2.resolve(&dns2, "www.example.org") {
        Err(e) => println!("after a key-substitution attack on example.org: {e}"),
        Ok(_) => unreachable!("unendorsed key must not validate"),
    }
}
