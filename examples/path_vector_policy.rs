//! Path-vector routing with import policies — the BGP-flavoured
//! trust-management use case of Section 3: the path carried by every route
//! is its provenance, and a node accepts a route only if its origins satisfy
//! the local policy.
//!
//! ```text
//! cargo run --example path_vector_policy
//! ```

use pasn::prelude::*;
use pasn::{baseline, workload};

fn main() {
    println!("== path-vector routing with provenance-based import policies ==\n");

    let topology = workload::evaluation_topology(8, 77);
    println!(
        "topology: {} nodes, {} directed links (average out-degree {:.1})\n",
        topology.node_count(),
        topology.link_count(),
        topology.average_out_degree()
    );

    // Node 0 distrusts node 3: it refuses every route whose path traverses it.
    let banned = 3u32;
    let mut network = SecureNetwork::builder()
        .program(pasn::programs::path_vector_policy())
        .topology(topology.clone())
        .config(EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu()))
        .fact(
            Value::Addr(0),
            Tuple::new("avoid", vec![Value::Addr(0), Value::Addr(banned)]),
        )
        .build()
        .expect("program compiles");
    let metrics = network.run().expect("fixpoint reached");
    println!(
        "fixpoint in {} messages / {:.1} KB\n",
        metrics.messages,
        metrics.bytes as f64 / 1_000.0
    );

    let learned = network.query(&Value::Addr(0), "route");
    let accepted = network.query(&Value::Addr(0), "acceptedRoute");
    println!(
        "node n0 learned {} routes, accepted {} after filtering paths through n{banned}\n",
        learned.len(),
        accepted.len()
    );

    println!("accepted routes at n0:");
    for (tuple, _) in &accepted {
        let dst = tuple.values[1].as_addr().unwrap();
        let path: Vec<String> = tuple.values[2]
            .as_list()
            .unwrap()
            .iter()
            .map(|v| format!("n{}", v.as_addr().unwrap()))
            .collect();
        println!("  to n{dst}: {}", path.join(" -> "));
    }

    println!("\nrejected routes (their path names the distrusted origin):");
    for (tuple, _) in &learned {
        let path = tuple.values[2].as_list().unwrap();
        if path.contains(&Value::Addr(banned)) {
            let dst = tuple.values[1].as_addr().unwrap();
            let rendered: Vec<String> = path
                .iter()
                .map(|v| format!("n{}", v.as_addr().unwrap()))
                .collect();
            println!("  to n{dst}: {}", rendered.join(" -> "));
        }
    }

    // Sanity check against the imperative oracle: every accepted route is a
    // real loop-free path of the topology.
    let mut verified = 0;
    for (tuple, _) in &accepted {
        let nodes: Vec<pasn_net::NodeId> = tuple.values[2]
            .as_list()
            .unwrap()
            .iter()
            .map(|v| pasn_net::NodeId(v.as_addr().unwrap()))
            .collect();
        assert!(baseline::is_loop_free(&nodes));
        verified += 1;
    }
    println!("\nall {verified} accepted routes are loop-free paths of the topology");
}
