//! Trust management over condensed and quantifiable provenance (Section 3,
//! "Trust Management" and Sections 4.4–4.5).
//!
//! A node decides whether to accept routing updates based on the *origins*
//! recorded in their provenance: a set of trusted principals, a minimum
//! security level, or a K-of-N vote.
//!
//! ```text
//! cargo run --example trust_management
//! ```

use pasn::prelude::*;
use std::collections::{BTreeSet, HashMap};

fn main() {
    // A small ring plus chords; node 3 will be treated as untrusted.
    let topology = Topology::random_out_degree(6, 3, 5, 7);

    let mut config = EngineConfig::sendlog_prov().with_cost_model(CostModel::zero_cpu());
    // Security levels for quantifiable provenance: node 0 is a highly trusted
    // border router (level 3), nodes 1-2 are ordinary (level 2), the rest are
    // low-trust edge nodes (level 1).
    config = config
        .with_security_level(0, 3)
        .with_security_level(1, 2)
        .with_security_level(2, 2);
    let levels: HashMap<u32, u8> = [(0u32, 3u8), (1, 2), (2, 2), (3, 1), (4, 1), (5, 1)]
        .into_iter()
        .collect();

    let mut network = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("program compiles");
    network.run().expect("fixpoint reached");

    let evaluator = TrustEvaluator::new(network.var_table(), levels);

    let trusted: BTreeSet<u32> = [0u32, 1, 2].into_iter().collect();
    let policies = vec![
        TrustPolicy::TrustedPrincipals(trusted),
        TrustPolicy::MinTrustLevel(2),
        TrustPolicy::KOfN(2),
    ];

    println!("== trust management over condensed provenance ==\n");
    println!("policies applied by node n0 to its own routing state:\n");

    let entries = network.query(&Value::Addr(0), "reachable");
    for policy in &policies {
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        println!("policy: {policy}");
        for (tuple, meta) in &entries {
            let decision = evaluator.evaluate(&meta.tag, policy);
            match decision {
                TrustDecision::Accept => accepted += 1,
                _ => rejected += 1,
            }
            println!(
                "  {:<22} {:<18} origins {:?} -> {:?}",
                tuple.to_string(),
                meta.tag.render(network.var_table()),
                evaluator.origins(&meta.tag),
                decision
            );
        }
        println!("  => {accepted} accepted, {rejected} rejected\n");
    }

    println!(
        "A tuple is accepted by the TrustedPrincipals policy whenever *some* derivation\n\
         relies only on trusted origins — exactly the paper's example where <a + a*b>\n\
         condenses to <a> and b becomes inconsequential."
    );
}
