//! Forensics: offline provenance and distributed traceback (Section 3,
//! "Forensics"; Section 4.1–4.2).
//!
//! The deployment keeps *distributed* provenance (per-node pointer records,
//! the IP-traceback analogy) plus an *offline* archive that outlives the
//! soft-state tuples.  After the routes expire we can still answer "where did
//! this routing entry come from?" with a distributed traceback query.
//!
//! ```text
//! cargo run --example forensics_traceback
//! ```

use pasn::prelude::*;
use pasn::{accountability::AccountabilityReport, forensics};

fn main() {
    let topology = Topology::random_out_degree(8, 3, 5, 21);

    let mut config = EngineConfig::sendlog()
        .with_cost_model(CostModel::zero_cpu())
        .with_graph_mode(GraphMode::Distributed)
        .with_default_ttl_us(2_000_000); // routes live for 2 simulated seconds
    config.archive_offline = true;

    let mut network = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("program compiles");
    let metrics = network.run().expect("fixpoint reached");
    println!("== forensic traceback over distributed + offline provenance ==\n");
    println!(
        "deployment ran to fixpoint: {} messages, {:.1} KB, {} derivations\n",
        metrics.messages,
        metrics.bytes as f64 / 1_000.0,
        metrics.derivations
    );

    // Pick a multi-hop routing entry at node n0 to investigate.
    let start = Value::Addr(0);
    let target = network
        .query(&start, "reachable")
        .into_iter()
        .map(|(t, _)| t)
        .max_by_key(|t| t.values[1].clone())
        .expect("node 0 reaches someone");
    let key = target.render_located(Some(0));

    // Online investigation (while the route is still alive).
    let report = forensics::investigate(&network, &start, &key);
    println!("traceback of {key} (online):");
    println!(
        "  visited {} provenance entries",
        report.traceback.visited.len()
    );
    println!("  crossed {} node boundaries", report.traceback.remote_hops);
    println!(
        "  grounded in {} base link tuples",
        report.traceback.base_tuples.len()
    );
    println!("  archived derivation records: {}\n", report.archived.len());

    // Time passes; the soft-state routes expire.
    let dropped = network.expire(SimTime::from_secs_f64(60.0));
    println!("after 60 simulated seconds, {dropped} soft-state tuples expired");
    println!(
        "  live reachable tuples at n0: {}",
        network.query(&start, "reachable").len()
    );

    // Offline investigation: the archive still answers.
    let offline = forensics::investigate(&network, &start, &key);
    println!(
        "  offline archive still holds {} derivation records for {key}\n",
        offline.archived.len()
    );

    // Accountability: who generated the traffic? (PlanetFlow analogue.)
    let audit = AccountabilityReport::collect(&network);
    println!("per-principal accountability report (top 3 senders):");
    for usage in audit.top_senders(3) {
        println!(
            "  {:<6} sent {:>8} bytes, asserted {:>4} derivations",
            usage.location.to_string(),
            usage.bytes_sent,
            usage.derivations
        );
    }
}
