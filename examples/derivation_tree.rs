//! Reproduces the derivation trees of Figures 1 and 2.
//!
//! Figure 1 shows the NDlog derivation tree for `reachable(@a,c)` on the
//! three-node example network; Figure 2 shows the SeNDlog version where every
//! node is asserted by a principal and the tuple carries a condensed
//! provenance annotation (`<a + a*b>` condensing to `<a>`).
//!
//! ```text
//! cargo run --example derivation_tree
//! ```

use pasn::prelude::*;

fn main() {
    let topology = Topology::paper_figure1();

    // ---- Figure 1: NDlog derivation tree -------------------------------
    let mut plain = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology.clone())
        .config(
            EngineConfig::ndlog()
                .with_cost_model(CostModel::zero_cpu())
                .with_graph_mode(GraphMode::Local),
        )
        .build()
        .expect("program compiles");
    plain.run().expect("fixpoint reached");

    let a = Value::Addr(0);
    let graph = plain
        .provenance_graph(&a)
        .expect("local provenance recorded");
    let root = graph
        .find("reachable(@n0,n2)")
        .expect("reachable(a,c) derived at a");

    println!("== Figure 1: NDlog derivation tree for reachable(@a,c) ==");
    println!("(node a = n0, b = n1, c = n2)\n");
    println!("{}", graph.render_tree(root));
    println!(
        "why-provenance: {}  ({} alternative derivations over {} base tuples)\n",
        graph.why_provenance(root),
        graph.node(root).derivations.len(),
        graph.base_support(root).len(),
    );

    // ---- Figure 2: SeNDlog tree with condensed provenance ---------------
    let mut secure = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(
            EngineConfig::sendlog_prov()
                .with_cost_model(CostModel::zero_cpu())
                .with_graph_mode(GraphMode::Local),
        )
        .build()
        .expect("program compiles");
    secure.run().expect("fixpoint reached");

    println!("== Figure 2: SeNDlog derivation tree with condensed provenance ==\n");
    let graph = secure
        .provenance_graph(&a)
        .expect("local provenance recorded");
    let root = graph.find("reachable(@n0,n2)").expect("derived");
    println!("{}", graph.render_tree(root));

    println!("condensed annotations (the <...> field of Figure 2):");
    for (tuple, meta) in secure.query(&a, "reachable") {
        println!("  {}  {}", tuple, meta.tag.render(secure.var_table()));
    }
    println!();
    println!(
        "reachable(a,c) has provenance a + a*b over principals, which the BDD\n\
         encoding condenses to {} — principal b is inconsequential once a is trusted.",
        secure
            .render_provenance(
                &a,
                &Tuple::new("reachable", vec![Value::Addr(0), Value::Addr(2)])
            )
            .expect("annotation available")
    );
}
