//! Quickstart: deploy the paper's three-node example network (Figure 1),
//! run the reachability query with authenticated, condensed provenance, and
//! inspect the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pasn::prelude::*;

fn main() {
    // The Figure 1 network: nodes a (n0), b (n1), c (n2) and unidirectional
    // links a→b, a→c, b→c.
    let topology = Topology::paper_figure1();

    // SeNDLogProv configuration: every inter-node tuple is RSA-signed and
    // carries BDD-condensed provenance (Sections 4.3 and 4.4).
    let config = EngineConfig::sendlog_prov();

    let mut network = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("the built-in program compiles");

    let metrics = network.run().expect("fixpoint reached");

    println!("== provenance-aware secure network: quickstart ==\n");
    println!(
        "query completion time : {:.3} s (simulated)",
        metrics.completion_secs()
    );
    println!(
        "bandwidth utilization  : {:.1} KB",
        metrics.bytes as f64 / 1_000.0
    );
    println!(
        "messages / signatures  : {} / {}",
        metrics.messages, metrics.signatures
    );
    println!();

    println!("reachable tuples and their condensed provenance:");
    for (location, tuple, meta) in network.query_all("reachable") {
        let provenance = meta.tag.render(network.var_table());
        println!("  at {location}: {tuple}  {provenance}");
    }
    println!();

    // Trust management: node c trusts only principal a (p0).  The tuple
    // reachable(a, c) condenses to <p0>, so it is accepted even though one of
    // its derivations also passes through b.
    let evaluator = TrustEvaluator::new(network.var_table(), Default::default());
    let policy = TrustPolicy::TrustedPrincipals([0u32].into_iter().collect());
    let tuple = Tuple::new("reachable", vec![Value::Addr(0), Value::Addr(2)]);
    let (_, meta) = network
        .query(&Value::Addr(0), "reachable")
        .into_iter()
        .find(|(t, _)| *t == tuple)
        .expect("reachable(a,c) derived");
    println!(
        "trust policy [{policy}] on {tuple} {} -> {:?}",
        meta.tag.render(network.var_table()),
        evaluator.evaluate(&meta.tag, &policy)
    );
}
