//! Real-time diagnostics: route-flap detection plus online provenance
//! diagnosis (Section 3, "Real-time Diagnostics").
//!
//! A SeNDlog monitoring query counts route updates per destination; when a
//! destination's update rate exceeds a threshold within a sliding window, an
//! alarm fires and the online provenance of the flapping entry is queried to
//! locate the origin of the instability.
//!
//! ```text
//! cargo run --example diagnostics_monitor
//! ```

use pasn::diagnostics::{diagnose, update_counts, FlapMonitor};
use pasn::prelude::*;
use pasn::workload;

fn main() {
    println!("== real-time diagnostics: route-flap detection ==\n");

    // ---- 1. The imperative sliding-window monitor -----------------------
    // Node n0 receives a stream of routing updates; destination n3 flaps.
    let destinations: Vec<NodeId> = (1..6).map(NodeId).collect();
    let updates = workload::route_update_stream(NodeId(0), &destinations, NodeId(3), 8, 42);
    println!(
        "synthetic update stream: {} updates, per-destination counts {:?}\n",
        updates.len(),
        update_counts(&updates)
    );

    let mut monitor = FlapMonitor::new(SimTime::from_secs_f64(30.0), 3);
    let mut alarm = None;
    for (i, update) in updates.iter().enumerate() {
        let dest = update.value(1).unwrap().clone();
        let key = format!("bestPath(@n0,{dest})");
        if let Some(a) = monitor.record(&key, SimTime::from_secs_f64(i as f64)) {
            alarm = Some(a);
            break;
        }
    }
    let alarm = alarm.expect("the flapping destination trips the threshold");
    println!(
        "ALARM: {} changed {} times within the window (t = {})\n",
        alarm.key, alarm.changes, alarm.at
    );

    // ---- 2. The declarative counterpart ---------------------------------
    // The same detection expressed as the paper's continuous SeNDlog query:
    // updateCount/alarm rules with a COUNT aggregate and a threshold filter.
    let locations: Vec<Value> = (0..6).map(Value::Addr).collect();
    let mut network = SecureNetwork::builder()
        .program(pasn::programs::route_monitor())
        .locations(locations)
        .config(EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu()))
        .fact(
            Value::Addr(0),
            Tuple::new("threshold", vec![Value::Addr(0), Value::Int(3)]),
        )
        .build()
        .expect("program compiles");
    for update in &updates {
        network
            .engine_mut()
            .insert_fact(Value::Addr(0), update.clone())
            .expect("known location");
    }
    network.run().expect("fixpoint reached");
    println!("declarative monitor results at n0:");
    for (tuple, _) in network.query(&Value::Addr(0), "alarm") {
        println!("  {tuple}");
    }
    println!();

    // ---- 3. Diagnose the alarm via online provenance --------------------
    // Run the routing protocol with distributed provenance so the alarmed
    // entry can be traced back to the links it depends on.
    let topology = Topology::random_out_degree(6, 3, 5, 9);
    let mut routing = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(
            EngineConfig::ndlog()
                .with_cost_model(CostModel::zero_cpu())
                .with_graph_mode(GraphMode::Distributed),
        )
        .build()
        .expect("program compiles");
    routing.run().expect("fixpoint reached");

    let routing_alarm = pasn::diagnostics::FlapAlarm {
        key: "reachable(@n0,n3)".to_string(),
        changes: alarm.changes,
        at: alarm.at,
    };
    let diagnosis = diagnose(&routing, &Value::Addr(0), &routing_alarm);
    println!("diagnosis of {}:", diagnosis.key);
    println!("  provenance hops crossed : {}", diagnosis.provenance_hops);
    println!("  suspected origin links  :");
    for origin in diagnosis.suspected_origins.iter().take(6) {
        println!("    {origin}");
    }
    println!();

    // ---- 4. Flight-recorder forensics on a lossy deployment -------------
    // Re-run the session deployment over a faulty network with the
    // deterministic flight recorder attached: the hot-rule profile shows
    // where the simulated CPU went, and the per-link frame lifecycles show
    // how the reliability layer fought the losses.
    let mut lossy = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(workload::evaluation_topology(30, 7))
        .config(
            EngineConfig::sendlog_session()
                .with_batching()
                .with_fault_plan(FaultPlan::new(41))
                .with_tracing(TraceConfig::new()),
        )
        .build()
        .expect("program compiles");
    let metrics = lossy.run().expect("fixpoint reached");
    let trace = lossy.trace().expect("tracing enabled");
    println!("== flight recorder: lossy N=30 session run ==\n");
    println!(
        "{} trace events over {} of simulated time\n",
        trace.len(),
        metrics.completion
    );

    println!("hot rules by simulated CPU:");
    println!(
        "  {:<28} {:>7} {:>12} {:>9}",
        "rule", "fires", "cpu (us)", "derived"
    );
    for profile in trace.hot_rules(5) {
        println!(
            "  {:<28} {:>7} {:>12} {:>9}",
            profile.rule, profile.fires, profile.cpu_us, profile.derived
        );
    }
    println!();

    let mut lifecycles = trace.link_lifecycles();
    lifecycles.sort_by_key(|c| std::cmp::Reverse(c.dropped + c.retransmits));
    println!("loss-affected links (ship/drop/retx/ack):");
    for cycle in lifecycles.iter().filter(|c| c.dropped > 0).take(6) {
        let (src, dst) = cycle.link;
        println!(
            "  n{src:<3}-> n{dst:<3} shipped {:>3}  dropped {:>2}  retransmits {:>2}  acks {:>3}",
            cycle.shipped, cycle.dropped, cycle.retransmits, cycle.acks
        );
    }
    let dropped: u64 = lifecycles.iter().map(|c| c.dropped).sum();
    let retransmits: u64 = lifecycles.iter().map(|c| c.retransmits).sum();
    println!(
        "\ntrace totals: {dropped} drops / {retransmits} retransmits \
         (RunMetrics agrees: {} / {})",
        metrics.frames_dropped, metrics.retransmits
    );
}
