//! Runs the paper's evaluation workload — the Best-Path query — on a single
//! random topology under all three system variants (NDLog, SeNDLog,
//! SeNDLogProv) and prints the per-variant cost, i.e. one column of Figures 3
//! and 4.
//!
//! ```text
//! cargo run --release --example best_path [N]
//! ```

use pasn::prelude::*;
use pasn::workload;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("== Best-Path query over a random topology (N = {n}, avg out-degree 3) ==\n");
    let topology = workload::evaluation_topology(n, 0x1cde);
    println!(
        "topology: {} nodes, {} links, average out-degree {:.2}\n",
        topology.node_count(),
        topology.link_count(),
        topology.average_out_degree()
    );

    let mut baseline: Option<RunMetrics> = None;
    for variant in SystemVariant::ALL {
        let mut network = SecureNetwork::builder()
            .program(pasn::programs::best_path())
            .topology(topology.clone())
            .config(variant.config())
            .build()
            .expect("program compiles");
        let metrics = network.run().expect("fixpoint reached");

        print!(
            "{:<12} completion {:>8.2} s   bandwidth {:>8.3} MB   msgs {:>7}   sigs {:>7}",
            variant.name(),
            metrics.completion_secs(),
            metrics.megabytes(),
            metrics.messages,
            metrics.signatures,
        );
        if let Some(base) = &baseline {
            let (t, b) = metrics.overhead_vs(base);
            print!(
                "   (+{:.0}% time, +{:.0}% bytes vs NDLog)",
                t * 100.0,
                b * 100.0
            );
        } else {
            baseline = Some(metrics.clone());
        }
        println!();

        if variant == SystemVariant::SeNDLogProv {
            // Show a couple of best paths with their condensed provenance.
            println!("\n  sample best paths at n0 (with condensed provenance):");
            let mut rows = network.query(&Value::Addr(0), "bestPath");
            rows.sort_by_key(|(t, _)| t.values[1].clone());
            for (tuple, meta) in rows.iter().take(5) {
                println!("    {}  {}", tuple, meta.tag.render(network.var_table()));
            }
        }
    }

    println!(
        "\nThe SeNDLog and SeNDLogProv rows reproduce the overhead pattern of the paper's\n\
         Figures 3 and 4: authentication and provenance cost extra time and bandwidth, and\n\
         the relative overhead shrinks as N grows (run with a larger N to see it fall)."
    );
}
