//! Secure Chord routing over the PASN substrates (the paper's future-work
//! overlay): authenticated lookups, provenance-tracked lookup paths, and
//! K-of-N trust decisions over the principals that answered.
//!
//! ```text
//! cargo run --example secure_chord
//! ```

use pasn::trust::{TrustEvaluator, TrustPolicy};
use pasn_crypto::SaysLevel;
use pasn_overlay::chord::{ChordConfig, ChordRing};
use pasn_provenance::{ProvTag, VarTable};

fn main() {
    println!("== secure Chord routing with authenticated, provenance-tracked lookups ==\n");

    let mut ring = ChordRing::build(ChordConfig {
        nodes: 24,
        bits: 24,
        says_level: SaysLevel::Hmac,
        modulus_bits: 512,
        seed: 2024,
        successor_list_len: 3,
    })
    .expect("ring builds");
    println!(
        "built a stabilised ring of {} nodes on a 2^{} identifier space ({} says level)\n",
        ring.len(),
        ring.space().bits(),
        ring.says_level().name()
    );

    // Store a value; the insertion is signed by the inserting principal and
    // replicated on the owner's successor list.
    let publisher = ring.node_ids()[5];
    let put_trace = ring
        .put(publisher, "manifest.toml", b"[package]\nname = \"pasn\"")
        .expect("put succeeds");
    println!(
        "node {} stored \"manifest.toml\" at owner {} in {} hop(s)",
        publisher,
        put_trace.owner,
        put_trace.hop_count()
    );

    // Another node fetches it: the lookup path is authenticated hop by hop.
    let reader = ring.node_ids()[17];
    let result = ring.get(reader, "manifest.toml").expect("value found");
    println!(
        "node {} fetched it through {} hop(s); inserter = principal {}\n",
        reader,
        result.trace.hop_count(),
        result.value.inserted_by
    );

    ring.verify_lookup(&result.trace)
        .expect("every hop assertion verifies");
    println!(
        "all {} hop assertions verified ({} says proofs)",
        result.trace.hop_count(),
        ring.says_level().name()
    );

    // The lookup's provenance, as the paper's derivation-tree shape.
    let graph = ring
        .authenticated_lookup_graph(&result.trace)
        .expect("graph builds");
    let root_key = format!(
        "lookupResult({:#x},{:#x})",
        ring.space().key_id("manifest.toml").0,
        result.trace.owner.0
    );
    let root = graph.find(&root_key).expect("result node");
    println!(
        "\nauthenticated lookup provenance:\n{}",
        graph.render_tree(root)
    );

    // Trust management over the lookup path: accept the answer only if
    // enough distinct principals took part.
    let vote = result.trace.vote();
    let var_table = VarTable::new();
    let evaluator = TrustEvaluator::new(&var_table, Default::default());
    let tag = ProvTag::Vote(vote.clone());
    for k in [1, vote.count(), vote.count() + 1] {
        println!(
            "K-of-N policy (K = {k}): {:?}",
            evaluator.evaluate(&tag, &TrustPolicy::KOfN(k))
        );
    }

    // Churn: the owner departs; replicas keep the value available.
    let owner = result.trace.owner;
    ring.remove_node(owner).expect("owner departs");
    ring.stabilize();
    let after = ring.get(reader, "manifest.toml").expect("replica answers");
    println!(
        "\nafter the owner {} departed, a replica at {} still serves the value ({} hops)",
        owner,
        after.trace.owner,
        after.trace.hop_count()
    );
}
