//! Provenance semirings (Green, Karvounarakis, Tannen — PODS 2007), the
//! formal basis the paper borrows from the Orchestra system for *condensed*
//! (Section 4.4) and *quantifiable* (Section 4.5) provenance.
//!
//! A provenance semiring annotates every tuple with an element of a
//! commutative semiring; joins multiply annotations (`*`), unions of
//! alternative derivations add them (`+`).  Different semirings answer
//! different questions about the same derivations:
//!
//! | semiring | `+` | `*` | question answered |
//! |---|---|---|---|
//! | [`WhyProvenance`] | union of witness sets | pairwise union | which base tuples explain this tuple? |
//! | [`TrustLevel`] | max | min | what is the trust level of the best derivation? (paper §4.5) |
//! | [`DerivationCount`] | `+` | `×` | how many distinct derivations exist? (paper cites view maintenance counts) |
//! | [`VoteSet`] | union | union | which principals took part in some derivation? (K-of-N vote policies) |

use std::collections::BTreeSet;
use std::fmt;

/// A commutative semiring used to annotate tuples with provenance.
pub trait Semiring: Clone + PartialEq + fmt::Debug {
    /// The annotation of a tuple with no derivation (identity of `+`).
    fn zero() -> Self;
    /// The annotation of an axiomatically true tuple (identity of `*`).
    fn one() -> Self;
    /// Combine alternative derivations (the paper's `+`).
    fn plus(&self, other: &Self) -> Self;
    /// Combine joined antecedents within one derivation (the paper's `*`).
    fn times(&self, other: &Self) -> Self;
}

/// Identifier of a base (extensional) tuple, the "unique keys of base input
/// tuples" the paper builds provenance expressions from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BaseTupleId(pub u64);

impl fmt::Display for BaseTupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:x}", self.0)
    }
}

/// Why-provenance: the set of minimal witness sets of base tuples.
///
/// `a + a*b` has witnesses `{{a}, {a,b}}`; the `{a,b}` witness is absorbed by
/// `{a}`, so the minimal form is `{{a}}` — the same condensation the paper
/// performs through BDDs, kept here in set form because it is convenient for
/// assertions and small examples.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WhyProvenance {
    witnesses: BTreeSet<BTreeSet<BaseTupleId>>,
}

impl WhyProvenance {
    /// Provenance of a base tuple: a single singleton witness.
    pub fn base(id: BaseTupleId) -> Self {
        let mut w = BTreeSet::new();
        w.insert(std::iter::once(id).collect());
        WhyProvenance { witnesses: w }
    }

    /// The minimal witness sets.
    pub fn witnesses(&self) -> &BTreeSet<BTreeSet<BaseTupleId>> {
        &self.witnesses
    }

    /// All base tuples appearing in some minimal witness (the tuple's
    /// *support*; for trust decisions this is the set of principals that
    /// matter).
    pub fn support(&self) -> BTreeSet<BaseTupleId> {
        self.witnesses.iter().flatten().copied().collect()
    }

    /// Total number of base-tuple occurrences across witnesses — a size
    /// measure for the condensation experiments.
    pub fn size(&self) -> usize {
        self.witnesses.iter().map(|w| w.len()).sum()
    }

    fn minimise(mut witnesses: BTreeSet<BTreeSet<BaseTupleId>>) -> Self {
        // Absorption: drop any witness that is a superset of another.
        let snapshot: Vec<BTreeSet<BaseTupleId>> = witnesses.iter().cloned().collect();
        witnesses.retain(|w| {
            !snapshot
                .iter()
                .any(|other| other != w && other.is_subset(w))
        });
        WhyProvenance { witnesses }
    }
}

impl Semiring for WhyProvenance {
    fn zero() -> Self {
        WhyProvenance::default()
    }

    fn one() -> Self {
        let mut w = BTreeSet::new();
        w.insert(BTreeSet::new());
        WhyProvenance { witnesses: w }
    }

    fn plus(&self, other: &Self) -> Self {
        let union: BTreeSet<_> = self
            .witnesses
            .iter()
            .chain(other.witnesses.iter())
            .cloned()
            .collect();
        WhyProvenance::minimise(union)
    }

    fn times(&self, other: &Self) -> Self {
        if self.witnesses.is_empty() || other.witnesses.is_empty() {
            return WhyProvenance::zero();
        }
        let mut out = BTreeSet::new();
        for a in &self.witnesses {
            for b in &other.witnesses {
                out.insert(a.union(b).copied().collect());
            }
        }
        WhyProvenance::minimise(out)
    }
}

impl fmt::Display for WhyProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.witnesses.is_empty() {
            return write!(f, "0");
        }
        let rendered: Vec<String> = self
            .witnesses
            .iter()
            .map(|w| {
                if w.is_empty() {
                    "1".to_string()
                } else {
                    w.iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join("*")
                }
            })
            .collect();
        write!(f, "{}", rendered.join(" + "))
    }
}

/// The trust-level semiring of Section 4.5: a derivation's trust is the
/// minimum security level along its antecedents, and a tuple's trust is the
/// maximum over its alternative derivations.
///
/// The paper's example: `<a + a*b>` with `level(a)=2`, `level(b)=1` yields
/// `max(2, min(2,1)) = 2`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct TrustLevel(pub u8);

impl Semiring for TrustLevel {
    fn zero() -> Self {
        TrustLevel(0)
    }

    fn one() -> Self {
        TrustLevel(u8::MAX)
    }

    fn plus(&self, other: &Self) -> Self {
        TrustLevel(self.0.max(other.0))
    }

    fn times(&self, other: &Self) -> Self {
        TrustLevel(self.0.min(other.0))
    }
}

impl fmt::Display for TrustLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "level {}", self.0)
    }
}

/// The counting semiring: how many distinct derivations a tuple has
/// (saturating so cyclic programs cannot overflow).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct DerivationCount(pub u64);

impl Semiring for DerivationCount {
    fn zero() -> Self {
        DerivationCount(0)
    }

    fn one() -> Self {
        DerivationCount(1)
    }

    fn plus(&self, other: &Self) -> Self {
        DerivationCount(self.0.saturating_add(other.0))
    }

    fn times(&self, other: &Self) -> Self {
        DerivationCount(self.0.saturating_mul(other.0))
    }
}

impl fmt::Display for DerivationCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} derivations", self.0)
    }
}

/// The vote semiring: the set of principals that took part in any derivation
/// of the tuple.  A K-of-N trust policy ("accept an update only if over K
/// principals assert it", Section 3) checks the cardinality of this set.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VoteSet {
    principals: BTreeSet<u32>,
    /// Distinguishes "no derivation" (zero) from "derived with no principal
    /// involvement" (one); only zero annihilates under `times`.
    derivable: bool,
}

impl VoteSet {
    /// A vote cast by a single principal (a base tuple asserted by it).
    pub fn principal(id: u32) -> Self {
        VoteSet {
            principals: std::iter::once(id).collect(),
            derivable: true,
        }
    }

    /// The asserting principals.
    pub fn principals(&self) -> &BTreeSet<u32> {
        &self.principals
    }

    /// Number of distinct principals involved.
    pub fn count(&self) -> usize {
        self.principals.len()
    }

    /// True if at least `k` distinct principals are involved.
    pub fn satisfies_threshold(&self, k: usize) -> bool {
        self.derivable && self.count() >= k
    }
}

impl Semiring for VoteSet {
    fn zero() -> Self {
        VoteSet::default()
    }

    fn one() -> Self {
        VoteSet {
            principals: BTreeSet::new(),
            derivable: true,
        }
    }

    fn plus(&self, other: &Self) -> Self {
        VoteSet {
            principals: self.principals.union(&other.principals).copied().collect(),
            derivable: self.derivable || other.derivable,
        }
    }

    fn times(&self, other: &Self) -> Self {
        if !self.derivable || !other.derivable {
            return VoteSet::zero();
        }
        VoteSet {
            principals: self.principals.union(&other.principals).copied().collect(),
            derivable: true,
        }
    }
}

impl fmt::Display for VoteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}}}",
            self.principals
                .iter()
                .map(|p| format!("p{p}"))
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(id: u64) -> BaseTupleId {
        BaseTupleId(id)
    }

    #[test]
    fn why_provenance_absorption_matches_the_paper_example() {
        // a + a*b  =>  {{a}}
        let a = WhyProvenance::base(t(0));
        let b = WhyProvenance::base(t(1));
        let expr = a.plus(&a.times(&b));
        assert_eq!(expr, a);
        assert_eq!(expr.support().len(), 1);
        assert_eq!(expr.to_string(), "t0");
    }

    #[test]
    fn why_provenance_zero_and_one_laws() {
        let a = WhyProvenance::base(t(3));
        assert_eq!(a.plus(&WhyProvenance::zero()), a);
        assert_eq!(a.times(&WhyProvenance::one()), a);
        assert_eq!(a.times(&WhyProvenance::zero()), WhyProvenance::zero());
        assert_eq!(WhyProvenance::zero().to_string(), "0");
        assert_eq!(WhyProvenance::one().to_string(), "1");
    }

    #[test]
    fn why_provenance_join_of_distinct_bases() {
        let a = WhyProvenance::base(t(0));
        let b = WhyProvenance::base(t(1));
        let c = WhyProvenance::base(t(2));
        let joined = a.times(&b).plus(&c);
        assert_eq!(joined.witnesses().len(), 2);
        assert_eq!(joined.size(), 3);
        assert_eq!(joined.support().len(), 3);
        assert_eq!(joined.to_string(), "t0*t1 + t2");
    }

    #[test]
    fn trust_level_matches_paper_example() {
        // <a + a*b> with level(a)=2, level(b)=1 -> max(2, min(2,1)) = 2.
        let a = TrustLevel(2);
        let b = TrustLevel(1);
        let result = a.plus(&a.times(&b));
        assert_eq!(result, TrustLevel(2));
        assert_eq!(result.to_string(), "level 2");
    }

    #[test]
    fn derivation_count_arithmetic() {
        let two = DerivationCount(2);
        let three = DerivationCount(3);
        assert_eq!(two.plus(&three), DerivationCount(5));
        assert_eq!(two.times(&three), DerivationCount(6));
        assert_eq!(
            DerivationCount(u64::MAX).plus(&two),
            DerivationCount(u64::MAX)
        );
        assert_eq!(two.to_string(), "2 derivations");
    }

    #[test]
    fn vote_set_threshold_policy() {
        let from_a = VoteSet::principal(0);
        let from_b = VoteSet::principal(1);
        let from_c = VoteSet::principal(2);
        // The same update asserted independently by three principals.
        let votes = from_a.plus(&from_b).plus(&from_c);
        assert_eq!(votes.count(), 3);
        assert!(votes.satisfies_threshold(2));
        assert!(!votes.satisfies_threshold(4));
        assert_eq!(votes.to_string(), "{p0,p1,p2}");
        // A join chains principals rather than adding votes.
        let chained = from_a.times(&from_b);
        assert_eq!(chained.count(), 2);
        // zero annihilates joins.
        assert_eq!(chained.times(&VoteSet::zero()), VoteSet::zero());
        assert!(!VoteSet::zero().satisfies_threshold(0));
        assert!(VoteSet::one().satisfies_threshold(0));
    }

    // Generic semiring law checks, instantiated per implementation.
    fn check_laws<S: Semiring>(a: S, b: S, c: S) {
        // + commutative/associative with identity zero.
        assert_eq!(a.plus(&b), b.plus(&a));
        assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)));
        assert_eq!(a.plus(&S::zero()), a);
        // * commutative/associative with identity one and annihilator zero.
        assert_eq!(a.times(&b), b.times(&a));
        assert_eq!(a.times(&b).times(&c), a.times(&b.times(&c)));
        assert_eq!(a.times(&S::one()), a);
        assert_eq!(a.times(&S::zero()), S::zero());
    }

    proptest! {
        #[test]
        fn prop_trust_level_laws(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255) {
            check_laws(TrustLevel(a), TrustLevel(b), TrustLevel(c));
            // Distributivity holds for the (max, min) lattice semiring.
            let (a, b, c) = (TrustLevel(a), TrustLevel(b), TrustLevel(c));
            prop_assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
        }

        #[test]
        fn prop_count_laws(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
            check_laws(DerivationCount(a), DerivationCount(b), DerivationCount(c));
            let (a, b, c) = (DerivationCount(a), DerivationCount(b), DerivationCount(c));
            prop_assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
        }

        #[test]
        fn prop_why_provenance_laws(
            xs in proptest::collection::vec(0u64..6, 1..4),
            ys in proptest::collection::vec(0u64..6, 1..4),
            zs in proptest::collection::vec(0u64..6, 1..4),
        ) {
            let build = |ids: &[u64]| {
                ids.iter().fold(WhyProvenance::one(), |acc, &i| acc.times(&WhyProvenance::base(t(i))))
            };
            let (a, b, c) = (build(&xs), build(&ys), build(&zs));
            check_laws(a.clone(), b.clone(), c.clone());
            // Distributivity (holds after minimisation).
            prop_assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
            // Absorption: a + a*b == a.
            prop_assert_eq!(a.plus(&a.times(&b)), a);
        }

        #[test]
        fn prop_vote_set_laws(
            xs in proptest::collection::vec(0u32..8, 0..4),
            ys in proptest::collection::vec(0u32..8, 0..4),
            zs in proptest::collection::vec(0u32..8, 0..4),
        ) {
            let build = |ids: &[u32]| {
                ids.iter().fold(VoteSet::one(), |acc, &i| acc.times(&VoteSet::principal(i)))
            };
            check_laws(build(&xs), build(&ys), build(&zs));
        }
    }
}
