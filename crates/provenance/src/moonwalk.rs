//! Random moonwalks — sampled distributed provenance queries (Section 5).
//!
//! A full traceback query ([`crate::store::traceback`]) visits every
//! antecedent of every derivation, which for a large epidemic-style event
//! graph means touching most of the network's provenance.  The paper points
//! to *random moonwalks* (Xie et al., "Forensic analysis for epidemic attacks
//! in federated networks") as a sampling technique that avoids querying all
//! provenance: instead of the exhaustive traversal, the querier performs many
//! short, independent backward walks, each time choosing **one** antecedent
//! uniformly at random.  Because every derivation of an epidemic ultimately
//! funnels back through the origin, the origin (and the tuples close to it)
//! shows up disproportionately often among the walk endpoints, so a frequency
//! ranking over a modest number of walks identifies the source while reading
//! only a small fraction of the provenance records.
//!
//! This module implements the technique over the same per-node
//! [`DistributedStore`]s used by exhaustive traceback, so the two approaches
//! can be compared head to head (see `benches/ablation_sampling.rs` and the
//! forensics example).

use crate::semiring::BaseTupleId;
use crate::store::{AntecedentRef, DistributedStore};
use std::collections::{BTreeMap, HashMap};

/// Configuration of a moonwalk sampling run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MoonwalkConfig {
    /// Number of independent backward walks.
    pub walks: usize,
    /// Maximum number of backward steps per walk (a walk also stops when it
    /// reaches a base tuple or an unresolved antecedent).
    pub max_depth: usize,
    /// Seed for the deterministic pseudo-random choices.
    pub seed: u64,
}

impl Default for MoonwalkConfig {
    fn default() -> Self {
        MoonwalkConfig {
            walks: 64,
            max_depth: 32,
            seed: 0x6d6f6f6e,
        }
    }
}

impl MoonwalkConfig {
    /// A configuration with `walks` walks and the default depth/seed.
    pub fn with_walks(walks: usize) -> Self {
        MoonwalkConfig {
            walks,
            ..MoonwalkConfig::default()
        }
    }

    /// Builder: sets the walk depth limit.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Builder: sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of one backward walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Walk {
    /// Keys visited, in order, starting with the queried tuple.
    pub path: Vec<String>,
    /// The base tuple the walk terminated on, if it reached one.
    pub terminal_base: Option<BaseTupleId>,
    /// Number of cross-node hops the walk performed.
    pub remote_hops: usize,
}

/// Aggregate result of a moonwalk sampling run.
#[derive(Clone, Debug, Default)]
pub struct MoonwalkResult {
    /// Every individual walk, for inspection.
    pub walks: Vec<Walk>,
    /// How often each base tuple terminated a walk.
    pub base_frequency: BTreeMap<BaseTupleId, usize>,
    /// How often each intermediate key was visited across all walks.
    pub visit_frequency: BTreeMap<String, usize>,
    /// Total provenance records read (the cost the sampling is meant to
    /// bound; compare with [`crate::store::TracebackResult::visited`]).
    pub records_read: usize,
    /// Total cross-node hops across all walks.
    pub remote_hops: usize,
}

impl MoonwalkResult {
    /// The most frequently hit base tuple — the suspected origin.
    pub fn suspected_origin(&self) -> Option<BaseTupleId> {
        self.base_frequency
            .iter()
            .max_by_key(|(id, count)| (**count, std::cmp::Reverse(id.0)))
            .map(|(id, _)| *id)
    }

    /// Base tuples ranked by how often walks terminated on them, most
    /// frequent first (ties broken by id for determinism).
    pub fn ranked_origins(&self) -> Vec<(BaseTupleId, usize)> {
        let mut ranked: Vec<(BaseTupleId, usize)> = self
            .base_frequency
            .iter()
            .map(|(id, count)| (*id, *count))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        ranked
    }

    /// Fraction of walks that reached any base tuple.
    pub fn hit_rate(&self) -> f64 {
        if self.walks.is_empty() {
            return 0.0;
        }
        let hits = self
            .walks
            .iter()
            .filter(|w| w.terminal_base.is_some())
            .count();
        hits as f64 / self.walks.len() as f64
    }
}

/// A small deterministic SplitMix64 generator so the module needs no
/// external RNG dependency and results are reproducible for a given seed.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, bound)`; `bound` must be non-zero.
    fn next_index(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Runs a random-moonwalk sampling query over per-node distributed
/// provenance stores, starting from `key` held at `start_node`.
///
/// Each walk starts at the queried tuple and repeatedly steps backward to a
/// uniformly chosen antecedent of a uniformly chosen derivation, crossing to
/// the remote store when the antecedent is a
/// [`AntecedentRef::Remote`] pointer, until it reaches a base tuple, an
/// unresolved key, or the depth limit.
pub fn moonwalk(
    stores: &HashMap<String, DistributedStore>,
    start_node: &str,
    key: &str,
    config: &MoonwalkConfig,
) -> MoonwalkResult {
    let mut rng = SplitMix64::new(config.seed);
    let mut result = MoonwalkResult::default();

    for _ in 0..config.walks {
        let mut node = start_node.to_string();
        let mut current = key.to_string();
        let mut walk = Walk {
            path: vec![current.clone()],
            terminal_base: None,
            remote_hops: 0,
        };
        *result.visit_frequency.entry(current.clone()).or_default() += 1;

        for _ in 0..config.max_depth {
            let Some(store) = stores.get(&node) else {
                break;
            };
            result.records_read += 1;
            if let Some(base) = store.base_id(&current) {
                walk.terminal_base = Some(base);
                break;
            }
            let derivations = store.derivations_of(&current);
            if derivations.is_empty() {
                break;
            }
            let derivation = &derivations[rng.next_index(derivations.len())];
            if derivation.antecedents.is_empty() {
                break;
            }
            let antecedent = &derivation.antecedents[rng.next_index(derivation.antecedents.len())];
            match antecedent {
                AntecedentRef::Local(k) => {
                    current = k.clone();
                }
                AntecedentRef::Remote { location, key: k } => {
                    walk.remote_hops += 1;
                    result.remote_hops += 1;
                    node = location.clone();
                    current = k.clone();
                }
            }
            walk.path.push(current.clone());
            *result.visit_frequency.entry(current.clone()).or_default() += 1;
        }

        if let Some(base) = walk.terminal_base {
            *result.base_frequency.entry(base).or_default() += 1;
        }
        result.walks.push(walk);
    }

    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PointerDerivation;

    /// Builds a fan-in provenance shape: one origin base tuple `attack@n0`
    /// from which a chain of derived tuples spreads across `n` nodes, plus a
    /// handful of unrelated benign base tuples that only support their own
    /// local derivations.
    fn epidemic_stores(n: usize) -> HashMap<String, DistributedStore> {
        let mut stores = HashMap::new();
        let origin = BaseTupleId(1);
        let mut s0 = DistributedStore::new("n0");
        s0.record_base("attack(n0)", origin);
        s0.record_derivation(
            "infected(n0)",
            PointerDerivation {
                rule: "e1".into(),
                antecedents: vec![AntecedentRef::Local("attack(n0)".into())],
            },
        );
        stores.insert("n0".to_string(), s0);

        for i in 1..n {
            let node = format!("n{i}");
            let mut s = DistributedStore::new(node.clone());
            // Each node derives its infection from the previous node's
            // infection plus a local benign base tuple.
            let benign = BaseTupleId(100 + i as u64);
            s.record_base(&format!("benign({node})"), benign);
            s.record_derivation(
                &format!("infected({node})"),
                PointerDerivation {
                    rule: "e2".into(),
                    antecedents: vec![
                        AntecedentRef::Remote {
                            location: format!("n{}", i - 1),
                            key: format!("infected(n{})", i - 1),
                        },
                        AntecedentRef::Local(format!("benign({node})")),
                    ],
                },
            );
            stores.insert(node, s);
        }
        stores
    }

    #[test]
    fn walks_are_deterministic_for_a_seed() {
        let stores = epidemic_stores(6);
        let config = MoonwalkConfig::with_walks(32).seed(7);
        let a = moonwalk(&stores, "n5", "infected(n5)", &config);
        let b = moonwalk(&stores, "n5", "infected(n5)", &config);
        assert_eq!(a.base_frequency, b.base_frequency);
        assert_eq!(a.records_read, b.records_read);
        assert_eq!(a.walks.len(), 32);
    }

    #[test]
    fn different_seeds_still_find_the_origin() {
        let stores = epidemic_stores(5);
        for seed in [1, 2, 3, 99] {
            let config = MoonwalkConfig::with_walks(200).seed(seed);
            let result = moonwalk(&stores, "n4", "infected(n4)", &config);
            // Each walk flips a coin at every hop between continuing toward
            // the origin and stopping on a local benign base; with 200 walks
            // the origin at the end of the funnel is reached often enough to
            // appear, and every chain tuple is visited.
            assert!(
                result.base_frequency.contains_key(&BaseTupleId(1)),
                "seed {seed}"
            );
            assert!(
                result.hit_rate() > 0.9,
                "seed {seed}: {}",
                result.hit_rate()
            );
        }
    }

    #[test]
    fn origin_dominates_on_a_fan_in_graph() {
        // A star: many infected tuples all derived directly from the single
        // attack base tuple, each also joined with its own benign base.  The
        // origin should terminate roughly half the walks; each benign tuple
        // only its own small share.
        let mut stores = HashMap::new();
        let origin = BaseTupleId(1);
        let mut s0 = DistributedStore::new("n0");
        s0.record_base("attack(n0)", origin);
        stores.insert("n0".to_string(), s0);
        for i in 1..9 {
            let node = format!("n{i}");
            let mut s = DistributedStore::new(node.clone());
            s.record_base(&format!("benign({node})"), BaseTupleId(100 + i as u64));
            s.record_derivation(
                &format!("infected({node})"),
                PointerDerivation {
                    rule: "e1".into(),
                    antecedents: vec![
                        AntecedentRef::Remote {
                            location: "n0".into(),
                            key: "attack(n0)".into(),
                        },
                        AntecedentRef::Local(format!("benign({node})")),
                    ],
                },
            );
            stores.insert(node, s);
        }
        // Query several infected tuples and pool the counts the way an
        // operator chasing an epidemic would.
        let mut pooled: BTreeMap<BaseTupleId, usize> = BTreeMap::new();
        for i in 1..9 {
            let result = moonwalk(
                &stores,
                &format!("n{i}"),
                &format!("infected(n{i})"),
                &MoonwalkConfig::with_walks(50).seed(i as u64),
            );
            for (base, count) in result.base_frequency {
                *pooled.entry(base).or_default() += count;
            }
        }
        let origin_hits = pooled.get(&origin).copied().unwrap_or(0);
        let max_benign = pooled
            .iter()
            .filter(|(id, _)| **id != origin)
            .map(|(_, c)| *c)
            .max()
            .unwrap_or(0);
        assert!(
            origin_hits > max_benign * 3,
            "origin {origin_hits} vs best benign {max_benign}"
        );
    }

    #[test]
    fn records_read_is_bounded_by_walks_times_depth() {
        let stores = epidemic_stores(10);
        let config = MoonwalkConfig {
            walks: 16,
            max_depth: 4,
            seed: 3,
        };
        let result = moonwalk(&stores, "n9", "infected(n9)", &config);
        assert!(result.records_read <= 16 * 4);
        for walk in &result.walks {
            assert!(walk.path.len() <= 5);
        }
    }

    #[test]
    fn walk_on_missing_key_terminates_without_bases() {
        let stores = epidemic_stores(3);
        let result = moonwalk(
            &stores,
            "n2",
            "no-such-tuple",
            &MoonwalkConfig::with_walks(4),
        );
        assert!(result.base_frequency.is_empty());
        assert_eq!(result.hit_rate(), 0.0);
        assert_eq!(result.walks.len(), 4);
    }

    #[test]
    fn walk_on_missing_node_terminates() {
        let stores = epidemic_stores(3);
        let result = moonwalk(
            &stores,
            "absent-node",
            "infected(n2)",
            &MoonwalkConfig::with_walks(4),
        );
        assert!(result.base_frequency.is_empty());
        assert_eq!(result.records_read, 0);
    }

    #[test]
    fn ranked_origins_sorts_by_frequency_then_id() {
        let mut result = MoonwalkResult::default();
        result.base_frequency.insert(BaseTupleId(5), 3);
        result.base_frequency.insert(BaseTupleId(2), 7);
        result.base_frequency.insert(BaseTupleId(9), 3);
        let ranked = result.ranked_origins();
        assert_eq!(
            ranked,
            vec![
                (BaseTupleId(2), 7),
                (BaseTupleId(5), 3),
                (BaseTupleId(9), 3)
            ]
        );
        assert_eq!(result.suspected_origin(), Some(BaseTupleId(2)));
    }

    #[test]
    fn default_config_is_reasonable() {
        let config = MoonwalkConfig::default();
        assert!(config.walks >= 16);
        assert!(config.max_depth >= 8);
        let tweaked = MoonwalkConfig::default().max_depth(3).seed(1);
        assert_eq!(tweaked.max_depth, 3);
        assert_eq!(tweaked.seed, 1);
    }
}
