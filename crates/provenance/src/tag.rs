//! Per-tuple provenance annotations ("tags") carried by the engine.
//!
//! The engine annotates every derived tuple with a [`ProvTag`]; the variant
//! in use is chosen by the experiment configuration and corresponds to a row
//! of the paper's taxonomy:
//!
//! * [`ProvTag::None`] — plain NDlog, no provenance (the NDLog baseline of
//!   Section 6);
//! * [`ProvTag::Condensed`] — BDD-condensed local provenance over the
//!   asserting principals (Section 4.4, the SeNDLogProv configuration);
//! * [`ProvTag::Why`] — uncondensed witness sets, used by the condensation
//!   ablation to measure how much the BDD encoding saves;
//! * [`ProvTag::Trust`], [`ProvTag::Count`], [`ProvTag::Vote`] — the
//!   quantifiable-provenance semirings of Section 4.5.
//!
//! Condensed tags are canonicalised through a shared [`VarTable`] /
//! [`pasn_bdd::BddManager`], so `a + a*b` and `a` produce identical tags.

use crate::semiring::{BaseTupleId, DerivationCount, Semiring, TrustLevel, VoteSet, WhyProvenance};
use pasn_bdd::{BddManager, BddRef, BoolExpr, VarId};
use pasn_crypto::PrincipalId;
use std::collections::HashMap;
use std::fmt;

/// Which provenance annotation the engine maintains.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProvenanceKind {
    /// No provenance at all.
    #[default]
    None,
    /// Uncondensed why-provenance (witness sets of base tuples).
    Why,
    /// BDD-condensed provenance over asserting principals (Section 4.4).
    Condensed,
    /// Trust levels (max/min semiring, Section 4.5).
    Trust,
    /// Number of distinct derivations.
    Count,
    /// Set of principals involved in any derivation (K-of-N votes).
    Vote,
}

impl ProvenanceKind {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ProvenanceKind::None => "none",
            ProvenanceKind::Why => "why",
            ProvenanceKind::Condensed => "condensed",
            ProvenanceKind::Trust => "trust",
            ProvenanceKind::Count => "count",
            ProvenanceKind::Vote => "vote",
        }
    }
}

/// Maps provenance variables (principals and base-tuple keys) to BDD
/// variables and owns the shared BDD manager used for condensation.
#[derive(Debug, Default)]
pub struct VarTable {
    manager: BddManager,
    by_principal: HashMap<u32, VarId>,
    by_base: HashMap<BaseTupleId, VarId>,
    names: Vec<String>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VarTable {
            manager: BddManager::new(),
            by_principal: HashMap::new(),
            by_base: HashMap::new(),
            names: Vec::new(),
        }
    }

    /// Variable for a principal, interned on first use.
    pub fn principal_var(&mut self, principal: PrincipalId) -> VarId {
        if let Some(&v) = self.by_principal.get(&principal.0) {
            return v;
        }
        let v = self.names.len() as VarId;
        self.names.push(format!("{principal}"));
        self.by_principal.insert(principal.0, v);
        v
    }

    /// Variable for a base tuple, interned on first use.
    pub fn base_var(&mut self, base: BaseTupleId, name: impl Into<String>) -> VarId {
        if let Some(&v) = self.by_base.get(&base) {
            return v;
        }
        let v = self.names.len() as VarId;
        self.names.push(name.into());
        self.by_base.insert(base, v);
        v
    }

    /// The principal behind a BDD variable, if the variable was interned via
    /// [`VarTable::principal_var`].
    pub fn principal_of(&self, var: VarId) -> Option<PrincipalId> {
        self.by_principal
            .iter()
            .find(|(_, v)| **v == var)
            .map(|(p, _)| PrincipalId(*p))
    }

    /// Human-readable name of a variable.
    pub fn name_of(&self, var: VarId) -> &str {
        self.names
            .get(var as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// The underlying BDD manager.
    pub fn manager_mut(&mut self) -> &mut BddManager {
        &mut self.manager
    }

    /// The underlying BDD manager (shared access).
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variables have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Renders a condensed BDD as the paper's `<...>` annotation, e.g.
    /// `<a + a*b>`.  Provenance functions are monotone, so the rendering is
    /// the minimal positive sum-of-products.
    pub fn render(&self, bdd: BddRef) -> String {
        let expr = BoolExpr::monotone_from_bdd(&self.manager, bdd);
        format!("<{}>", expr.render(&|v| self.name_of(v).to_string()))
    }
}

/// Witness-encoding budget above which a [`ProvTag::Why`] tag is
/// automatically converted to its BDD-condensed form by the semiring
/// operations ([`ProvTag::times`] / [`ProvTag::plus`]).  Uncondensed
/// witness sets grow multiplicatively under joins — the exact blow-up the
/// paper's condensation (Section 4.4) exists to stop — so above this many
/// base-tuple entries the canonical BDD becomes the default
/// representation and tag memory stops scaling with derivation count.
/// Small tags stay uncondensed: the ablation's point is to measure them,
/// and below this size they are cheaper than BDD nodes.
pub const CONDENSE_WITNESS_THRESHOLD: usize = 16;

/// A per-tuple provenance annotation.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum ProvTag {
    /// No provenance maintained.
    #[default]
    None,
    /// Uncondensed why-provenance.
    Why(WhyProvenance),
    /// Condensed provenance: a canonical BDD owned by the shared
    /// [`VarTable`].
    Condensed(BddRef),
    /// Trust level of the best derivation.
    Trust(TrustLevel),
    /// Number of distinct derivations.
    Count(DerivationCount),
    /// Principals involved in the derivations.
    Vote(VoteSet),
}

impl ProvTag {
    /// The kind of this tag.
    pub fn kind(&self) -> ProvenanceKind {
        match self {
            ProvTag::None => ProvenanceKind::None,
            ProvTag::Why(_) => ProvenanceKind::Why,
            ProvTag::Condensed(_) => ProvenanceKind::Condensed,
            ProvTag::Trust(_) => ProvenanceKind::Trust,
            ProvTag::Count(_) => ProvenanceKind::Count,
            ProvTag::Vote(_) => ProvenanceKind::Vote,
        }
    }

    /// The annotation of a base tuple asserted by `principal` (whose
    /// security level is `level`), under the given provenance kind.
    pub fn base(
        kind: ProvenanceKind,
        table: &mut VarTable,
        base_id: BaseTupleId,
        base_name: &str,
        principal: PrincipalId,
        level: u8,
    ) -> ProvTag {
        match kind {
            ProvenanceKind::None => ProvTag::None,
            ProvenanceKind::Why => ProvTag::Why(WhyProvenance::base(base_id)),
            ProvenanceKind::Condensed => {
                // Condensed provenance tracks the asserting principal, which
                // is what trust decisions need (paper §4.4); the base-tuple
                // name is retained only for rendering.
                let _ = base_name;
                let var = table.principal_var(principal);
                ProvTag::Condensed(table.manager_mut().var(var))
            }
            ProvenanceKind::Trust => ProvTag::Trust(TrustLevel(level)),
            ProvenanceKind::Count => ProvTag::Count(DerivationCount(1)),
            ProvenanceKind::Vote => ProvTag::Vote(VoteSet::principal(principal.0)),
        }
    }

    /// The multiplicative identity for `kind` (used when folding joins).
    pub fn one(kind: ProvenanceKind, table: &mut VarTable) -> ProvTag {
        match kind {
            ProvenanceKind::None => ProvTag::None,
            ProvenanceKind::Why => ProvTag::Why(WhyProvenance::one()),
            ProvenanceKind::Condensed => ProvTag::Condensed(table.manager_mut().true_ref()),
            ProvenanceKind::Trust => ProvTag::Trust(TrustLevel::one()),
            ProvenanceKind::Count => ProvTag::Count(DerivationCount::one()),
            ProvenanceKind::Vote => ProvTag::Vote(VoteSet::one()),
        }
    }

    /// Join combination (`*`): both tags must have the same kind, except
    /// that `Why` and `Condensed` mix freely — an uncondensed tag meeting
    /// one that already crossed [`CONDENSE_WITNESS_THRESHOLD`] is condensed
    /// on the spot.  A `Why` result above the threshold condenses too.
    pub fn times(&self, other: &ProvTag, table: &mut VarTable) -> ProvTag {
        match (self, other) {
            (ProvTag::None, ProvTag::None) => ProvTag::None,
            (ProvTag::Why(a), ProvTag::Why(b)) => ProvTag::Why(a.times(b)).condense_if_large(table),
            (ProvTag::Condensed(a), ProvTag::Condensed(b)) => {
                ProvTag::Condensed(table.manager_mut().and(*a, *b))
            }
            (ProvTag::Why(_), ProvTag::Condensed(_)) | (ProvTag::Condensed(_), ProvTag::Why(_)) => {
                let (a, b) = (self.condensed_ref(table), other.condensed_ref(table));
                ProvTag::Condensed(table.manager_mut().and(a, b))
            }
            (ProvTag::Trust(a), ProvTag::Trust(b)) => ProvTag::Trust(a.times(b)),
            (ProvTag::Count(a), ProvTag::Count(b)) => ProvTag::Count(a.times(b)),
            (ProvTag::Vote(a), ProvTag::Vote(b)) => ProvTag::Vote(a.times(b)),
            (a, b) => panic!(
                "provenance kind mismatch in times: {:?} vs {:?}",
                a.kind(),
                b.kind()
            ),
        }
    }

    /// Alternative-derivation combination (`+`): both tags must have the
    /// same kind, with the same `Why` / `Condensed` mixing and
    /// auto-condensation rules as [`ProvTag::times`].
    pub fn plus(&self, other: &ProvTag, table: &mut VarTable) -> ProvTag {
        match (self, other) {
            (ProvTag::None, ProvTag::None) => ProvTag::None,
            (ProvTag::Why(a), ProvTag::Why(b)) => ProvTag::Why(a.plus(b)).condense_if_large(table),
            (ProvTag::Condensed(a), ProvTag::Condensed(b)) => {
                ProvTag::Condensed(table.manager_mut().or(*a, *b))
            }
            (ProvTag::Why(_), ProvTag::Condensed(_)) | (ProvTag::Condensed(_), ProvTag::Why(_)) => {
                let (a, b) = (self.condensed_ref(table), other.condensed_ref(table));
                ProvTag::Condensed(table.manager_mut().or(a, b))
            }
            (ProvTag::Trust(a), ProvTag::Trust(b)) => ProvTag::Trust(a.plus(b)),
            (ProvTag::Count(a), ProvTag::Count(b)) => ProvTag::Count(a.plus(b)),
            (ProvTag::Vote(a), ProvTag::Vote(b)) => ProvTag::Vote(a.plus(b)),
            (a, b) => panic!(
                "provenance kind mismatch in plus: {:?} vs {:?}",
                a.kind(),
                b.kind()
            ),
        }
    }

    /// Converts a `Why` tag into the equivalent canonical BDD over
    /// base-tuple variables: each witness set becomes a conjunction, the
    /// alternatives a disjunction.  `Condensed` tags pass through; other
    /// kinds have no condensed form.
    pub fn condense(&self, table: &mut VarTable) -> Option<ProvTag> {
        match self {
            ProvTag::Condensed(b) => Some(ProvTag::Condensed(*b)),
            ProvTag::Why(w) => {
                let mut acc = table.manager_mut().false_ref();
                for witness in w.witnesses() {
                    let mut cube = table.manager_mut().true_ref();
                    for id in witness {
                        let var = table.base_var(*id, format!("t{}", id.0));
                        let lit = table.manager_mut().var(var);
                        cube = table.manager_mut().and(cube, lit);
                    }
                    acc = table.manager_mut().or(acc, cube);
                }
                Some(ProvTag::Condensed(acc))
            }
            _ => None,
        }
    }

    /// The canonical BDD behind a `Why` or `Condensed` tag (condensing the
    /// former); callers guarantee the kind.
    fn condensed_ref(&self, table: &mut VarTable) -> BddRef {
        match self.condense(table).expect("tag has a condensed form") {
            ProvTag::Condensed(b) => b,
            _ => unreachable!("condense returns a condensed tag"),
        }
    }

    /// Applies the auto-condensation policy: a `Why` tag whose witness
    /// encoding exceeds [`CONDENSE_WITNESS_THRESHOLD`] base-tuple entries
    /// is replaced by its canonical BDD; everything else passes through.
    pub fn condense_if_large(self, table: &mut VarTable) -> ProvTag {
        match &self {
            ProvTag::Why(w) if w.size() > CONDENSE_WITNESS_THRESHOLD => self
                .condense(table)
                .expect("why tags always have a condensed form"),
            _ => self,
        }
    }

    /// Number of bytes this tag adds to a tuple shipped on the wire.
    ///
    /// Condensed provenance is shipped as its canonical sum-of-products over
    /// principal identifiers (4 bytes per literal plus one byte per term
    /// separator), which is the compact form the paper attributes to the BDD
    /// encoding.  Why-provenance ships every witness uncondensed (8 bytes per
    /// base-tuple key), which is what the condensation ablation compares
    /// against.
    pub fn wire_size(&self, table: &VarTable) -> usize {
        match self {
            ProvTag::None => 0,
            ProvTag::Why(w) => 2 + w.size() * 8 + w.witnesses().len(),
            ProvTag::Condensed(bdd) => {
                let expr = BoolExpr::monotone_from_bdd(table.manager(), *bdd);
                2 + expr.literal_count() * 4
            }
            ProvTag::Trust(_) => 1,
            ProvTag::Count(_) => 8,
            ProvTag::Vote(v) => 2 + v.count() * 4,
        }
    }

    /// Renders the tag as the paper's `<...>` annotation.
    pub fn render(&self, table: &VarTable) -> String {
        match self {
            ProvTag::None => "<>".to_string(),
            ProvTag::Why(w) => format!("<{w}>"),
            ProvTag::Condensed(bdd) => table.render(*bdd),
            ProvTag::Trust(t) => format!("<{t}>"),
            ProvTag::Count(c) => format!("<{c}>"),
            ProvTag::Vote(v) => format!("<{v}>"),
        }
    }

    /// Evaluates the trust level of this tag given a per-principal security
    /// level function; only meaningful for condensed tags (the quantifiable
    /// evaluation of Section 4.5) and trust tags (already a level).
    pub fn trust_level<F: Fn(u32) -> u8>(&self, table: &VarTable, level_of: F) -> Option<u8> {
        match self {
            ProvTag::Trust(t) => Some(t.0),
            ProvTag::Condensed(bdd) => {
                let expr = BoolExpr::from_bdd(table.manager(), *bdd);
                let cubes = table.manager().cubes(*bdd, 4096);
                let _ = expr;
                let mut best: Option<u8> = None;
                for cube in cubes {
                    // min over the positive literals of the cube.
                    let mut cube_level = u8::MAX;
                    for (var, positive) in cube {
                        if positive {
                            // Map back from BDD variable to principal id.
                            if let Some((pid, _)) =
                                table.by_principal.iter().find(|(_, v)| **v == var)
                            {
                                cube_level = cube_level.min(level_of(*pid));
                            }
                        }
                    }
                    best = Some(best.map_or(cube_level, |b| b.max(cube_level)));
                }
                best
            }
            _ => None,
        }
    }
}

impl fmt::Display for ProvTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvTag::None => write!(f, "<>"),
            ProvTag::Why(w) => write!(f, "<{w}>"),
            ProvTag::Condensed(b) => write!(f, "<bdd#{}>", b.index()),
            ProvTag::Trust(t) => write!(f, "<{t}>"),
            ProvTag::Count(c) => write!(f, "<{c}>"),
            ProvTag::Vote(v) => write!(f, "<{v}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: u32) -> PrincipalId {
        PrincipalId(id)
    }

    #[test]
    fn condensed_tag_reproduces_figure2_condensation() {
        let mut table = VarTable::new();
        let a = ProvTag::base(
            ProvenanceKind::Condensed,
            &mut table,
            BaseTupleId(0),
            "link(a,c)",
            p(0),
            2,
        );
        let b = ProvTag::base(
            ProvenanceKind::Condensed,
            &mut table,
            BaseTupleId(1),
            "link(a,b)",
            p(1),
            1,
        );
        // reachable(a,c) = a + a*b
        let ab = a.times(&b, &mut table);
        let expr = a.plus(&ab, &mut table);
        // Condensation: equal to plain <a>.
        assert_eq!(expr, a);
        assert_eq!(expr.render(&table), "<p0>");
        // Quantifiable trust: max(2, min(2,1)) = 2.
        let levels = |pid: u32| if pid == 0 { 2 } else { 1 };
        assert_eq!(expr.trust_level(&table, levels), Some(2));
        // The uncondensed union a + a*b would have 3 literals; condensed has 1.
        assert!(expr.wire_size(&table) < 2 + 3 * 4 + 1);
    }

    #[test]
    fn why_tag_tracks_witnesses_uncondensed_size() {
        let mut table = VarTable::new();
        let a = ProvTag::base(
            ProvenanceKind::Why,
            &mut table,
            BaseTupleId(0),
            "a",
            p(0),
            1,
        );
        let b = ProvTag::base(
            ProvenanceKind::Why,
            &mut table,
            BaseTupleId(1),
            "b",
            p(1),
            1,
        );
        let joined = a.times(&b, &mut table);
        match &joined {
            ProvTag::Why(w) => assert_eq!(w.size(), 2),
            other => panic!("unexpected tag {other:?}"),
        }
        assert!(joined.wire_size(&table) > a.wire_size(&table));
    }

    #[test]
    fn trust_count_vote_tags_follow_their_semirings() {
        let mut table = VarTable::new();
        let t2 = ProvTag::base(
            ProvenanceKind::Trust,
            &mut table,
            BaseTupleId(0),
            "a",
            p(0),
            2,
        );
        let t1 = ProvTag::base(
            ProvenanceKind::Trust,
            &mut table,
            BaseTupleId(1),
            "b",
            p(1),
            1,
        );
        assert_eq!(
            t2.plus(&t2.times(&t1, &mut table), &mut table),
            ProvTag::Trust(TrustLevel(2))
        );

        let c = ProvTag::base(
            ProvenanceKind::Count,
            &mut table,
            BaseTupleId(0),
            "a",
            p(0),
            1,
        );
        assert_eq!(c.plus(&c, &mut table), ProvTag::Count(DerivationCount(2)));

        let v0 = ProvTag::base(
            ProvenanceKind::Vote,
            &mut table,
            BaseTupleId(0),
            "a",
            p(0),
            1,
        );
        let v1 = ProvTag::base(
            ProvenanceKind::Vote,
            &mut table,
            BaseTupleId(1),
            "b",
            p(1),
            1,
        );
        match v0.plus(&v1, &mut table) {
            ProvTag::Vote(v) => assert!(v.satisfies_threshold(2)),
            other => panic!("unexpected tag {other:?}"),
        }
    }

    #[test]
    fn none_tag_is_free() {
        let mut table = VarTable::new();
        let none = ProvTag::base(
            ProvenanceKind::None,
            &mut table,
            BaseTupleId(0),
            "a",
            p(0),
            1,
        );
        assert_eq!(none.wire_size(&table), 0);
        assert_eq!(none.plus(&ProvTag::None, &mut table), ProvTag::None);
        assert_eq!(none.render(&table), "<>");
        assert_eq!(none.kind(), ProvenanceKind::None);
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn mixing_kinds_panics() {
        let mut table = VarTable::new();
        let a = ProvTag::base(
            ProvenanceKind::Trust,
            &mut table,
            BaseTupleId(0),
            "a",
            p(0),
            1,
        );
        let b = ProvTag::base(
            ProvenanceKind::Count,
            &mut table,
            BaseTupleId(1),
            "b",
            p(1),
            1,
        );
        let _ = a.times(&b, &mut table);
    }

    #[test]
    fn why_tags_condense_past_the_threshold() {
        let mut table = VarTable::new();
        // A chain join of distinct base tuples: witness size grows by one
        // per `times`, so the tag stays Why until it crosses the budget,
        // then flips to Condensed exactly once.
        let mut tag = ProvTag::base(
            ProvenanceKind::Why,
            &mut table,
            BaseTupleId(0),
            "t0",
            p(0),
            1,
        );
        for i in 1..=CONDENSE_WITNESS_THRESHOLD as u64 {
            let next = ProvTag::base(
                ProvenanceKind::Why,
                &mut table,
                BaseTupleId(i),
                "t",
                p(i as u32),
                1,
            );
            tag = tag.times(&next, &mut table);
        }
        assert_eq!(
            tag.kind(),
            ProvenanceKind::Condensed,
            "size {} tag must have condensed",
            CONDENSE_WITNESS_THRESHOLD + 1
        );
        // Further combination with uncondensed tags mixes cleanly in both
        // operand orders and through both operations.
        let small = ProvTag::base(
            ProvenanceKind::Why,
            &mut table,
            BaseTupleId(999),
            "t999",
            p(999),
            1,
        );
        assert_eq!(
            small.times(&tag, &mut table).kind(),
            ProvenanceKind::Condensed
        );
        assert_eq!(
            tag.plus(&small, &mut table).kind(),
            ProvenanceKind::Condensed
        );
    }

    #[test]
    fn condensation_preserves_the_boolean_function() {
        let mut table = VarTable::new();
        let a = ProvTag::base(
            ProvenanceKind::Why,
            &mut table,
            BaseTupleId(0),
            "a",
            p(0),
            1,
        );
        let b = ProvTag::base(
            ProvenanceKind::Why,
            &mut table,
            BaseTupleId(1),
            "b",
            p(1),
            1,
        );
        // a + a*b condenses to <a> — the same absorption the BDD performs.
        let ab = a.times(&b, &mut table);
        let expr = a.plus(&ab, &mut table);
        let condensed = expr.condense(&mut table).unwrap();
        let just_a = a.condense(&mut table).unwrap();
        assert_eq!(condensed, just_a);
        assert_eq!(condensed.render(&table), "<t0>");
        // The condensed wire form undercuts a genuinely larger witness set.
        let c = ProvTag::base(
            ProvenanceKind::Why,
            &mut table,
            BaseTupleId(2),
            "c",
            p(2),
            1,
        );
        let wide = a
            .times(&b, &mut table)
            .plus(&b.times(&c, &mut table), &mut table);
        let wide_condensed = wide.condense(&mut table).unwrap();
        assert!(wide_condensed.wire_size(&table) <= wide.wire_size(&table));
        // Non-condensable kinds report None.
        assert!(ProvTag::Trust(TrustLevel(1)).condense(&mut table).is_none());
    }

    #[test]
    fn var_table_interns_and_names() {
        let mut table = VarTable::new();
        let v0 = table.principal_var(p(7));
        let v0_again = table.principal_var(p(7));
        assert_eq!(v0, v0_again);
        let v1 = table.base_var(BaseTupleId(9), "link(a,b)");
        assert_ne!(v0, v1);
        assert_eq!(table.name_of(v0), "p7");
        assert_eq!(table.name_of(v1), "link(a,b)");
        assert_eq!(table.name_of(99), "?");
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(ProvenanceKind::Condensed.name(), "condensed");
        assert_eq!(ProvenanceKind::default(), ProvenanceKind::None);
        for kind in [
            ProvenanceKind::None,
            ProvenanceKind::Why,
            ProvenanceKind::Condensed,
            ProvenanceKind::Trust,
            ProvenanceKind::Count,
            ProvenanceKind::Vote,
        ] {
            assert!(!kind.name().is_empty());
        }
    }
}
