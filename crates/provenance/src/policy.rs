//! Maintenance policies and the optimisation knobs of Section 5.
//!
//! * **Proactive vs reactive provenance** — eagerly maintain provenance for
//!   every derivation, or defer it until a triggering event (route
//!   divergence, a forensic query) arrives.
//! * **Sampling** — record provenance for only a fraction of derivations
//!   (the IP-traceback "1/20,000 packets" idea).
//! * **Provenance granularity** — aggregate principals to their AS before
//!   recording provenance, trading per-node detail for storage.

use pasn_crypto::PrincipalId;
use std::collections::HashMap;

/// When provenance is computed and propagated (Section 5, "Proactive vs
/// reactive provenance").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MaintenanceMode {
    /// Provenance of every new tuple is maintained and propagated eagerly.
    #[default]
    Proactive,
    /// Provenance is only materialised once a triggering network event is
    /// observed (lazy provenance).
    Reactive,
}

impl MaintenanceMode {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MaintenanceMode::Proactive => "proactive",
            MaintenanceMode::Reactive => "reactive",
        }
    }
}

/// Records provenance for one out of every `one_in` derivations,
/// deterministically from the derivation's key hash so repeated runs sample
/// the same derivations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SamplingPolicy {
    /// Record one derivation out of this many (1 = record everything).
    pub one_in: u32,
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy { one_in: 1 }
    }
}

impl SamplingPolicy {
    /// Records everything.
    pub fn always() -> Self {
        SamplingPolicy { one_in: 1 }
    }

    /// IP-traceback style sampling (the paper cites 1/20,000 packets).
    pub fn one_in(n: u32) -> Self {
        SamplingPolicy { one_in: n.max(1) }
    }

    /// Decides whether the derivation identified by `key_hash` is recorded.
    pub fn records(&self, key_hash: u64) -> bool {
        if self.one_in <= 1 {
            return true;
        }
        // A cheap multiplicative hash spreads consecutive ids over buckets.
        let mixed = key_hash.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        mixed.is_multiple_of(self.one_in as u64)
    }

    /// Expected fraction of derivations recorded.
    pub fn expected_fraction(&self) -> f64 {
        1.0 / self.one_in as f64
    }
}

/// The granularity at which provenance identifies origins (Section 5,
/// "Provenance granularity").
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Granularity {
    /// Track individual nodes / principals.
    #[default]
    Node,
    /// Aggregate principals to their autonomous system: provenance variables
    /// are AS identifiers, so the expression (and the storage) shrinks while
    /// still supporting AS-level attribution.
    As {
        /// Mapping from principal to AS number; unmapped principals fall into
        /// AS 0.
        mapping: HashMap<u32, u32>,
    },
}

impl Granularity {
    /// Builds an AS-level granularity with `as_size` consecutive principals
    /// per AS (the synthetic grouping used by the ablation benchmarks).
    pub fn uniform_as(principal_count: u32, as_size: u32) -> Self {
        let as_size = as_size.max(1);
        let mapping = (0..principal_count).map(|p| (p, p / as_size)).collect();
        Granularity::As { mapping }
    }

    /// The provenance-variable identity of `principal` under this
    /// granularity: the principal itself, or its AS.
    pub fn origin_of(&self, principal: PrincipalId) -> PrincipalId {
        match self {
            Granularity::Node => principal,
            Granularity::As { mapping } => {
                PrincipalId(mapping.get(&principal.0).copied().unwrap_or(0))
            }
        }
    }

    /// Number of distinct origins this granularity can produce given
    /// `principal_count` principals.
    pub fn distinct_origins(&self, principal_count: u32) -> usize {
        match self {
            Granularity::Node => principal_count as usize,
            Granularity::As { mapping } => {
                let mut set: Vec<u32> = (0..principal_count)
                    .map(|p| mapping.get(&p).copied().unwrap_or(0))
                    .collect();
                set.sort_unstable();
                set.dedup();
                set.len()
            }
        }
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Granularity::Node => "node",
            Granularity::As { .. } => "as",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintenance_mode_names() {
        assert_eq!(MaintenanceMode::Proactive.name(), "proactive");
        assert_eq!(MaintenanceMode::Reactive.name(), "reactive");
        assert_eq!(MaintenanceMode::default(), MaintenanceMode::Proactive);
    }

    #[test]
    fn sampling_always_records_everything() {
        let p = SamplingPolicy::always();
        assert!((0..1000u64).all(|h| p.records(h)));
        assert_eq!(p.expected_fraction(), 1.0);
        assert_eq!(SamplingPolicy::default(), SamplingPolicy::always());
    }

    #[test]
    fn sampling_rate_is_approximately_honoured() {
        let p = SamplingPolicy::one_in(10);
        let recorded = (0..100_000u64).filter(|h| p.records(*h)).count();
        let fraction = recorded as f64 / 100_000.0;
        assert!(
            (0.05..0.2).contains(&fraction),
            "observed fraction {fraction}"
        );
        assert!((p.expected_fraction() - 0.1).abs() < 1e-12);
        // Deterministic across calls.
        assert_eq!(p.records(12345), p.records(12345));
        // one_in(0) is clamped to 1.
        assert!(SamplingPolicy::one_in(0).records(7));
    }

    #[test]
    fn node_granularity_is_identity() {
        let g = Granularity::Node;
        assert_eq!(g.origin_of(PrincipalId(17)), PrincipalId(17));
        assert_eq!(g.distinct_origins(50), 50);
        assert_eq!(g.name(), "node");
    }

    #[test]
    fn as_granularity_collapses_principals() {
        let g = Granularity::uniform_as(10, 4);
        // Principals 0..3 -> AS 0, 4..7 -> AS 1, 8..9 -> AS 2.
        assert_eq!(g.origin_of(PrincipalId(0)), PrincipalId(0));
        assert_eq!(g.origin_of(PrincipalId(5)), PrincipalId(1));
        assert_eq!(g.origin_of(PrincipalId(9)), PrincipalId(2));
        // Unknown principals land in AS 0.
        assert_eq!(g.origin_of(PrincipalId(99)), PrincipalId(0));
        assert_eq!(g.distinct_origins(10), 3);
        assert_eq!(g.name(), "as");
    }
}
