//! Provenance storage along the paper's taxonomy axes.
//!
//! * **Local vs distributed** (Section 4.1): [`LocalStore`] keeps the full
//!   derivation graph at the tuple's final storage node (complete provenance
//!   piggybacked with each shipped tuple); [`DistributedStore`] keeps only
//!   per-node pointer records and reconstructs provenance on demand via a
//!   recursive traceback.
//! * **Online vs offline** (Section 4.2): [`LocalStore`] entries follow the
//!   soft-state lifetime of their tuples (purged on expiry); the
//!   [`ArchiveStore`] retains snapshots beyond expiry for forensics and
//!   accountability, with an age-out policy.

use crate::graph::DerivationGraph;
use crate::key::ProvKey;
use crate::semiring::BaseTupleId;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// An *online, local* provenance store: one derivation graph per node,
/// covering currently valid tuples.
#[derive(Clone, Debug, Default)]
pub struct LocalStore {
    graph: DerivationGraph,
}

impl LocalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying derivation graph.
    pub fn graph(&self) -> &DerivationGraph {
        &self.graph
    }

    /// Mutable access for the engine's provenance hooks.
    pub fn graph_mut(&mut self) -> &mut DerivationGraph {
        &mut self.graph
    }

    /// Drops provenance of expired tuples (online provenance follows the
    /// soft-state lifetime).  Returns how many tuple nodes were purged.
    pub fn expire(&mut self, now: u64) -> usize {
        self.graph.purge_expired(now)
    }
}

/// A reference to an antecedent held by a [`DistributedStore`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AntecedentRef {
    /// The antecedent is stored at the same node.
    Local(String),
    /// The antecedent (and its provenance) lives at another node; a traceback
    /// query must visit that node to continue.
    Remote {
        /// The node holding the antecedent's provenance.
        location: String,
        /// The antecedent tuple key at that node.
        key: String,
    },
}

/// A pointer-style derivation record: enough to reconstruct provenance on
/// demand, at the cost of a distributed query (the IP-traceback analogy of
/// Section 4.1).
#[derive(Clone, Debug, PartialEq)]
pub struct PointerDerivation {
    /// Rule that fired.
    pub rule: String,
    /// Antecedents, local or remote.
    pub antecedents: Vec<AntecedentRef>,
}

/// A per-node *distributed* provenance store.
///
/// Entries are keyed by derived [`ProvKey`]s (64-bit digests of the tuple
/// identity) rather than cloned rendered strings; the rendered form only
/// travels inside [`AntecedentRef`]s, where traceback needs it for display
/// and cross-node routing.
#[derive(Clone, Debug, Default)]
pub struct DistributedStore {
    /// This node's name (matches tuple locations).
    pub node: String,
    entries: HashMap<ProvKey, Vec<PointerDerivation>>,
    bases: HashMap<ProvKey, BaseTupleId>,
}

impl DistributedStore {
    /// Creates an empty store for `node`.
    pub fn new(node: impl Into<String>) -> Self {
        DistributedStore {
            node: node.into(),
            entries: HashMap::new(),
            bases: HashMap::new(),
        }
    }

    /// Records a base tuple stored at this node.
    pub fn record_base(&mut self, key: &str, id: BaseTupleId) {
        self.bases.insert(ProvKey::from_rendered(key), id);
    }

    /// Records one derivation of `key` at this node.
    pub fn record_derivation(&mut self, key: &str, derivation: PointerDerivation) {
        let entry = self.entries.entry(ProvKey::from_rendered(key)).or_default();
        if !entry.contains(&derivation) {
            entry.push(derivation);
        }
    }

    /// Derivations of a locally stored tuple.
    pub fn derivations_of(&self, key: &str) -> &[PointerDerivation] {
        self.entries
            .get(&ProvKey::from_rendered(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True if `key` is a base tuple at this node.
    pub fn base_id(&self, key: &str) -> Option<BaseTupleId> {
        self.bases.get(&ProvKey::from_rendered(key)).copied()
    }

    /// Number of stored pointer records (per-node storage overhead metric).
    pub fn entry_count(&self) -> usize {
        self.entries.values().map(Vec::len).sum::<usize>() + self.bases.len()
    }
}

/// Result of a distributed traceback query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TracebackResult {
    /// Base tuples the queried tuple depends on.
    pub base_tuples: BTreeSet<BaseTupleId>,
    /// Keys visited, in visit order.
    pub visited: Vec<String>,
    /// Number of cross-node hops the query needed (each hop is one
    /// provenance-query message in a real deployment).
    pub remote_hops: usize,
    /// Keys whose provenance could not be resolved (missing node or entry).
    pub unresolved: Vec<String>,
}

/// Executes a traceback query over a collection of per-node
/// [`DistributedStore`]s, starting from `key` at `start_node`.
///
/// In a deployment each remote hop is a network round trip; the simulator
/// charges them through the returned [`TracebackResult::remote_hops`].
pub fn traceback(
    stores: &HashMap<String, DistributedStore>,
    start_node: &str,
    key: &str,
) -> TracebackResult {
    let mut result = TracebackResult::default();
    let mut queue: VecDeque<(String, String)> = VecDeque::new();
    let mut seen: HashSet<(String, String)> = HashSet::new();
    queue.push_back((start_node.to_string(), key.to_string()));
    seen.insert((start_node.to_string(), key.to_string()));

    while let Some((node, key)) = queue.pop_front() {
        result.visited.push(key.clone());
        let Some(store) = stores.get(&node) else {
            result.unresolved.push(key);
            continue;
        };
        if let Some(base) = store.base_id(&key) {
            result.base_tuples.insert(base);
            continue;
        }
        let derivations = store.derivations_of(&key);
        if derivations.is_empty() {
            result.unresolved.push(key);
            continue;
        }
        for d in derivations {
            for antecedent in &d.antecedents {
                match antecedent {
                    AntecedentRef::Local(k) => {
                        if seen.insert((node.clone(), k.clone())) {
                            queue.push_back((node.clone(), k.clone()));
                        }
                    }
                    AntecedentRef::Remote { location, key: k } => {
                        if seen.insert((location.clone(), k.clone())) {
                            result.remote_hops += 1;
                            queue.push_back((location.clone(), k.clone()));
                        }
                    }
                }
            }
        }
    }
    result
}

/// One archived provenance record (offline provenance, Section 4.2).
#[derive(Clone, Debug, PartialEq)]
pub struct ArchivedEntry {
    /// The tuple key.
    pub key: String,
    /// Node that stored the tuple.
    pub location: String,
    /// Rendered provenance annotation at archive time.
    pub annotation: String,
    /// Simulated time the tuple was derived.
    pub derived_at: u64,
    /// Simulated time the tuple expired (if it did).
    pub expired_at: Option<u64>,
    /// Marked to persist beyond the age-out horizon (e.g. flagged during a
    /// network anomaly, Section 5).
    pub pinned: bool,
}

/// An *offline* provenance archive: entries survive tuple expiry so that
/// forensic queries can correlate long-gone traffic.
#[derive(Clone, Debug, Default)]
pub struct ArchiveStore {
    entries: Vec<ArchivedEntry>,
}

impl ArchiveStore {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn record(&mut self, entry: ArchivedEntry) {
        self.entries.push(entry);
    }

    /// Records that the tuple behind `key` was deleted (retracted or
    /// expired) at `expired_at`: every live entry for the key is stamped
    /// with the expiry time, and if the archive held no entry yet — the
    /// tuple was derived before archiving was enabled, or sampled out — a
    /// fresh one is appended so the deletion itself is never lost.  Returns
    /// the number of entries stamped or created.  This is the
    /// archive-on-delete path: soft state dies mid-run, but its forensic
    /// record (and hence moonwalk/traceback reachability) survives.
    pub fn record_expiry(
        &mut self,
        key: &str,
        location: &str,
        annotation: &str,
        derived_at: u64,
        expired_at: u64,
    ) -> usize {
        let mut stamped = 0;
        for e in &mut self.entries {
            if e.key == key && e.expired_at.is_none() {
                e.expired_at = Some(expired_at);
                stamped += 1;
            }
        }
        if stamped == 0 {
            self.entries.push(ArchivedEntry {
                key: key.to_string(),
                location: location.to_string(),
                annotation: annotation.to_string(),
                derived_at,
                expired_at: Some(expired_at),
                pinned: false,
            });
            stamped = 1;
        }
        stamped
    }

    /// Marks every entry matching `key` as pinned so age-out keeps it.
    pub fn pin(&mut self, key: &str) -> usize {
        let mut count = 0;
        for e in &mut self.entries {
            if e.key == key {
                e.pinned = true;
                count += 1;
            }
        }
        count
    }

    /// Drops unpinned entries derived before `horizon`; returns how many were
    /// removed (the storage-reduction knob of Section 5).
    pub fn age_out(&mut self, horizon: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.pinned || e.derived_at >= horizon);
        before - self.entries.len()
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[ArchivedEntry] {
        &self.entries
    }

    /// Entries for a given predicate (prefix match on the rendered key),
    /// optionally restricted to a derivation-time window.
    pub fn query(
        &self,
        key_prefix: &str,
        from: Option<u64>,
        to: Option<u64>,
    ) -> Vec<&ArchivedEntry> {
        self.entries
            .iter()
            .filter(|e| e.key.starts_with(key_prefix))
            .filter(|e| from.is_none_or(|f| e.derived_at >= f))
            .filter(|e| to.is_none_or(|t| e.derived_at <= t))
            .collect()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pointer_stores() -> HashMap<String, DistributedStore> {
        // reachable(@a,c) derived at a from link(@a,b) [local] and
        // reachable(@b,c) [remote at b]; reachable(@b,c) derived at b from
        // link(@b,c) [local base].
        let mut a = DistributedStore::new("a");
        a.record_base("link(@a,b)", BaseTupleId(1));
        a.record_base("link(@a,c)", BaseTupleId(2));
        a.record_derivation(
            "reachable(@a,c)",
            PointerDerivation {
                rule: "r2".into(),
                antecedents: vec![
                    AntecedentRef::Local("link(@a,b)".into()),
                    AntecedentRef::Remote {
                        location: "b".into(),
                        key: "reachable(@b,c)".into(),
                    },
                ],
            },
        );
        a.record_derivation(
            "reachable(@a,c)",
            PointerDerivation {
                rule: "r1".into(),
                antecedents: vec![AntecedentRef::Local("link(@a,c)".into())],
            },
        );
        let mut b = DistributedStore::new("b");
        b.record_base("link(@b,c)", BaseTupleId(3));
        b.record_derivation(
            "reachable(@b,c)",
            PointerDerivation {
                rule: "r1".into(),
                antecedents: vec![AntecedentRef::Local("link(@b,c)".into())],
            },
        );
        let mut stores = HashMap::new();
        stores.insert("a".to_string(), a);
        stores.insert("b".to_string(), b);
        stores
    }

    #[test]
    fn traceback_collects_bases_and_counts_remote_hops() {
        let stores = pointer_stores();
        let result = traceback(&stores, "a", "reachable(@a,c)");
        assert_eq!(result.base_tuples.len(), 3);
        assert_eq!(result.remote_hops, 1, "one hop to node b");
        assert!(result.unresolved.is_empty());
        assert!(result.visited.contains(&"reachable(@b,c)".to_string()));
    }

    #[test]
    fn traceback_reports_unresolved_pointers() {
        let mut stores = pointer_stores();
        stores.remove("b");
        let result = traceback(&stores, "a", "reachable(@a,c)");
        assert_eq!(result.unresolved, vec!["reachable(@b,c)".to_string()]);
        // The locally reachable base tuples are still found.
        assert_eq!(result.base_tuples.len(), 2);
    }

    #[test]
    fn traceback_of_unknown_tuple() {
        let stores = pointer_stores();
        let result = traceback(&stores, "a", "nonexistent(@a)");
        assert_eq!(result.unresolved, vec!["nonexistent(@a)".to_string()]);
        assert!(result.base_tuples.is_empty());
    }

    #[test]
    fn distributed_store_deduplicates_and_counts_entries() {
        let mut s = DistributedStore::new("a");
        let d = PointerDerivation {
            rule: "r1".into(),
            antecedents: vec![AntecedentRef::Local("x".into())],
        };
        s.record_derivation("p", d.clone());
        s.record_derivation("p", d);
        s.record_base("x", BaseTupleId(9));
        assert_eq!(s.derivations_of("p").len(), 1);
        assert_eq!(s.entry_count(), 2);
        assert_eq!(s.base_id("x"), Some(BaseTupleId(9)));
        assert_eq!(s.base_id("y"), None);
        assert!(s.derivations_of("missing").is_empty());
    }

    #[test]
    fn local_store_expiry_delegates_to_graph() {
        let mut store = LocalStore::new();
        store
            .graph_mut()
            .add_base("link(@a,b)", "a", BaseTupleId(1), None, 0, Some(50));
        store
            .graph_mut()
            .add_base("link(@a,c)", "a", BaseTupleId(2), None, 0, None);
        assert_eq!(store.expire(100), 1);
        assert_eq!(store.graph().find("link(@a,b)"), None);
        assert!(store.graph().find("link(@a,c)").is_some());
    }

    #[test]
    fn archive_survives_expiry_and_ages_out() {
        let mut archive = ArchiveStore::new();
        for i in 0..10u64 {
            archive.record(ArchivedEntry {
                key: format!("bestPath(@n0,n{i})"),
                location: "n0".into(),
                annotation: "<p0>".into(),
                derived_at: i * 100,
                expired_at: Some(i * 100 + 50),
                pinned: false,
            });
        }
        assert_eq!(archive.len(), 10);
        // Pin one entry, then age out everything older than t=500.
        assert_eq!(archive.pin("bestPath(@n0,n2)"), 1);
        let removed = archive.age_out(500);
        assert_eq!(removed, 4, "entries 0,1,3,4 removed; 2 pinned");
        assert!(archive.query("bestPath(@n0,n2)", None, None).len() == 1);

        // Time-window query.
        let in_window = archive.query("bestPath", Some(500), Some(700));
        assert_eq!(in_window.len(), 3);
        assert!(!archive.is_empty());
    }

    #[test]
    fn record_expiry_stamps_or_creates_entries() {
        let mut archive = ArchiveStore::new();
        archive.record(ArchivedEntry {
            key: "reachable(@a,c)".into(),
            location: "a".into(),
            annotation: "r1@a".into(),
            derived_at: 100,
            expired_at: None,
            pinned: false,
        });
        // A live entry gets its expiry stamped in place.
        assert_eq!(
            archive.record_expiry("reachable(@a,c)", "a", "retracted", 100, 900),
            1
        );
        assert_eq!(archive.entries()[0].expired_at, Some(900));
        assert_eq!(archive.len(), 1);
        // An already-stamped entry is left alone; the deletion of a tuple
        // the archive never saw appends a fresh record.
        assert_eq!(
            archive.record_expiry("reachable(@a,d)", "a", "retracted", 200, 950),
            1
        );
        assert_eq!(archive.len(), 2);
        let fresh = &archive.entries()[1];
        assert_eq!(fresh.key, "reachable(@a,d)");
        assert_eq!(fresh.annotation, "retracted");
        assert_eq!(fresh.expired_at, Some(950));
    }
}
