//! # pasn-provenance
//!
//! Network provenance for the *Provenance-aware Secure Networks*
//! reproduction (Zhou, Cronin, Loo — ICDE 2008).
//!
//! The paper's central claim is that network accountability and forensics
//! can be posed as data-provenance computations over distributed streams,
//! and it organises provenance along several axes (Section 4).  This crate
//! implements every axis:
//!
//! | paper § | axis | module |
//! |---|---|---|
//! | 4.1 | local vs distributed storage | [`store::LocalStore`], [`store::DistributedStore`], [`store::traceback`] |
//! | 4.2 | online vs offline | [`store::LocalStore::expire`], [`store::ArchiveStore`] |
//! | 4.3 | authenticated provenance | [`graph::DerivationGraph::verify_assertions`] |
//! | 4.4 | condensed provenance (semirings + BDDs) | [`tag::ProvTag::Condensed`], [`tag::VarTable`] |
//! | 4.5 | quantifiable provenance (trust levels, counts, votes) | [`semiring::TrustLevel`], [`semiring::DerivationCount`], [`semiring::VoteSet`] |
//! | 5 | proactive/reactive, sampling, granularity | [`policy`] |
//! | 5 | sampled distributed queries (random moonwalks) | [`moonwalk`] |
//!
//! The engine (`pasn-engine`) calls into [`tag::ProvTag`] on every rule
//! firing and into [`graph::DerivationGraph`] when graph-shaped provenance is
//! enabled; the facade crate (`pasn`) exposes trust-management, diagnostics,
//! forensics and accountability APIs on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod key;
pub mod moonwalk;
pub mod policy;
pub mod semiring;
pub mod store;
pub mod tag;

pub use graph::{derivation_payload, Derivation, DerivationGraph, ProvNodeId, TupleNode};
pub use key::ProvKey;
pub use moonwalk::{moonwalk, MoonwalkConfig, MoonwalkResult, Walk};
pub use policy::{Granularity, MaintenanceMode, SamplingPolicy};
pub use semiring::{BaseTupleId, DerivationCount, Semiring, TrustLevel, VoteSet, WhyProvenance};
pub use store::{
    traceback, AntecedentRef, ArchiveStore, ArchivedEntry, DistributedStore, LocalStore,
    PointerDerivation, TracebackResult,
};
pub use tag::{ProvTag, ProvenanceKind, VarTable, CONDENSE_WITNESS_THRESHOLD};
