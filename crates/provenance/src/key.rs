//! Compact provenance-store keys derived from tuple identities.
//!
//! The derivation graph and the distributed pointer store used to key their
//! hash maps by the *rendered* tuple string (`reachable(@a,c)`), cloning it
//! into every map.  A [`ProvKey`] is a stable 64-bit digest of that
//! identity — the engine derives the rendered form from its interned
//! `(PredId, Arc<[Value]>)` rows (lazily, only when provenance is actually
//! recorded) and the stores key on the digest, keeping at most one copy of
//! the rendered string, purely for display.
//!
//! The digest is FNV-1a over the rendered bytes: deterministic across runs
//! and processes (unlike `DefaultHasher` with a random seed), so shipped
//! provenance subtrees hash identically on every node.  Collisions are
//! birthday-bounded (~2⁻³² at four billion distinct tuples per store); the
//! derivation graph `debug_assert`s the stored rendered form on every
//! digest hit so a collision cannot silently merge provenance in tests.

use std::fmt;

/// A compact, deterministic key identifying a tuple in the provenance
/// stores.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProvKey(pub u64);

impl ProvKey {
    /// Derives the key from a tuple's rendered display form (the canonical
    /// identity all provenance layers agree on, e.g. `reachable(@a,c)`).
    pub fn from_rendered(rendered: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in rendered.as_bytes() {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ProvKey(hash)
    }
}

impl fmt::Display for ProvKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_distinguish_tuples() {
        let a = ProvKey::from_rendered("reachable(@a,c)");
        assert_eq!(a, ProvKey::from_rendered("reachable(@a,c)"));
        assert_ne!(a, ProvKey::from_rendered("reachable(@a,b)"));
        assert_ne!(a, ProvKey::from_rendered("reachable(a,c)"));
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(ProvKey::from_rendered(""), ProvKey(0xcbf2_9ce4_8422_2325));
        assert!(a.to_string().starts_with('k'));
    }
}
