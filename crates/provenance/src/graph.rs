//! Derivation graphs — the tree-shaped provenance of Figures 1 and 2.
//!
//! Every derived tuple is explained by one or more *derivations*; each
//! derivation records the rule that fired, the location (or SeNDlog context)
//! where it executed, and the antecedent tuples it joined.  Base tuples are
//! leaves.  Multiple derivations of the same tuple correspond to the `union`
//! oval in Figure 1.
//!
//! With *authenticated provenance* (Section 4.3) every derivation carries a
//! `says` assertion by the principal that executed the rule, so a remote
//! querier can verify each step of the tree.

use crate::key::ProvKey;
use crate::semiring::{BaseTupleId, Semiring, WhyProvenance};
use pasn_crypto::{PrincipalId, SaysAssertion};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Index of a tuple node within a [`DerivationGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProvNodeId(pub u32);

/// One way a tuple was derived.
#[derive(Clone, Debug, PartialEq)]
pub struct Derivation {
    /// Label of the rule that fired (`r1`, `sp2`, ...).
    pub rule: String,
    /// Location (or SeNDlog context) where the rule executed.
    pub location: String,
    /// Antecedent tuple nodes, in body order.
    pub antecedents: Vec<ProvNodeId>,
    /// `says` assertion by the executing principal over
    /// [`derivation_payload`]; present when authenticated provenance is on.
    pub assertion: Option<SaysAssertion>,
}

/// A tuple node in the derivation graph.
#[derive(Clone, Debug, PartialEq)]
pub struct TupleNode {
    /// Rendered tuple, e.g. `reachable(@a,c)`.
    pub key: String,
    /// Location storing the tuple.
    pub location: String,
    /// The principal that asserted / derived the tuple.
    pub asserted_by: Option<PrincipalId>,
    /// Base-tuple identifier when this is an extensional leaf.
    pub base_id: Option<BaseTupleId>,
    /// Creation timestamp (simulated microseconds) — provenance of
    /// distributed streams is annotated with time (Section 4).
    pub created_at: u64,
    /// Expiry timestamp for soft-state tuples, `None` for hard state.
    pub expires_at: Option<u64>,
    /// Alternative derivations (empty for base tuples).
    pub derivations: Vec<Derivation>,
}

impl TupleNode {
    /// True if this node is an extensional (base) tuple.
    pub fn is_base(&self) -> bool {
        self.base_id.is_some()
    }
}

/// The canonical byte string a principal signs to vouch for a derivation
/// step (authenticated provenance, Section 4.3).
pub fn derivation_payload(
    head: &str,
    rule: &str,
    location: &str,
    antecedents: &[String],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(head.as_bytes());
    out.push(0);
    out.extend_from_slice(rule.as_bytes());
    out.push(0);
    out.extend_from_slice(location.as_bytes());
    out.push(0);
    for a in antecedents {
        out.extend_from_slice(a.as_bytes());
        out.push(0);
    }
    out
}

/// A provenance graph for the tuples derived at (or known to) one node, or —
/// in the *local provenance* configuration — the complete graph piggybacked
/// with a tuple.
#[derive(Clone, Debug, Default)]
pub struct DerivationGraph {
    nodes: Vec<TupleNode>,
    /// Tuple lookup by derived [`ProvKey`] — the rendered string lives only
    /// once, in its [`TupleNode`], for display.
    index: HashMap<ProvKey, ProvNodeId>,
    /// Reverse-use index: antecedent → heads with a derivation referencing
    /// it.  Keeps [`DerivationGraph::retract`] proportional to the tuple's
    /// actual users instead of the whole graph.  An over-approximation:
    /// entries are not pruned when a derivation is dropped, so a stale
    /// head costs one no-op `retain` later.
    used_in: HashMap<ProvNodeId, HashSet<ProvNodeId>>,
}

impl DerivationGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuple nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of derivation (rule-firing) records.
    pub fn derivation_count(&self) -> usize {
        self.nodes.iter().map(|n| n.derivations.len()).sum()
    }

    /// Looks up a tuple node by its rendered key (shim over
    /// [`DerivationGraph::find_key`]).
    pub fn find(&self, key: &str) -> Option<ProvNodeId> {
        self.find_key(ProvKey::from_rendered(key))
    }

    /// Looks up a tuple node by an already derived [`ProvKey`], skipping the
    /// re-hash of the rendered form.
    pub fn find_key(&self, key: ProvKey) -> Option<ProvNodeId> {
        self.index.get(&key).copied()
    }

    /// The node behind an id.
    pub fn node(&self, id: ProvNodeId) -> &TupleNode {
        &self.nodes[id.0 as usize]
    }

    fn intern(&mut self, key: &str, location: &str, created_at: u64) -> ProvNodeId {
        let hashed = ProvKey::from_rendered(key);
        if let Some(&id) = self.index.get(&hashed) {
            // A digest hit must be the same rendered tuple — a collision
            // would silently merge two unrelated tuples' provenance, which
            // the exact string keys this map replaced could never do.
            debug_assert_eq!(
                self.nodes[id.0 as usize].key, key,
                "ProvKey collision: distinct tuples share digest {hashed}"
            );
            return id;
        }
        let id = ProvNodeId(self.nodes.len() as u32);
        self.nodes.push(TupleNode {
            key: key.to_string(),
            location: location.to_string(),
            asserted_by: None,
            base_id: None,
            created_at,
            expires_at: None,
            derivations: Vec::new(),
        });
        self.index.insert(hashed, id);
        id
    }

    /// Adds (or updates) a base tuple node.
    pub fn add_base(
        &mut self,
        key: &str,
        location: &str,
        base_id: BaseTupleId,
        asserted_by: Option<PrincipalId>,
        created_at: u64,
        expires_at: Option<u64>,
    ) -> ProvNodeId {
        let id = self.intern(key, location, created_at);
        let node = &mut self.nodes[id.0 as usize];
        node.base_id = Some(base_id);
        node.asserted_by = asserted_by;
        node.created_at = created_at;
        node.expires_at = expires_at;
        id
    }

    /// Adds a derivation of `head` via `rule` at `location` from
    /// `antecedents` (each identified by its rendered key; unknown
    /// antecedents are created as placeholder nodes).
    #[allow(clippy::too_many_arguments)]
    pub fn add_derivation(
        &mut self,
        head: &str,
        head_location: &str,
        rule: &str,
        rule_location: &str,
        antecedents: &[String],
        asserted_by: Option<PrincipalId>,
        assertion: Option<SaysAssertion>,
        created_at: u64,
        expires_at: Option<u64>,
    ) -> ProvNodeId {
        let antecedent_ids: Vec<ProvNodeId> = antecedents
            .iter()
            .map(|a| self.intern(a, head_location, created_at))
            .collect();
        let head_id = self.intern(head, head_location, created_at);
        for a in &antecedent_ids {
            self.used_in.entry(*a).or_default().insert(head_id);
        }
        let node = &mut self.nodes[head_id.0 as usize];
        if node.asserted_by.is_none() {
            node.asserted_by = asserted_by;
        }
        node.expires_at = expires_at;
        let derivation = Derivation {
            rule: rule.to_string(),
            location: rule_location.to_string(),
            antecedents: antecedent_ids,
            assertion,
        };
        if !node.derivations.contains(&derivation) {
            node.derivations.push(derivation);
        }
        head_id
    }

    /// The why-provenance of a tuple: minimal witness sets over base tuples.
    /// Cyclic derivations are cut at the first revisit (a revisit cannot add
    /// a new minimal witness).
    pub fn why_provenance(&self, id: ProvNodeId) -> WhyProvenance {
        let mut visiting = HashSet::new();
        self.why_rec(id, &mut visiting)
    }

    fn why_rec(&self, id: ProvNodeId, visiting: &mut HashSet<ProvNodeId>) -> WhyProvenance {
        let node = self.node(id);
        if let Some(base) = node.base_id {
            return WhyProvenance::base(base);
        }
        if node.derivations.is_empty() {
            return WhyProvenance::zero();
        }
        if !visiting.insert(id) {
            return WhyProvenance::zero();
        }
        let mut acc = WhyProvenance::zero();
        for d in &node.derivations {
            let mut term = WhyProvenance::one();
            for &a in &d.antecedents {
                term = term.times(&self.why_rec(a, visiting));
            }
            acc = acc.plus(&term);
        }
        visiting.remove(&id);
        acc
    }

    /// The set of base tuples a tuple ultimately depends on.
    pub fn base_support(&self, id: ProvNodeId) -> BTreeSet<BaseTupleId> {
        self.why_provenance(id).support()
    }

    /// Verifies every `says` assertion reachable from `id` using the caller's
    /// verification function (principal, payload, assertion) → ok.  Returns
    /// the keys of derivations whose assertion failed (or is missing when
    /// `require_assertions` is set).
    pub fn verify_assertions<F>(
        &self,
        id: ProvNodeId,
        require_assertions: bool,
        verify: F,
    ) -> Vec<String>
    where
        F: Fn(PrincipalId, &[u8], &SaysAssertion) -> bool,
    {
        let mut failures = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur) {
                continue;
            }
            let node = self.node(cur);
            for d in &node.derivations {
                let antecedent_keys: Vec<String> = d
                    .antecedents
                    .iter()
                    .map(|a| self.node(*a).key.clone())
                    .collect();
                let payload = derivation_payload(&node.key, &d.rule, &d.location, &antecedent_keys);
                match (&d.assertion, node.asserted_by) {
                    (Some(assertion), _) if !verify(assertion.principal, &payload, assertion) => {
                        failures.push(node.key.clone());
                    }
                    (None, _) if require_assertions => failures.push(node.key.clone()),
                    _ => {}
                }
                stack.extend(d.antecedents.iter().copied());
            }
        }
        failures
    }

    /// Renders the derivation tree rooted at `id` in the style of Figure 1.
    pub fn render_tree(&self, id: ProvNodeId) -> String {
        let mut out = String::new();
        let mut visited = HashSet::new();
        self.render_rec(id, "", true, true, &mut out, &mut visited);
        out
    }

    fn render_rec(
        &self,
        id: ProvNodeId,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        out: &mut String,
        visited: &mut HashSet<ProvNodeId>,
    ) {
        let node = self.node(id);
        let connector = if is_root {
            String::new()
        } else if is_last {
            format!("{prefix}└─ ")
        } else {
            format!("{prefix}├─ ")
        };
        let kind = if node.is_base() { " [base]" } else { "" };
        let by = node
            .asserted_by
            .map(|p| format!(" ({p} says)"))
            .unwrap_or_default();
        out.push_str(&format!("{connector}{}{kind}{by}\n", node.key));
        if !visited.insert(id) {
            let child_prefix = child_prefix(prefix, is_last, is_root);
            out.push_str(&format!("{child_prefix}└─ (see above)\n"));
            return;
        }
        let child_prefix = child_prefix(prefix, is_last, is_root);
        let multi = node.derivations.len() > 1;
        if multi {
            out.push_str(&format!("{child_prefix}└─ union\n"));
        }
        let deriv_prefix = if multi {
            format!("{child_prefix}   ")
        } else {
            child_prefix.clone()
        };
        for (di, d) in node.derivations.iter().enumerate() {
            let last_d = di + 1 == node.derivations.len();
            let d_connector = if last_d { "└─" } else { "├─" };
            out.push_str(&format!(
                "{deriv_prefix}{d_connector} {}@{}\n",
                d.rule, d.location
            ));
            let next_prefix = format!("{deriv_prefix}{}  ", if last_d { " " } else { "│" });
            for (ai, &a) in d.antecedents.iter().enumerate() {
                let last_a = ai + 1 == d.antecedents.len();
                self.render_rec(a, &next_prefix, last_a, false, out, visited);
            }
        }
        visited.remove(&id);
    }

    /// Extracts the self-contained subgraph reachable from `id` — the piece
    /// of provenance that *local provenance* (Section 4.1) piggybacks onto a
    /// tuple when it is shipped to another node.
    pub fn subtree(&self, id: ProvNodeId) -> DerivationGraph {
        let mut out = DerivationGraph::new();
        let mut stack = vec![id];
        let mut seen = HashSet::new();
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur) {
                continue;
            }
            let node = self.node(cur);
            if let Some(base) = node.base_id {
                out.add_base(
                    &node.key,
                    &node.location,
                    base,
                    node.asserted_by,
                    node.created_at,
                    node.expires_at,
                );
            }
            for d in &node.derivations {
                let antecedent_keys: Vec<String> = d
                    .antecedents
                    .iter()
                    .map(|a| self.node(*a).key.clone())
                    .collect();
                out.add_derivation(
                    &node.key,
                    &node.location,
                    &d.rule,
                    &d.location,
                    &antecedent_keys,
                    node.asserted_by,
                    d.assertion.clone(),
                    node.created_at,
                    node.expires_at,
                );
                stack.extend(d.antecedents.iter().copied());
            }
        }
        // Make sure the root exists even if it has no derivations yet.
        if out.find(&self.node(id).key).is_none() {
            let node = self.node(id);
            out.intern(&node.key, &node.location, node.created_at);
        }
        out
    }

    /// Merges every node and derivation of `other` into this graph (union by
    /// tuple key).  Used by the receiving node to extend its locally
    /// complete provenance with the piggybacked subtree.
    pub fn merge(&mut self, other: &DerivationGraph) {
        for (_, node) in other.iter() {
            if let Some(base) = node.base_id {
                self.add_base(
                    &node.key,
                    &node.location,
                    base,
                    node.asserted_by,
                    node.created_at,
                    node.expires_at,
                );
            }
            for d in &node.derivations {
                let antecedent_keys: Vec<String> = d
                    .antecedents
                    .iter()
                    .map(|a| other.node(*a).key.clone())
                    .collect();
                self.add_derivation(
                    &node.key,
                    &node.location,
                    &d.rule,
                    &d.location,
                    &antecedent_keys,
                    node.asserted_by,
                    d.assertion.clone(),
                    node.created_at,
                    node.expires_at,
                );
            }
        }
    }

    /// Rough wire size (bytes) of shipping this graph with a tuple: each
    /// tuple node costs its key plus fixed metadata, each derivation its rule
    /// label, location and antecedent references.  Used by the bandwidth
    /// accounting of the local-vs-distributed provenance ablation.
    pub fn estimated_wire_size(&self) -> usize {
        let mut size = 0usize;
        for (_, node) in self.iter() {
            size += node.key.len() + 12;
            for d in &node.derivations {
                size += d.rule.len() + d.location.len() + 4 * d.antecedents.len() + 4;
                if let Some(a) = &d.assertion {
                    size += a.wire_len();
                }
            }
        }
        size
    }

    /// Iterates over all nodes with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (ProvNodeId, &TupleNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (ProvNodeId(i as u32), n))
    }

    /// Retracts one tuple from the online graph: its node is emptied (the
    /// slot stays — ids are stable) and every derivation referencing it is
    /// dropped, exactly as [`DerivationGraph::purge_expired`] does for
    /// expired soft state.  Returns `false` when the key is unknown.  The
    /// engine calls this when provenance-guided deletion removes a tuple
    /// mid-run; the *offline* records (archive, distributed pointer stores)
    /// deliberately survive so forensic queries can still explain the
    /// deleted tuple.
    pub fn retract(&mut self, key: &str) -> bool {
        let hashed = ProvKey::from_rendered(key);
        let Some(&id) = self.index.get(&hashed) else {
            return false;
        };
        // Only the tuple's actual users are touched, via the reverse-use
        // index — a retraction wave stays linear in the derivations it
        // really severs, not in the graph size.
        if let Some(users) = self.used_in.remove(&id) {
            for head in users {
                self.nodes[head.0 as usize]
                    .derivations
                    .retain(|d| !d.antecedents.contains(&id));
            }
        }
        self.index.remove(&hashed);
        let node = &mut self.nodes[id.0 as usize];
        node.derivations.clear();
        node.base_id = None;
        node.expires_at = None;
        true
    }

    /// Removes expired tuples (and derivations referencing them) given the
    /// current time; used by the *online* provenance store.
    pub fn purge_expired(&mut self, now: u64) -> usize {
        let expired: HashSet<ProvNodeId> = self
            .iter()
            .filter(|(_, n)| n.expires_at.is_some_and(|e| e <= now))
            .map(|(id, _)| id)
            .collect();
        if expired.is_empty() {
            return 0;
        }
        for node in &mut self.nodes {
            node.derivations
                .retain(|d| !d.antecedents.iter().any(|a| expired.contains(a)));
        }
        for id in &expired {
            let key = ProvKey::from_rendered(&self.nodes[id.0 as usize].key);
            self.index.remove(&key);
            // Keep the slot (ids are stable) but mark it empty.
            self.nodes[id.0 as usize].derivations.clear();
            self.nodes[id.0 as usize].base_id = None;
            self.nodes[id.0 as usize].expires_at = None;
        }
        expired.len()
    }
}

impl fmt::Display for DerivationGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DerivationGraph({} tuples, {} derivations)",
            self.len(),
            self.derivation_count()
        )
    }
}

fn child_prefix(prefix: &str, is_last: bool, is_root: bool) -> String {
    if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}   ")
    } else {
        format!("{prefix}│  ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure 1 derivation graph for reachable(@a,c):
    ///   r1: reachable(@a,c) :- link(@a,c)
    ///   r2: reachable(@a,c) :- link(@a,b), reachable(@b,c)
    ///   r1: reachable(@b,c) :- link(@b,c)
    fn figure1() -> (DerivationGraph, ProvNodeId) {
        let mut g = DerivationGraph::new();
        g.add_base(
            "link(@a,b)",
            "a",
            BaseTupleId(1),
            Some(PrincipalId(0)),
            0,
            None,
        );
        g.add_base(
            "link(@a,c)",
            "a",
            BaseTupleId(2),
            Some(PrincipalId(0)),
            0,
            None,
        );
        g.add_base(
            "link(@b,c)",
            "b",
            BaseTupleId(3),
            Some(PrincipalId(1)),
            0,
            None,
        );
        g.add_derivation(
            "reachable(@b,c)",
            "b",
            "r1",
            "b",
            &["link(@b,c)".into()],
            Some(PrincipalId(1)),
            None,
            1,
            None,
        );
        g.add_derivation(
            "reachable(@a,c)",
            "a",
            "r1",
            "a",
            &["link(@a,c)".into()],
            Some(PrincipalId(0)),
            None,
            1,
            None,
        );
        let root = g.add_derivation(
            "reachable(@a,c)",
            "a",
            "r2",
            "a",
            &["link(@a,b)".into(), "reachable(@b,c)".into()],
            Some(PrincipalId(0)),
            None,
            2,
            None,
        );
        (g, root)
    }

    #[test]
    fn figure1_graph_shape() {
        let (g, root) = figure1();
        assert_eq!(g.len(), 5);
        assert_eq!(g.derivation_count(), 3);
        let root_node = g.node(root);
        assert_eq!(root_node.key, "reachable(@a,c)");
        assert_eq!(root_node.derivations.len(), 2, "union of r1 and r2");
        assert!(!root_node.is_base());
        assert!(g.node(g.find("link(@a,b)").unwrap()).is_base());
    }

    #[test]
    fn figure1_why_provenance_and_support() {
        let (g, root) = figure1();
        let why = g.why_provenance(root);
        // reachable(@a,c) = link(a,c) + link(a,b)*link(b,c)
        assert_eq!(why.witnesses().len(), 2);
        let support = g.base_support(root);
        assert_eq!(support.len(), 3);
    }

    #[test]
    fn render_tree_shows_union_rules_and_leaves() {
        let (g, root) = figure1();
        let tree = g.render_tree(root);
        assert!(tree.starts_with("reachable(@a,c)"));
        assert!(tree.contains("union"));
        assert!(tree.contains("r1@a"));
        assert!(tree.contains("r2@a"));
        assert!(tree.contains("link(@a,b) [base]"));
        assert!(tree.contains("reachable(@b,c)"));
        assert!(tree.contains("(p0 says)"));
    }

    #[test]
    fn cycles_are_cut_not_looped() {
        let mut g = DerivationGraph::new();
        g.add_base("link(@a,b)", "a", BaseTupleId(1), None, 0, None);
        // Mutual recursion: p depends on q, q depends on p (plus a base).
        g.add_derivation(
            "p(a)",
            "a",
            "r1",
            "a",
            &["q(a)".into()],
            None,
            None,
            0,
            None,
        );
        g.add_derivation(
            "q(a)",
            "a",
            "r2",
            "a",
            &["p(a)".into(), "link(@a,b)".into()],
            None,
            None,
            0,
            None,
        );
        let p = g.find("p(a)").unwrap();
        let why = g.why_provenance(p);
        // No derivation grounded purely in base tuples exists for p.
        assert_eq!(why, WhyProvenance::zero());
        // Rendering terminates.
        let rendered = g.render_tree(p);
        assert!(rendered.contains("(see above)"));
    }

    #[test]
    fn duplicate_derivations_are_not_recorded_twice() {
        let mut g = DerivationGraph::new();
        g.add_base("link(@a,b)", "a", BaseTupleId(1), None, 0, None);
        for _ in 0..3 {
            g.add_derivation(
                "reachable(@a,b)",
                "a",
                "r1",
                "a",
                &["link(@a,b)".into()],
                None,
                None,
                0,
                None,
            );
        }
        let id = g.find("reachable(@a,b)").unwrap();
        assert_eq!(g.node(id).derivations.len(), 1);
    }

    #[test]
    fn retract_drops_the_tuple_and_its_uses() {
        let (mut g, root) = figure1();
        // Retracting link(@a,c) removes the direct r1 derivation of
        // reachable(@a,c); the r2 path through b survives.
        assert!(g.retract("link(@a,c)"));
        assert!(g.find("link(@a,c)").is_none());
        let node = g.node(root);
        assert_eq!(node.derivations.len(), 1);
        assert_eq!(node.derivations[0].rule, "r2");
        let why = g.why_provenance(root);
        assert_eq!(why.witnesses().len(), 1);
        // Unknown keys are a no-op.
        assert!(!g.retract("no-such-tuple"));
    }

    #[test]
    fn purge_expired_removes_soft_state() {
        let mut g = DerivationGraph::new();
        g.add_base("link(@a,b)", "a", BaseTupleId(1), None, 0, Some(100));
        g.add_derivation(
            "reachable(@a,b)",
            "a",
            "r1",
            "a",
            &["link(@a,b)".into()],
            None,
            None,
            0,
            Some(100),
        );
        let root = g.find("reachable(@a,b)").unwrap();
        assert_eq!(g.why_provenance(root).witnesses().len(), 1);
        let purged = g.purge_expired(150);
        assert_eq!(purged, 2);
        assert!(g.find("reachable(@a,b)").is_none());
        assert_eq!(g.purge_expired(150), 0);
    }

    #[test]
    fn subtree_and_merge_reconstruct_local_provenance() {
        let (g, root) = figure1();
        // The subtree of reachable(@a,c) contains everything Figure 1 shows.
        let sub = g.subtree(root);
        assert_eq!(sub.len(), 5);
        assert_eq!(sub.derivation_count(), 3);
        assert!(sub.estimated_wire_size() > 0);

        // A fresh node that only knows its own base tuple merges the shipped
        // subtree and ends up with locally complete provenance.
        let mut receiver = DerivationGraph::new();
        receiver.add_base("link(@d,a)", "d", BaseTupleId(7), None, 0, None);
        receiver.merge(&sub);
        let merged_root = receiver.find("reachable(@a,c)").unwrap();
        assert_eq!(receiver.why_provenance(merged_root), g.why_provenance(root));
        // Merging twice is idempotent.
        let before = receiver.derivation_count();
        receiver.merge(&sub);
        assert_eq!(receiver.derivation_count(), before);
    }

    #[test]
    fn subtree_of_underived_tuple_contains_just_that_node() {
        let mut g = DerivationGraph::new();
        g.add_derivation("p(a)", "a", "r", "a", &["q(a)".into()], None, None, 0, None);
        let q = g.find("q(a)").unwrap();
        let sub = g.subtree(q);
        assert_eq!(sub.len(), 1);
        assert!(sub.find("q(a)").is_some());
    }

    #[test]
    fn authenticated_provenance_verification() {
        use pasn_crypto::says::{Authenticator, SaysLevel};
        use pasn_crypto::{KeyAuthority, Principal};

        let principals = vec![Principal::new(0u32, "a"), Principal::new(1u32, "b")];
        let authority = KeyAuthority::provision_with_modulus(&principals, 5, 512).unwrap();
        let auth_a = Authenticator::new(
            authority.keyring_for(PrincipalId(0)).unwrap(),
            SaysLevel::Rsa,
        );
        let verifier = Authenticator::new(
            authority.keyring_for(PrincipalId(1)).unwrap(),
            SaysLevel::Rsa,
        );

        let mut g = DerivationGraph::new();
        g.add_base(
            "link(@a,c)",
            "a",
            BaseTupleId(1),
            Some(PrincipalId(0)),
            0,
            None,
        );
        let antecedents = vec!["link(@a,c)".to_string()];
        let payload = derivation_payload("reachable(@a,c)", "r1", "a", &antecedents);
        let assertion = auth_a.assert(&payload);
        let root = g.add_derivation(
            "reachable(@a,c)",
            "a",
            "r1",
            "a",
            &antecedents,
            Some(PrincipalId(0)),
            Some(assertion),
            1,
            None,
        );

        // All assertions verify.
        let failures = g.verify_assertions(root, true, |_, payload, assertion| {
            verifier.verify(payload, assertion).is_ok()
        });
        assert!(failures.is_empty());

        // Tampering with the graph (different rule) breaks verification.
        let mut tampered = g.clone();
        let node_id = tampered.find("reachable(@a,c)").unwrap();
        tampered.nodes[node_id.0 as usize].derivations[0].rule = "forged".into();
        let failures = tampered.verify_assertions(root, true, |_, payload, assertion| {
            verifier.verify(payload, assertion).is_ok()
        });
        assert_eq!(failures, vec!["reachable(@a,c)".to_string()]);

        // Missing assertions are reported when required.
        let mut unsigned = DerivationGraph::new();
        unsigned.add_base("link(@a,c)", "a", BaseTupleId(1), None, 0, None);
        let r = unsigned.add_derivation(
            "reachable(@a,c)",
            "a",
            "r1",
            "a",
            &["link(@a,c)".into()],
            None,
            None,
            1,
            None,
        );
        assert_eq!(unsigned.verify_assertions(r, true, |_, _, _| true).len(), 1);
        assert!(unsigned
            .verify_assertions(r, false, |_, _, _| true)
            .is_empty());
    }
}
