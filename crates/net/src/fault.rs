//! Deterministic, seeded fault injection for the simulated transport.
//!
//! A [`FaultPlan`] describes an *unreliable* network: per-link probabilities
//! of a data frame being dropped, duplicated or delivered late, plus a
//! schedule of crash-without-drain [`FaultEvent`]s (a cut link, a crashed
//! node) that discard every in-flight frame on the affected links instead of
//! letting them drain.
//!
//! Every decision is a pure function of `(seed, src, dst, frame seq,
//! attempt)` through a splitmix64-style mixer: the same plan on the same
//! frame stream makes the same calls in every run and at every worker
//! count, which is what lets the engine's reliability layer promise
//! bit-identical re-convergence and repeatable fault counters.
//!
//! Loss is *bounded-burst*: once a frame has been dropped
//! [`FaultPlan::max_consecutive_drops`] times in a row, the next attempt is
//! always delivered.  Retransmission with a retry budget above that bound
//! therefore always succeeds eventually — only a scheduled [`FaultEvent`]
//! can kill a frame for good.

use std::sync::OnceLock;

/// Environment variable overriding every [`FaultPlan`] seed (see
/// [`FaultPlan::with_env_seed`]); lets CI re-run an identical suite under a
/// different fault schedule without touching any test.
pub const FAULT_SEED_ENV: &str = "PASN_FAULT_SEED";

/// The process-wide `PASN_FAULT_SEED` override, read once.
pub fn env_fault_seed() -> Option<u64> {
    static SEED: OnceLock<Option<u64>> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var(FAULT_SEED_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
    })
}

/// A scheduled crash-without-drain event: unlike the graceful churn
/// teardown (which waits for in-flight frames to drain), these discard
/// whatever is on the wire at the instant they fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The directed link `src → dst` is cut: every in-flight frame on it is
    /// discarded, its session channel is evicted without drain, and the
    /// `link(src, dst)` base fact is withdrawn.
    LinkCut {
        /// Source node index.
        src: u32,
        /// Destination node index.
        dst: u32,
    },
    /// The node crash-stops without drain: all links touching it are cut
    /// (in-flight frames in both directions die) and its base assertions
    /// are withdrawn as under a node failure.
    NodeCrash {
        /// The crashing node index.
        node: u32,
    },
}

/// A deterministic, seeded unreliable-network schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed every decision is derived from.
    pub seed: u64,
    /// Per-attempt probability (in ‰) that a data frame is dropped.
    pub drop_per_mille: u16,
    /// Probability (in ‰) that a data frame is delivered twice.
    pub duplicate_per_mille: u16,
    /// Probability (in ‰) that a data frame is delivered late.
    pub delay_per_mille: u16,
    /// Upper bound (µs) on the extra delay of a late frame.
    pub max_delay_us: u64,
    /// Bounded-burst loss: an attempt at or beyond this count always
    /// delivers.  Keep it below the engine's retry budget so retransmission
    /// converges.
    pub max_consecutive_drops: u8,
    /// Crash-without-drain events, as `(microseconds, event)` pairs.
    pub events: Vec<(u64, FaultEvent)>,
}

impl FaultPlan {
    /// A plan with the default loss profile (≈6% drops, 2% duplicates, 3%
    /// late frames, bursts capped at 3) and no scheduled crash events.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 60,
            duplicate_per_mille: 20,
            delay_per_mille: 30,
            max_delay_us: 2_000,
            max_consecutive_drops: 3,
            events: Vec::new(),
        }
    }

    /// A plan that injects no probabilistic faults (useful as a base for a
    /// pure crash schedule).
    pub fn lossless(seed: u64) -> Self {
        FaultPlan {
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            ..Self::new(seed)
        }
    }

    /// Sets the per-attempt drop probability in ‰.
    pub fn with_drop_per_mille(mut self, per_mille: u16) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Sets the duplicate probability in ‰.
    pub fn with_duplicate_per_mille(mut self, per_mille: u16) -> Self {
        self.duplicate_per_mille = per_mille;
        self
    }

    /// Sets the late-delivery probability in ‰ and its delay bound.
    pub fn with_delay(mut self, per_mille: u16, max_delay_us: u64) -> Self {
        self.delay_per_mille = per_mille;
        self.max_delay_us = max_delay_us;
        self
    }

    /// Schedules a [`FaultEvent::LinkCut`] at `at_us`.
    pub fn cut_link(mut self, at_us: u64, src: u32, dst: u32) -> Self {
        self.events.push((at_us, FaultEvent::LinkCut { src, dst }));
        self
    }

    /// Schedules a [`FaultEvent::NodeCrash`] at `at_us`.
    pub fn crash_node(mut self, at_us: u64, node: u32) -> Self {
        self.events.push((at_us, FaultEvent::NodeCrash { node }));
        self
    }

    /// Replaces the seed with the process-wide `PASN_FAULT_SEED` override,
    /// when one is set.  The engine applies this to every installed plan,
    /// so a CI job exporting the variable re-runs the whole suite under a
    /// different fault schedule.
    pub fn with_env_seed(mut self) -> Self {
        if let Some(seed) = env_fault_seed() {
            self.seed = seed;
        }
        self
    }

    /// True when delivery attempt `attempt` (0 = the original send) of the
    /// frame with per-link sequence `seq` on `src → dst` is dropped.
    pub fn drops(&self, src: u32, dst: u32, seq: u64, attempt: u8) -> bool {
        if self.drop_per_mille == 0 || attempt >= self.max_consecutive_drops {
            return false;
        }
        self.roll(1, src, dst, seq, attempt as u64) < self.drop_per_mille as u64
    }

    /// True when the frame is delivered twice (the duplicate is deduped by
    /// the receiver).
    pub fn duplicates(&self, src: u32, dst: u32, seq: u64) -> bool {
        self.duplicate_per_mille != 0
            && self.roll(2, src, dst, seq, 0) < self.duplicate_per_mille as u64
    }

    /// Extra delivery delay (µs) for the frame, `0` when it is on time.
    pub fn extra_delay_us(&self, src: u32, dst: u32, seq: u64) -> u64 {
        if self.delay_per_mille == 0 || self.max_delay_us == 0 {
            return 0;
        }
        if self.roll(3, src, dst, seq, 0) >= self.delay_per_mille as u64 {
            return 0;
        }
        1 + self.mix(4, src, dst, seq, 0) % self.max_delay_us
    }

    /// A uniform roll in `0..1000` for the decision `salt`.
    fn roll(&self, salt: u64, src: u32, dst: u32, seq: u64, attempt: u64) -> u64 {
        self.mix(salt, src, dst, seq, attempt) % 1000
    }

    /// splitmix64-style avalanche over the full decision identity.
    fn mix(&self, salt: u64, src: u32, dst: u32, seq: u64, attempt: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(salt)
            .wrapping_add((src as u64) << 40)
            .wrapping_add((dst as u64) << 20)
            .wrapping_add(seq.wrapping_mul(0x2545f4914f6cdd1d))
            .wrapping_add(attempt.wrapping_mul(0x9e3779b97f4a7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::new(7);
        let b = FaultPlan::new(7);
        for seq in 0..2_000u64 {
            assert_eq!(a.drops(0, 1, seq, 0), b.drops(0, 1, seq, 0));
            assert_eq!(a.duplicates(0, 1, seq), b.duplicates(0, 1, seq));
            assert_eq!(a.extra_delay_us(0, 1, seq), b.extra_delay_us(0, 1, seq));
        }
    }

    #[test]
    fn drop_rate_tracks_the_configured_probability() {
        let plan = FaultPlan::new(42).with_drop_per_mille(100);
        let dropped = (0..10_000u64).filter(|&s| plan.drops(2, 3, s, 0)).count();
        // 10% ± generous slack.
        assert!((700..1_300).contains(&dropped), "{dropped}");
    }

    #[test]
    fn bursts_are_bounded_below_the_retry_budget() {
        let plan = FaultPlan::new(1).with_drop_per_mille(999);
        for seq in 0..100u64 {
            assert!(!plan.drops(0, 1, seq, plan.max_consecutive_drops));
        }
    }

    #[test]
    fn seeds_diverge_and_links_diverge() {
        let a = FaultPlan::new(1).with_drop_per_mille(500);
        let b = FaultPlan::new(2).with_drop_per_mille(500);
        let diff = (0..1_000u64)
            .filter(|&s| a.drops(0, 1, s, 0) != b.drops(0, 1, s, 0))
            .count();
        assert!(diff > 100, "seeds should decorrelate: {diff}");
        let link_diff = (0..1_000u64)
            .filter(|&s| a.drops(0, 1, s, 0) != a.drops(1, 0, s, 0))
            .count();
        assert!(link_diff > 100, "links should decorrelate: {link_diff}");
    }

    #[test]
    fn builders_compose_a_crash_schedule() {
        let plan = FaultPlan::lossless(9)
            .cut_link(5_000_000, 0, 1)
            .crash_node(8_000_000, 2)
            .with_delay(50, 1_000)
            .with_duplicate_per_mille(10);
        assert_eq!(plan.events.len(), 2);
        assert_eq!(plan.events[0].1, FaultEvent::LinkCut { src: 0, dst: 1 });
        assert_eq!(plan.events[1].1, FaultEvent::NodeCrash { node: 2 });
        assert!(!plan.drops(0, 1, 3, 0));
        assert_eq!(plan.max_delay_us, 1_000);
    }
}
