//! Wire-format accounting helpers.
//!
//! The bandwidth figure of the paper (Figure 4) charges the full transport
//! cost of every tuple exchanged between nodes.  The engine serialises tuple
//! batches itself (it needs stable bytes to sign); this module centralises
//! the per-message framing overhead and small helpers for length-prefixed
//! encoding so that all crates charge identical byte counts.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Bytes of per-message framing charged on top of the payload.
///
/// The paper's prototype exchanges tuples over UDP: 20 bytes of IPv4 header
/// plus 8 bytes of UDP header, plus a 16-byte P2-style dataflow header
/// (source/destination dataflow ids and a length).
pub const MESSAGE_HEADER_BYTES: usize = 20 + 8 + 16;

/// Total wire bytes for a message with `payload_len` payload bytes.
pub fn message_wire_bytes(payload_len: usize) -> usize {
    MESSAGE_HEADER_BYTES + payload_len
}

/// What a [`Frame`] carries: data tuples, or a channel-setup handshake.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrameKind {
    /// A multi-tuple data shipment.
    #[default]
    Data,
    /// A session-channel key-establishment handshake (transcript plus the
    /// initiator's signature) — carried so channel setup shows up in the
    /// bandwidth figures instead of hiding outside the accounting.
    Handshake,
    /// A multi-tuple retraction shipment: tombstones for tuples whose
    /// remote derivations were withdrawn.  Charged exactly like a data
    /// frame — one header, one frame-level proof, per-tuple payloads — so
    /// deletion traffic shows up honestly in the bandwidth figures.
    Tombstone,
    /// A standalone cumulative acknowledgement for the reliability layer:
    /// one header plus an 8-byte cumulative sequence number, no tuples.
    /// Acks only exist when a fault plan is installed; on reliable links
    /// they are never emitted, so the baseline bandwidth figures are
    /// unchanged.
    Ack,
}

/// Wire accounting for one multi-tuple shipment frame.
///
/// A frame carries every tuple flushed for one `(source, destination,
/// predicate, due time)` batch.  The cost split is honest about what is
/// shared and what is not: one [`MESSAGE_HEADER_BYTES`] header and one
/// frame-level overhead charge (the `says` proof covering every tuple) are
/// paid per frame, while each tuple charges its own canonical encoding plus
/// its per-tuple annotations (provenance tag, piggybacked derivation
/// subtree).  The canonical signing payload is the concatenation of the
/// tuple encodings in shipment order — each encoding is self-delimiting, so
/// no extra framing bytes sit between tuples and a one-tuple frame costs
/// exactly what a per-tuple message used to.
///
/// Session-channel setup messages use the same accounting through
/// [`Frame::handshake`]: one header plus the transcript and signature bytes,
/// zero tuples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Frame {
    kind: FrameKind,
    tuple_count: usize,
    tuple_bytes: usize,
    frame_overhead: usize,
}

impl Frame {
    /// An empty data frame with no frame-level overhead.
    pub fn new() -> Self {
        Frame::default()
    }

    /// A key-establishment handshake message: one header plus the signed
    /// transcript, charged honestly (`transcript_bytes + signature_bytes`
    /// of payload, no tuples).
    pub fn handshake(transcript_bytes: usize, signature_bytes: usize) -> Self {
        Frame {
            kind: FrameKind::Handshake,
            tuple_count: 0,
            tuple_bytes: 0,
            frame_overhead: transcript_bytes + signature_bytes,
        }
    }

    /// A standalone cumulative-ack frame: one header plus an 8-byte
    /// cumulative sequence number.
    pub fn ack() -> Self {
        Frame {
            kind: FrameKind::Ack,
            tuple_count: 0,
            tuple_bytes: 0,
            frame_overhead: 8,
        }
    }

    /// An empty tombstone (retraction) frame: accounted like a data frame,
    /// with each retracted tuple charged via [`Frame::push_tuple`] and the
    /// frame proof via [`Frame::set_frame_overhead`].
    pub fn tombstone() -> Self {
        Frame {
            kind: FrameKind::Tombstone,
            ..Frame::default()
        }
    }

    /// Whether this frame ships data tuples or a channel handshake.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// Charges one tuple's payload bytes (encoding plus annotations).
    pub fn push_tuple(&mut self, bytes: usize) {
        self.tuple_count += 1;
        self.tuple_bytes += bytes;
    }

    /// Sets the frame-level overhead paid once per frame (e.g. the single
    /// `says` proof that covers every tuple).
    pub fn set_frame_overhead(&mut self, bytes: usize) {
        self.frame_overhead = bytes;
    }

    /// Number of tuples in the frame.
    pub fn tuples(&self) -> usize {
        self.tuple_count
    }

    /// Payload bytes: the per-frame overhead plus every tuple's bytes.
    pub fn payload_bytes(&self) -> usize {
        self.frame_overhead + self.tuple_bytes
    }

    /// Total wire bytes: one message header plus the payload.
    pub fn wire_bytes(&self) -> usize {
        message_wire_bytes(self.payload_bytes())
    }
}

/// Appends a length-prefixed byte string (`u32` big-endian length).
pub fn put_len_prefixed(out: &mut BytesMut, data: &[u8]) {
    out.put_u32(data.len() as u32);
    out.put_slice(data);
}

/// Reads a length-prefixed byte string written by [`put_len_prefixed`].
pub fn get_len_prefixed(buf: &mut Bytes) -> Option<Bytes> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return None;
    }
    Some(buf.copy_to_bytes(len))
}

/// Encoded size of a length-prefixed byte string.
pub fn len_prefixed_size(data_len: usize) -> usize {
    4 + data_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_overhead_is_charged_once_per_message() {
        assert_eq!(message_wire_bytes(0), MESSAGE_HEADER_BYTES);
        assert_eq!(message_wire_bytes(100), MESSAGE_HEADER_BYTES + 100);
    }

    #[test]
    fn frame_accounting_charges_header_and_proof_once() {
        let mut frame = Frame::new();
        assert_eq!(frame.tuples(), 0);
        assert_eq!(frame.wire_bytes(), MESSAGE_HEADER_BYTES);
        frame.set_frame_overhead(64);
        frame.push_tuple(30);
        frame.push_tuple(42);
        frame.push_tuple(30);
        assert_eq!(frame.tuples(), 3);
        assert_eq!(frame.payload_bytes(), 64 + 30 + 42 + 30);
        assert_eq!(frame.wire_bytes(), MESSAGE_HEADER_BYTES + 64 + 102);
        // A one-tuple frame costs exactly what a per-tuple message did:
        // header + payload + proof, nothing extra.
        let mut single = Frame::new();
        single.set_frame_overhead(64);
        single.push_tuple(30);
        assert_eq!(single.wire_bytes(), message_wire_bytes(30 + 64));
    }

    #[test]
    fn handshake_frames_charge_transcript_and_signature() {
        let hs = Frame::handshake(20, 64);
        assert_eq!(hs.kind(), FrameKind::Handshake);
        assert_eq!(hs.tuples(), 0);
        assert_eq!(hs.payload_bytes(), 84);
        assert_eq!(hs.wire_bytes(), MESSAGE_HEADER_BYTES + 84);
        assert_eq!(Frame::new().kind(), FrameKind::Data);
    }

    #[test]
    fn tombstone_frames_use_data_frame_accounting() {
        let mut tomb = Frame::tombstone();
        assert_eq!(tomb.kind(), FrameKind::Tombstone);
        tomb.set_frame_overhead(64);
        tomb.push_tuple(30);
        let mut data = Frame::new();
        data.set_frame_overhead(64);
        data.push_tuple(30);
        assert_eq!(tomb.wire_bytes(), data.wire_bytes());
        assert_eq!(tomb.tuples(), 1);
    }

    #[test]
    fn ack_frames_charge_header_plus_cumulative_seq() {
        let ack = Frame::ack();
        assert_eq!(ack.kind(), FrameKind::Ack);
        assert_eq!(ack.tuples(), 0);
        assert_eq!(ack.wire_bytes(), MESSAGE_HEADER_BYTES + 8);
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut out = BytesMut::new();
        put_len_prefixed(&mut out, b"hello");
        put_len_prefixed(&mut out, b"");
        put_len_prefixed(&mut out, &[0xffu8; 300]);
        assert_eq!(
            out.len(),
            len_prefixed_size(5) + len_prefixed_size(0) + len_prefixed_size(300)
        );
        let mut buf = out.freeze();
        assert_eq!(get_len_prefixed(&mut buf).unwrap().as_ref(), b"hello");
        assert_eq!(get_len_prefixed(&mut buf).unwrap().as_ref(), b"");
        assert_eq!(get_len_prefixed(&mut buf).unwrap().len(), 300);
        assert!(get_len_prefixed(&mut buf).is_none());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut out = BytesMut::new();
        out.put_u32(10);
        out.put_slice(b"short");
        let mut buf = out.freeze();
        assert!(get_len_prefixed(&mut buf).is_none());
        let mut tiny = Bytes::from_static(&[0, 0]);
        assert!(get_len_prefixed(&mut tiny).is_none());
    }
}
