//! # pasn-net
//!
//! Deterministic network substrate for the *Provenance-aware Secure
//! Networks* reproduction (Zhou, Cronin, Loo — ICDE 2008).
//!
//! The paper evaluates its prototype by running up to 100 P2 processes on a
//! single machine and measuring query completion time and total bandwidth.
//! This crate provides the equivalent substrate for an in-process
//! reproduction:
//!
//! * [`topology`] — topology generators, including the random
//!   average-out-degree-3 graphs of the evaluation and the three-node example
//!   of Figure 1;
//! * [`sim`] — a discrete-event transport with a simulated clock, a
//!   per-operation [`sim::CostModel`], per-node CPU serialisation and global
//!   traffic statistics (the sources of Figures 3 and 4);
//! * [`wire`] — shared wire-format accounting so every crate charges
//!   identical byte counts;
//! * [`fault`] — deterministic, seeded fault plans (frame loss, duplication,
//!   extra delay, crash-without-drain link cuts and node crashes) consumed
//!   by the engine's reliability layer.
//!
//! ```
//! use pasn_net::{NodeId, topology::Topology, sim::{NetworkSim, CostModel, Message, SimTime}};
//!
//! let topo = Topology::random_out_degree(10, 3, 10, 42);
//! assert!(topo.is_strongly_connected());
//!
//! let mut net: NetworkSim<Vec<u8>> = NetworkSim::new(CostModel::paper_2008());
//! net.send(SimTime::ZERO, Message {
//!     src: NodeId(0), dst: NodeId(1), payload: vec![1, 2, 3],
//!     wire_bytes: pasn_net::wire::message_wire_bytes(3),
//! });
//! let (at, msg) = net.deliver_next().unwrap();
//! assert_eq!(msg.dst, NodeId(1));
//! assert!(at > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod fault;
pub mod sim;
pub mod topology;
pub mod wire;

pub use fault::{FaultEvent, FaultPlan};
pub use sim::{CostModel, CpuSchedule, Message, NetworkSim, SimTime, TrafficStats};
pub use topology::{Link, Topology};

/// Identifier of a simulated network node.
///
/// Nodes double as security principals: `NodeId(i)` corresponds to
/// `PrincipalId(i)` in `pasn-crypto`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_conversion() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId::from(3u32), NodeId(3));
        assert!(NodeId(1) < NodeId(2));
    }
}
