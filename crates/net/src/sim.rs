//! Deterministic discrete-event simulation of the node-to-node transport.
//!
//! The paper's evaluation runs up to 100 P2 processes on a single machine and
//! measures (a) query completion time — wall-clock until the distributed
//! fixpoint — and (b) total bandwidth across all nodes.  This reproduction
//! runs all nodes in one process on a simulated clock: each message is
//! delivered after a latency derived from its size, and each unit of work the
//! engine reports (tuple processed, signature generated or verified,
//! provenance operation) advances the clock of the node performing it
//! according to a [`CostModel`].  Completion time is then the simulated time
//! at which the last event drains, and bandwidth is the sum of wire bytes —
//! both independent of the host machine, which keeps figures reproducible.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::ops::{Add, AddAssign};

/// A point in simulated time, in microseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds a time from seconds (saturating).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e6) as u64)
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time as whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Per-operation costs used to advance the simulated clock.
///
/// The defaults are calibrated to the hardware class of the paper's testbed
/// (a 2.33 GHz Xeon running 100 co-located processes): what matters for the
/// reproduction is the *ratio* between plain tuple processing, MAC or
/// signature work, and provenance maintenance, because that ratio is what
/// produces the relative overheads reported in Section 6.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-message propagation latency (µs).
    pub link_latency_us: u64,
    /// Additional transmission latency per byte (µs); models the shared
    /// loopback bandwidth of co-located processes.
    pub per_byte_us: f64,
    /// CPU cost to process one tuple through the rule engine (µs), excluding
    /// join probing.
    pub tuple_process_us: u64,
    /// CPU cost per stored tuple probed while evaluating a join (µs).  Join
    /// state grows with the network size, so this term is what makes the
    /// baseline query cost grow faster than the (constant per-tuple) crypto
    /// cost — the effect behind the paper's observation that the relative
    /// overhead of authentication shrinks as N grows.
    pub join_probe_us: f64,
    /// CPU cost to generate one RSA signature (µs).
    pub rsa_sign_us: u64,
    /// CPU cost to verify one RSA signature (µs).
    pub rsa_verify_us: u64,
    /// CPU cost to compute one HMAC (µs).
    pub hmac_us: u64,
    /// CPU cost of one provenance (BDD) operation (µs).
    pub provenance_op_us: u64,
    /// CPU cost per seq-list entry walked while compacting a relation's
    /// insertion-order list after deletions (µs).  Compaction is deferred
    /// maintenance triggered by retractions/expiry; charging it per entry to
    /// the *owning node's* CPU lane keeps the cost attributable to that
    /// node's partition instead of silently extending the global clock.
    pub compact_entry_us: f64,
}

impl CostModel {
    /// Cost model approximating the paper's 2008 testbed.
    ///
    /// RSA-1024 sign on a 2.33 GHz core was on the order of 1–2 ms and verify
    /// roughly 50–100 µs.  P2's per-tuple dataflow cost with 100 co-located
    /// processes was in the millisecond range and grows with the size of the
    /// join state, which is why the paper's relative authentication overhead
    /// (~53% on average) shrinks as the network grows.
    pub fn paper_2008() -> Self {
        CostModel {
            link_latency_us: 1_000,
            per_byte_us: 0.05,
            tuple_process_us: 2_000,
            join_probe_us: 10.0,
            rsa_sign_us: 1_500,
            rsa_verify_us: 80,
            hmac_us: 6,
            provenance_op_us: 500,
            compact_entry_us: 0.05,
        }
    }

    /// A cost model with zero CPU costs (only link latency), used by unit
    /// tests that exercise transport behaviour in isolation.
    pub fn zero_cpu() -> Self {
        CostModel {
            link_latency_us: 1_000,
            per_byte_us: 0.0,
            tuple_process_us: 0,
            join_probe_us: 0.0,
            rsa_sign_us: 0,
            rsa_verify_us: 0,
            hmac_us: 0,
            provenance_op_us: 0,
            compact_entry_us: 0.0,
        }
    }

    /// Transmission + propagation latency for a message of `bytes` bytes.
    pub fn message_latency(&self, bytes: usize) -> SimTime {
        SimTime(self.link_latency_us + (self.per_byte_us * bytes as f64) as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_2008()
    }
}

/// A message in flight between two simulated nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Message<T> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Opaque payload (the engine ships serialized tuple batches).
    pub payload: T,
    /// Number of bytes this message occupies on the wire, including headers;
    /// this is what the bandwidth metric accumulates.
    pub wire_bytes: usize,
}

/// Aggregate transport statistics, the source of the paper's Figure 4.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Total messages sent across all nodes.
    pub messages: u64,
    /// Total bytes sent across all nodes (including per-message headers).
    pub bytes: u64,
    /// Bytes sent per source node.
    pub bytes_per_node: HashMap<u32, u64>,
}

impl TrafficStats {
    /// Total bandwidth in megabytes (the unit of Figure 4).
    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1_000_000.0
    }

    /// Records one sent message.
    pub fn record(&mut self, src: NodeId, wire_bytes: usize) {
        self.messages += 1;
        self.bytes += wire_bytes as u64;
        *self.bytes_per_node.entry(src.0).or_default() += wire_bytes as u64;
    }
}

#[derive(PartialEq, Eq)]
struct QueueEntry {
    deliver_at: SimTime,
    seq: u64,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The discrete-event message transport.
///
/// `T` is the payload type; the engine uses serialized tuple batches.  The
/// simulator delivers messages in global timestamp order (ties broken by send
/// order), which makes runs fully deterministic.
pub struct NetworkSim<T> {
    cost: CostModel,
    queue: BinaryHeap<Reverse<QueueEntry>>,
    in_flight: HashMap<u64, Message<T>>,
    next_seq: u64,
    stats: TrafficStats,
    /// Latest timestamp ever observed (send or delivery).
    horizon: SimTime,
}

impl<T> NetworkSim<T> {
    /// Creates an empty transport with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        NetworkSim {
            cost,
            queue: BinaryHeap::new(),
            in_flight: HashMap::new(),
            next_seq: 0,
            stats: TrafficStats::default(),
            horizon: SimTime::ZERO,
        }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Sends `payload` from `src` to `dst` at simulated time `now`; returns
    /// the delivery timestamp.
    pub fn send(&mut self, now: SimTime, message: Message<T>) -> SimTime {
        let deliver_at = now + self.cost.message_latency(message.wire_bytes);
        self.stats.record(message.src, message.wire_bytes);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight.insert(seq, message);
        self.queue.push(Reverse(QueueEntry { deliver_at, seq }));
        self.horizon = self.horizon.max(deliver_at).max(now);
        deliver_at
    }

    /// Removes and returns the next message in delivery order, along with its
    /// delivery time.  Returns `None` when no messages are in flight.
    pub fn deliver_next(&mut self) -> Option<(SimTime, Message<T>)> {
        let Reverse(entry) = self.queue.pop()?;
        let message = self
            .in_flight
            .remove(&entry.seq)
            .expect("queued message still in flight");
        Some((entry.deliver_at, message))
    }

    /// Number of messages currently in flight.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no messages are in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Aggregate traffic statistics so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Latest simulated timestamp observed.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }
}

/// Tracks per-node CPU availability on the simulated clock.
///
/// Each node is a single-threaded process (as in the paper's setup); work
/// items submitted to a node execute sequentially, so a burst of expensive
/// signature operations delays subsequent processing on that node — which is
/// exactly the effect behind the SeNDlog overhead in Figure 3.
#[derive(Clone, Debug, Default)]
pub struct CpuSchedule {
    busy_until: HashMap<u32, SimTime>,
}

impl CpuSchedule {
    /// Creates an all-idle schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `work` on `node` starting no earlier than `now`; returns the
    /// completion time and marks the node busy until then.
    pub fn run(&mut self, node: NodeId, now: SimTime, work: SimTime) -> SimTime {
        let start = self
            .busy_until
            .get(&node.0)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(now);
        let done = start + work;
        self.busy_until.insert(node.0, done);
        done
    }

    /// The time at which `node` becomes idle.
    pub fn idle_at(&self, node: NodeId) -> SimTime {
        self.busy_until
            .get(&node.0)
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    /// The latest busy-until time across all nodes.
    pub fn latest(&self) -> SimTime {
        self.busy_until
            .values()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime(1) + SimTime(2), SimTime(3));
        assert_eq!(SimTime::from_micros(5).to_string(), "0.000005s");
    }

    #[test]
    fn cost_model_latency_scales_with_size() {
        let cost = CostModel::paper_2008();
        let small = cost.message_latency(100);
        let large = cost.message_latency(10_000);
        assert!(large > small);
        assert_eq!(CostModel::zero_cpu().message_latency(1_000), SimTime(1_000));
    }

    #[test]
    fn messages_are_delivered_in_timestamp_order() {
        let mut net: NetworkSim<&'static str> = NetworkSim::new(CostModel::zero_cpu());
        // Larger messages take longer (per_byte 0 here, so same latency —
        // delivery falls back to send order).
        net.send(
            SimTime(0),
            Message {
                src: NodeId(0),
                dst: NodeId(1),
                payload: "first",
                wire_bytes: 10,
            },
        );
        net.send(
            SimTime(0),
            Message {
                src: NodeId(0),
                dst: NodeId(2),
                payload: "second",
                wire_bytes: 10,
            },
        );
        net.send(
            SimTime(5_000),
            Message {
                src: NodeId(1),
                dst: NodeId(2),
                payload: "third",
                wire_bytes: 10,
            },
        );
        assert_eq!(net.pending(), 3);

        let (t1, m1) = net.deliver_next().unwrap();
        let (t2, m2) = net.deliver_next().unwrap();
        let (t3, m3) = net.deliver_next().unwrap();
        assert_eq!(
            (m1.payload, m2.payload, m3.payload),
            ("first", "second", "third")
        );
        assert!(t1 <= t2 && t2 <= t3);
        assert!(net.is_idle());
        assert!(net.deliver_next().is_none());
    }

    #[test]
    fn per_byte_latency_reorders_relative_to_send_order() {
        let cost = CostModel {
            per_byte_us: 1.0,
            link_latency_us: 0,
            ..CostModel::zero_cpu()
        };
        let mut net: NetworkSim<&'static str> = NetworkSim::new(cost);
        net.send(
            SimTime(0),
            Message {
                src: NodeId(0),
                dst: NodeId(1),
                payload: "big",
                wire_bytes: 1_000,
            },
        );
        net.send(
            SimTime(0),
            Message {
                src: NodeId(0),
                dst: NodeId(1),
                payload: "small",
                wire_bytes: 10,
            },
        );
        let (_, first) = net.deliver_next().unwrap();
        assert_eq!(first.payload, "small");
    }

    #[test]
    fn traffic_stats_accumulate_bytes_and_messages() {
        let mut net: NetworkSim<u8> = NetworkSim::new(CostModel::paper_2008());
        net.send(
            SimTime(0),
            Message {
                src: NodeId(3),
                dst: NodeId(1),
                payload: 0,
                wire_bytes: 500,
            },
        );
        net.send(
            SimTime(0),
            Message {
                src: NodeId(3),
                dst: NodeId(2),
                payload: 0,
                wire_bytes: 700,
            },
        );
        net.send(
            SimTime(0),
            Message {
                src: NodeId(1),
                dst: NodeId(3),
                payload: 0,
                wire_bytes: 300,
            },
        );
        let stats = net.stats();
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.bytes, 1_500);
        assert_eq!(stats.bytes_per_node[&3], 1_200);
        assert!((stats.megabytes() - 0.0015).abs() < 1e-9);
    }

    #[test]
    fn horizon_tracks_latest_activity() {
        let mut net: NetworkSim<u8> = NetworkSim::new(CostModel::zero_cpu());
        let t = net.send(
            SimTime(10),
            Message {
                src: NodeId(0),
                dst: NodeId(1),
                payload: 0,
                wire_bytes: 1,
            },
        );
        assert_eq!(net.horizon(), t);
    }

    #[test]
    fn cpu_schedule_serialises_work_per_node() {
        let mut cpu = CpuSchedule::new();
        let done1 = cpu.run(NodeId(0), SimTime(0), SimTime(100));
        let done2 = cpu.run(NodeId(0), SimTime(0), SimTime(50));
        assert_eq!(done1, SimTime(100));
        // Second task waits for the first even though it was submitted at t=0.
        assert_eq!(done2, SimTime(150));
        // A different node runs in parallel.
        let done3 = cpu.run(NodeId(1), SimTime(0), SimTime(30));
        assert_eq!(done3, SimTime(30));
        assert_eq!(cpu.idle_at(NodeId(0)), SimTime(150));
        assert_eq!(cpu.latest(), SimTime(150));
        // Work submitted after the node went idle starts at submission time.
        let done4 = cpu.run(NodeId(1), SimTime(500), SimTime(10));
        assert_eq!(done4, SimTime(510));
    }
}
