//! Network topologies and generators.
//!
//! The paper's evaluation (Section 6) runs the Best-Path query over randomly
//! generated topologies: *"As input, we insert link tables for N nodes with
//! average outdegree of three, and vary the size of N from 10 to 100."*
//! [`Topology::random_out_degree`] reproduces that workload; the other
//! generators cover the worked examples (the three-node network of Figure 1)
//! and additional regression topologies (ring, line, grid, full mesh).

use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// A unidirectional link with an integer cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Link {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Link cost (used by the Best-Path query).
    pub cost: u32,
}

/// A directed network topology.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Topology {
    nodes: Vec<NodeId>,
    links: Vec<Link>,
    adjacency: HashMap<NodeId, Vec<Link>>,
}

impl Topology {
    /// Builds a topology from an explicit node and link list.  Nodes
    /// referenced by links are added automatically.
    pub fn new(nodes: impl IntoIterator<Item = NodeId>, links: Vec<Link>) -> Self {
        let mut node_set: BTreeSet<NodeId> = nodes.into_iter().collect();
        for l in &links {
            node_set.insert(l.src);
            node_set.insert(l.dst);
        }
        let mut adjacency: HashMap<NodeId, Vec<Link>> = HashMap::new();
        for l in &links {
            adjacency.entry(l.src).or_default().push(*l);
        }
        Topology {
            nodes: node_set.into_iter().collect(),
            links,
            adjacency,
        }
    }

    /// The example network of Figure 1: three nodes `a`, `b`, `c` (0, 1, 2)
    /// and unidirectional links a→b, a→c, b→c, all of cost 1.
    pub fn paper_figure1() -> Self {
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        Topology::new(
            [a, b, c],
            vec![
                Link {
                    src: a,
                    dst: b,
                    cost: 1,
                },
                Link {
                    src: a,
                    dst: c,
                    cost: 1,
                },
                Link {
                    src: b,
                    dst: c,
                    cost: 1,
                },
            ],
        )
    }

    /// A bidirectional ring of `n` nodes with unit costs.
    pub fn ring(n: u32) -> Self {
        assert!(n >= 2);
        let mut links = Vec::new();
        for i in 0..n {
            let next = (i + 1) % n;
            links.push(Link {
                src: NodeId(i),
                dst: NodeId(next),
                cost: 1,
            });
            links.push(Link {
                src: NodeId(next),
                dst: NodeId(i),
                cost: 1,
            });
        }
        Topology::new((0..n).map(NodeId), links)
    }

    /// A bidirectional line (path graph) of `n` nodes with unit costs.
    pub fn line(n: u32) -> Self {
        assert!(n >= 2);
        let mut links = Vec::new();
        for i in 0..n - 1 {
            links.push(Link {
                src: NodeId(i),
                dst: NodeId(i + 1),
                cost: 1,
            });
            links.push(Link {
                src: NodeId(i + 1),
                dst: NodeId(i),
                cost: 1,
            });
        }
        Topology::new((0..n).map(NodeId), links)
    }

    /// A bidirectional `w × h` grid with unit costs.
    pub fn grid(w: u32, h: u32) -> Self {
        assert!(w >= 1 && h >= 1 && w * h >= 2);
        let id = |x: u32, y: u32| NodeId(y * w + x);
        let mut links = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    links.push(Link {
                        src: id(x, y),
                        dst: id(x + 1, y),
                        cost: 1,
                    });
                    links.push(Link {
                        src: id(x + 1, y),
                        dst: id(x, y),
                        cost: 1,
                    });
                }
                if y + 1 < h {
                    links.push(Link {
                        src: id(x, y),
                        dst: id(x, y + 1),
                        cost: 1,
                    });
                    links.push(Link {
                        src: id(x, y + 1),
                        dst: id(x, y),
                        cost: 1,
                    });
                }
            }
        }
        Topology::new((0..w * h).map(NodeId), links)
    }

    /// A full mesh over `n` nodes with unit costs (every ordered pair linked).
    pub fn full_mesh(n: u32) -> Self {
        assert!(n >= 2);
        let mut links = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    links.push(Link {
                        src: NodeId(i),
                        dst: NodeId(j),
                        cost: 1,
                    });
                }
            }
        }
        Topology::new((0..n).map(NodeId), links)
    }

    /// The paper's evaluation workload: `n` nodes, each with `out_degree`
    /// outgoing links to distinct random neighbours, link costs drawn
    /// uniformly from `1..=max_cost`.  A ring backbone is added first so the
    /// graph is always strongly connected (every pair of nodes has a best
    /// path and the recursive query reaches a global fixpoint), then random
    /// links are added until the average out-degree is reached.
    pub fn random_out_degree(n: u32, out_degree: u32, max_cost: u32, seed: u64) -> Self {
        assert!(n >= 2);
        assert!(out_degree >= 1);
        let max_cost = max_cost.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut links = Vec::new();
        let mut existing: HashSet<(u32, u32)> = HashSet::new();
        // Ring backbone (1 outgoing link per node).
        for i in 0..n {
            let next = (i + 1) % n;
            existing.insert((i, next));
            links.push(Link {
                src: NodeId(i),
                dst: NodeId(next),
                cost: rng.gen_range(1..=max_cost),
            });
        }
        // Remaining out_degree - 1 random links per node.
        for i in 0..n {
            let mut added = 1u32;
            let mut attempts = 0u32;
            while added < out_degree && attempts < 20 * out_degree {
                attempts += 1;
                let j = rng.gen_range(0..n);
                if j == i || existing.contains(&(i, j)) {
                    continue;
                }
                existing.insert((i, j));
                links.push(Link {
                    src: NodeId(i),
                    dst: NodeId(j),
                    cost: rng.gen_range(1..=max_cost),
                });
                added += 1;
            }
        }
        Topology::new((0..n).map(NodeId), links)
    }

    /// `clusters` disjoint communities of `cluster_size` nodes each: a
    /// bidirectional ring backbone per cluster plus `chords_per_node` random
    /// intra-cluster chords.  Because the clusters are disconnected from one
    /// another, the reachability fixpoint is `clusters × cluster_size²`
    /// tuples rather than `N²` — the shape used by the 10k-node scale
    /// workload, where a flat strongly-connected graph would make the
    /// *query* quadratic in N and drown out the engine costs under test.
    pub fn clustered(clusters: u32, cluster_size: u32, chords_per_node: u32, seed: u64) -> Self {
        assert!(clusters >= 1);
        assert!(cluster_size >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut links = Vec::new();
        let mut existing: HashSet<(u32, u32)> = HashSet::new();
        for c in 0..clusters {
            let base = c * cluster_size;
            for i in 0..cluster_size {
                let a = base + i;
                let b = base + (i + 1) % cluster_size;
                for (src, dst) in [(a, b), (b, a)] {
                    if existing.insert((src, dst)) {
                        links.push(Link {
                            src: NodeId(src),
                            dst: NodeId(dst),
                            cost: 1,
                        });
                    }
                }
            }
            for i in 0..cluster_size {
                let a = base + i;
                let mut added = 0u32;
                let mut attempts = 0u32;
                while added < chords_per_node && attempts < 20 * (chords_per_node + 1) {
                    attempts += 1;
                    let b = base + rng.gen_range(0..cluster_size);
                    if b == a || existing.contains(&(a, b)) {
                        continue;
                    }
                    existing.insert((a, b));
                    links.push(Link {
                        src: NodeId(a),
                        dst: NodeId(b),
                        cost: 1,
                    });
                    added += 1;
                }
            }
        }
        Topology::new((0..clusters * cluster_size).map(NodeId), links)
    }

    /// All nodes, in ascending id order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Average out-degree across nodes.
    pub fn average_out_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            self.links.len() as f64 / self.nodes.len() as f64
        }
    }

    /// Outgoing links of `node`.
    pub fn outgoing(&self, node: NodeId) -> &[Link] {
        self.adjacency.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Outgoing neighbour nodes of `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.outgoing(node).iter().map(|l| l.dst)
    }

    /// True if every node can reach every other node following directed
    /// links.
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.len() <= 1 {
            return true;
        }
        let reach_all = |start: NodeId, reverse: bool| {
            let mut seen: HashSet<NodeId> = HashSet::new();
            let mut queue = VecDeque::new();
            seen.insert(start);
            queue.push_back(start);
            while let Some(cur) = queue.pop_front() {
                let next_nodes: Vec<NodeId> = if reverse {
                    self.links
                        .iter()
                        .filter(|l| l.dst == cur)
                        .map(|l| l.src)
                        .collect()
                } else {
                    self.neighbors(cur).collect()
                };
                for n in next_nodes {
                    if seen.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
            seen.len() == self.nodes.len()
        };
        let start = self.nodes[0];
        reach_all(start, false) && reach_all(start, true)
    }

    /// Single-source shortest path costs (Dijkstra over link costs).  Used by
    /// tests and the experiment harness as an oracle for the Best-Path query.
    pub fn shortest_path_costs(&self, src: NodeId) -> HashMap<NodeId, u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist: HashMap<NodeId, u64> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(src, 0);
        heap.push(Reverse((0u64, src)));
        while let Some(Reverse((d, node))) = heap.pop() {
            if dist.get(&node).copied().unwrap_or(u64::MAX) < d {
                continue;
            }
            for link in self.outgoing(node) {
                let nd = d + link.cost as u64;
                if nd < dist.get(&link.dst).copied().unwrap_or(u64::MAX) {
                    dist.insert(link.dst, nd);
                    heap.push(Reverse((nd, link.dst)));
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn figure1_topology_matches_the_paper() {
        let t = Topology::paper_figure1();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        let a = NodeId(0);
        let neighbors: Vec<NodeId> = t.neighbors(a).collect();
        assert_eq!(neighbors, vec![NodeId(1), NodeId(2)]);
        // c has no outgoing links.
        assert_eq!(t.outgoing(NodeId(2)).len(), 0);
        assert!(!t.is_strongly_connected());
    }

    #[test]
    fn ring_line_grid_shapes() {
        let ring = Topology::ring(5);
        assert_eq!(ring.node_count(), 5);
        assert_eq!(ring.link_count(), 10);
        assert!(ring.is_strongly_connected());

        let line = Topology::line(4);
        assert_eq!(line.link_count(), 6);
        assert!(line.is_strongly_connected());

        let grid = Topology::grid(3, 2);
        assert_eq!(grid.node_count(), 6);
        assert_eq!(grid.link_count(), 2 * (2 * 2 + 3));
        assert!(grid.is_strongly_connected());

        let mesh = Topology::full_mesh(4);
        assert_eq!(mesh.link_count(), 12);
        assert!(mesh.is_strongly_connected());
    }

    #[test]
    fn random_topology_matches_evaluation_parameters() {
        let t = Topology::random_out_degree(50, 3, 10, 42);
        assert_eq!(t.node_count(), 50);
        // Average out-degree of (about) three.
        let avg = t.average_out_degree();
        assert!((2.5..=3.0).contains(&avg), "avg out-degree {avg}");
        assert!(t.is_strongly_connected());
        // All costs within bounds.
        assert!(t.links().iter().all(|l| (1..=10).contains(&l.cost)));
        // No self loops, no duplicate links.
        assert!(t.links().iter().all(|l| l.src != l.dst));
        let mut seen = HashSet::new();
        assert!(t.links().iter().all(|l| seen.insert((l.src, l.dst))));
    }

    #[test]
    fn clustered_topology_is_disjoint_communities() {
        let t = Topology::clustered(4, 10, 1, 11);
        assert_eq!(t.node_count(), 40);
        // Every link stays inside its cluster of 10.
        assert!(t.links().iter().all(|l| l.src.0 / 10 == l.dst.0 / 10));
        // No self loops, no duplicates.
        assert!(t.links().iter().all(|l| l.src != l.dst));
        let mut seen = HashSet::new();
        assert!(t.links().iter().all(|l| seen.insert((l.src, l.dst))));
        // Each cluster is internally strongly connected (ring backbone), so
        // reachability from node 0 covers exactly its own cluster.
        let costs = t.shortest_path_costs(NodeId(0));
        assert_eq!(costs.len(), 10);
        assert!(costs.keys().all(|n| n.0 < 10));
        // Deterministic per seed.
        assert_eq!(t.links(), Topology::clustered(4, 10, 1, 11).links());
        assert_ne!(t.links(), Topology::clustered(4, 10, 1, 12).links());
    }

    #[test]
    fn random_topology_is_deterministic_per_seed() {
        let a = Topology::random_out_degree(20, 3, 5, 7);
        let b = Topology::random_out_degree(20, 3, 5, 7);
        let c = Topology::random_out_degree(20, 3, 5, 8);
        assert_eq!(a.links(), b.links());
        assert_ne!(a.links(), c.links());
    }

    #[test]
    fn dijkstra_oracle_on_known_graph() {
        let t = Topology::line(4);
        let costs = t.shortest_path_costs(NodeId(0));
        assert_eq!(costs[&NodeId(0)], 0);
        assert_eq!(costs[&NodeId(3)], 3);

        let fig1 = Topology::paper_figure1();
        let costs = fig1.shortest_path_costs(NodeId(0));
        assert_eq!(costs[&NodeId(2)], 1);
        // b cannot reach a.
        let from_b = fig1.shortest_path_costs(NodeId(1));
        assert!(!from_b.contains_key(&NodeId(0)));
    }

    #[test]
    fn new_adds_nodes_referenced_only_by_links() {
        let t = Topology::new(
            [],
            vec![Link {
                src: NodeId(9),
                dst: NodeId(3),
                cost: 2,
            }],
        );
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.nodes(), &[NodeId(3), NodeId(9)]);
    }

    proptest! {
        #[test]
        fn prop_random_topologies_are_strongly_connected(
            n in 2u32..40,
            degree in 1u32..5,
            seed in any::<u64>()
        ) {
            let t = Topology::random_out_degree(n, degree, 10, seed);
            prop_assert!(t.is_strongly_connected());
            prop_assert_eq!(t.node_count() as u32, n);
        }

        #[test]
        fn prop_dijkstra_distances_respect_triangle_inequality(
            n in 2u32..20,
            seed in any::<u64>()
        ) {
            let t = Topology::random_out_degree(n, 3, 10, seed);
            let src = NodeId(0);
            let dist = t.shortest_path_costs(src);
            for link in t.links() {
                if let (Some(&du), Some(&dv)) = (dist.get(&link.src), dist.get(&link.dst)) {
                    prop_assert!(dv <= du + link.cost as u64);
                }
            }
        }
    }
}
