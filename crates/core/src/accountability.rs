//! Accountability (Section 3, third use case): per-principal usage auditing,
//! the PlanetFlow analogue.
//!
//! PlanetFlow maintains, for every PlanetLab service, a record of all traffic
//! it generated.  Here the equivalent audit is produced from the simulator's
//! per-node traffic counters plus each node's offline archive: for every
//! principal we report the bytes it pushed into the network and the number of
//! derivations it asserted.

use crate::network::SecureNetwork;
use pasn_datalog::Value;
use std::fmt;

/// The audit record of one principal.
#[derive(Clone, Debug, PartialEq)]
pub struct PrincipalUsage {
    /// The principal's location value.
    pub location: Value,
    /// Bytes this principal sent into the network.
    pub bytes_sent: u64,
    /// Derivations this principal asserted (from its offline archive, when
    /// enabled).
    pub derivations: usize,
    /// Tuples currently stored at this principal's node.
    pub tuples_stored: usize,
}

/// A network-wide accountability report.
#[derive(Clone, Debug, Default)]
pub struct AccountabilityReport {
    /// Per-principal usage, sorted by descending bytes sent.
    pub usage: Vec<PrincipalUsage>,
}

impl AccountabilityReport {
    /// Builds the report from a finished deployment.
    pub fn collect(network: &SecureNetwork) -> Self {
        let bytes = network.bytes_sent_per_node();
        let mut usage: Vec<PrincipalUsage> = network
            .engine()
            .locations()
            .iter()
            .map(|loc| {
                let derivations = network.archive(loc).map_or(0, |a| a.len());
                let tuples_stored = count_all_tuples(network, loc);
                PrincipalUsage {
                    location: loc.clone(),
                    bytes_sent: bytes.get(loc).copied().unwrap_or(0),
                    derivations,
                    tuples_stored,
                }
            })
            .collect();
        usage.sort_by(|a, b| {
            b.bytes_sent
                .cmp(&a.bytes_sent)
                .then(a.location.cmp(&b.location))
        });
        AccountabilityReport { usage }
    }

    /// Total bytes across all principals.
    pub fn total_bytes(&self) -> u64 {
        self.usage.iter().map(|u| u.bytes_sent).sum()
    }

    /// The heaviest senders, most active first.
    pub fn top_senders(&self, k: usize) -> &[PrincipalUsage] {
        &self.usage[..k.min(self.usage.len())]
    }

    /// Principals whose traffic exceeds `fraction` of the total — candidates
    /// for policy enforcement ("ensure that all users are in accordance with
    /// PlanetLab policies").
    pub fn over_quota(&self, fraction: f64) -> Vec<&PrincipalUsage> {
        let total = self.total_bytes() as f64;
        if total == 0.0 {
            return Vec::new();
        }
        self.usage
            .iter()
            .filter(|u| u.bytes_sent as f64 / total > fraction)
            .collect()
    }
}

impl fmt::Display for AccountabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>12} {:>12} {:>12}",
            "principal", "bytes", "derivations", "tuples"
        )?;
        for u in &self.usage {
            writeln!(
                f,
                "{:<12} {:>12} {:>12} {:>12}",
                u.location.to_string(),
                u.bytes_sent,
                u.derivations,
                u.tuples_stored
            )?;
        }
        Ok(())
    }
}

fn count_all_tuples(network: &SecureNetwork, location: &Value) -> usize {
    // Sum tuple counts over all predicates the node stores.
    let engine = network.engine();
    let mut total = 0;
    for predicate in [
        "link",
        "reachable",
        "path",
        "bestPath",
        "bestPathCost",
        "linkD",
    ] {
        total += engine.query(location, predicate).len();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SecureNetwork;
    use crate::programs;
    use pasn_engine::EngineConfig;
    use pasn_net::{CostModel, Topology};

    fn run_network() -> SecureNetwork {
        let mut config = EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu());
        config.archive_offline = true;
        let mut net = SecureNetwork::builder()
            .program(programs::reachability_ndlog())
            .topology(Topology::ring(5))
            .config(config)
            .build()
            .unwrap();
        net.run().unwrap();
        net
    }

    #[test]
    fn report_covers_every_principal_and_sorts_by_bytes() {
        let net = run_network();
        let report = AccountabilityReport::collect(&net);
        assert_eq!(report.usage.len(), 5);
        assert!(report.total_bytes() > 0);
        // Sorted descending.
        for pair in report.usage.windows(2) {
            assert!(pair[0].bytes_sent >= pair[1].bytes_sent);
        }
        // Every node stores tuples and asserted derivations.
        assert!(report.usage.iter().all(|u| u.tuples_stored > 0));
        assert!(report.usage.iter().all(|u| u.derivations > 0));
        let rendered = report.to_string();
        assert!(rendered.contains("principal"));
        assert!(rendered.contains("n0"));
    }

    #[test]
    fn top_senders_and_quota_checks() {
        let net = run_network();
        let report = AccountabilityReport::collect(&net);
        assert_eq!(report.top_senders(2).len(), 2);
        assert_eq!(report.top_senders(100).len(), 5);
        // In a symmetric ring nobody exceeds half the traffic.
        assert!(report.over_quota(0.5).is_empty());
        // Everybody exceeds a 1% quota.
        assert_eq!(report.over_quota(0.01).len(), 5);
        // Degenerate report.
        let empty = AccountabilityReport::default();
        assert!(empty.over_quota(0.1).is_empty());
        assert_eq!(empty.total_bytes(), 0);
    }
}
