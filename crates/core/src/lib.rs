//! # pasn — Provenance-aware Secure Networks
//!
//! A from-scratch Rust reproduction of *Provenance-aware Secure Networks*
//! (Wenchao Zhou, Eric Cronin, Boon Thau Loo — ICDE Workshops 2008).
//!
//! The paper argues that network accountability and forensic analysis can be
//! posed as **data provenance computations over distributed streams**, using
//! declarative networks (NDlog) with security extensions (SeNDlog's `says`
//! operator) as the unified substrate.  This crate is the public facade over
//! the full reproduction:
//!
//! * [`programs`] — the paper's declarative programs (reachability in NDlog
//!   and SeNDlog form, the Best-Path evaluation query, a route monitor);
//! * [`network`] — [`SecureNetwork`], a builder tying a topology, a program
//!   and an [`pasn_engine::EngineConfig`] into a runnable deployment;
//! * [`workload`] — topology → base-fact generators and the evaluation
//!   workload (N nodes, average out-degree three);
//! * [`experiment`] — the harness regenerating Figures 3 and 4 and the
//!   Section 6 summary statistics;
//! * [`trust`] — trust-management policies over condensed / quantifiable
//!   provenance (trusted principal sets, minimum trust levels, K-of-N votes);
//! * [`diagnostics`] — real-time route-flap detection plus online-provenance
//!   diagnosis;
//! * [`forensics`] — offline provenance archives and distributed traceback;
//! * [`accountability`] — per-principal usage audits (the PlanetFlow
//!   analogue);
//! * [`billing`] — "diverse billing" (the introduction's fourth use case):
//!   rate plans applied to the accountability report;
//! * [`baseline`] — imperative Bellman–Ford / Dijkstra oracles the tests and
//!   benches compare the declarative programs against.
//!
//! ## Quickstart
//!
//! ```
//! use pasn::prelude::*;
//!
//! // The paper's three-node example network (Figure 1) running the
//! // reachability query with condensed, authenticated provenance.
//! let mut net = SecureNetwork::builder()
//!     .program(pasn::programs::reachability_ndlog())
//!     .topology(Topology::paper_figure1())
//!     .config(EngineConfig::sendlog_prov().with_cost_model(CostModel::zero_cpu()))
//!     .build()
//!     .unwrap();
//! let metrics = net.run().unwrap();
//! assert!(metrics.messages > 0);
//!
//! // reachable(a, c) was derived both directly and via b; its condensed
//! // provenance collapses to just principal a (the paper's `<a>`).
//! let tuple = Tuple::new("reachable", vec![Value::Addr(0), Value::Addr(2)]);
//! assert_eq!(net.render_provenance(&Value::Addr(0), &tuple).unwrap(), "<p0>");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountability;
pub mod baseline;
pub mod billing;
pub mod diagnostics;
pub mod experiment;
pub mod forensics;
pub mod network;
pub mod programs;
pub mod trust;
pub mod workload;

pub use accountability::AccountabilityReport;
pub use baseline::{all_pairs_costs, bellman_ford, dijkstra_paths, ShortestPath};
pub use billing::{BillingRun, Invoice, RatePlan, Tier};
pub use diagnostics::{diagnose, Diagnosis, FlapAlarm, FlapMonitor};
pub use experiment::{
    render_figure, render_summary, run_sweep, summarize, ExperimentPoint, FigureMetric, Summary,
    SweepConfig,
};
pub use forensics::{archived_activity, investigate, ForensicReport};
pub use network::{NetworkError, SecureNetwork, SecureNetworkBuilder};
pub use trust::{TrustDecision, TrustEvaluator, TrustPolicy};

/// Commonly used items across the workspace, re-exported for convenience.
pub mod prelude {
    pub use crate::network::{SecureNetwork, SecureNetworkBuilder};
    pub use crate::trust::{TrustDecision, TrustEvaluator, TrustPolicy};
    pub use pasn_datalog::Value;
    pub use pasn_engine::{
        ChurnEvent, ChurnScript, EngineConfig, GraphMode, RunMetrics, SystemVariant, TraceConfig,
        TraceEvent, TraceEventKind, TraceRecorder, Tuple,
    };
    pub use pasn_net::{CostModel, FaultEvent, FaultPlan, NodeId, SimTime, Topology};
    pub use pasn_provenance::{ProvTag, ProvenanceKind};
}
