//! Workload generation: turning topologies into base facts and producing the
//! parameter sweeps of the evaluation.

use pasn_datalog::Value;
use pasn_engine::Tuple;
use pasn_net::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The location value used for a simulator node.
pub fn location_of(node: NodeId) -> Value {
    Value::Addr(node.0)
}

/// All location values of a topology, in node order.
pub fn locations_of(topology: &Topology) -> Vec<Value> {
    topology.nodes().iter().map(|n| location_of(*n)).collect()
}

/// `link(@src, dst)` facts (two-attribute form, for the reachability
/// programs), one per directed link.
pub fn link_facts(topology: &Topology) -> Vec<(Value, Tuple)> {
    topology
        .links()
        .iter()
        .map(|l| {
            (
                location_of(l.src),
                Tuple::new("link", vec![Value::Addr(l.src.0), Value::Addr(l.dst.0)]),
            )
        })
        .collect()
}

/// `link(@src, dst, cost)` facts (three-attribute form, for the Best-Path
/// query), one per directed link.
pub fn weighted_link_facts(topology: &Topology) -> Vec<(Value, Tuple)> {
    topology
        .links()
        .iter()
        .map(|l| {
            (
                location_of(l.src),
                Tuple::new(
                    "link",
                    vec![
                        Value::Addr(l.src.0),
                        Value::Addr(l.dst.0),
                        Value::Int(l.cost as i64),
                    ],
                ),
            )
        })
        .collect()
}

/// The evaluation topology of Section 6: `n` nodes with an average out-degree
/// of three and link costs in `1..=10`.
pub fn evaluation_topology(n: u32, seed: u64) -> Topology {
    Topology::random_out_degree(n, 3, 10, seed)
}

/// A synthetic stream of `routeUpdate(@node, dest, seq)` events used by the
/// diagnostics example: `flapping_dest` receives `flap_count` updates while
/// every other destination receives exactly one.
pub fn route_update_stream(
    node: NodeId,
    destinations: &[NodeId],
    flapping_dest: NodeId,
    flap_count: u32,
    seed: u64,
) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut updates = Vec::new();
    let mut seq = 0i64;
    for dest in destinations {
        let count = if *dest == flapping_dest {
            flap_count
        } else {
            1
        };
        for _ in 0..count {
            seq += 1;
            // A small random jitter keeps update identifiers unique and
            // uncorrelated between runs with different seeds.
            let jitter: i64 = rng.gen_range(0..1_000);
            updates.push(Tuple::new(
                "routeUpdate",
                vec![
                    Value::Addr(node.0),
                    Value::Addr(dest.0),
                    Value::Int(seq * 1_000 + jitter),
                ],
            ));
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_facts_cover_every_link() {
        let topo = evaluation_topology(12, 3);
        let facts = link_facts(&topo);
        assert_eq!(facts.len(), topo.link_count());
        let weighted = weighted_link_facts(&topo);
        assert_eq!(weighted.len(), topo.link_count());
        assert!(weighted
            .iter()
            .all(|(loc, t)| { t.values[0] == *loc && t.values[2].as_int().unwrap() >= 1 }));
        assert_eq!(locations_of(&topo).len(), 12);
    }

    #[test]
    fn evaluation_topology_matches_paper_parameters() {
        let topo = evaluation_topology(50, 7);
        assert_eq!(topo.node_count(), 50);
        let avg = topo.average_out_degree();
        assert!((2.5..=3.0).contains(&avg));
    }

    #[test]
    fn route_update_stream_flaps_one_destination() {
        let dests: Vec<NodeId> = (1..5).map(NodeId).collect();
        let stream = route_update_stream(NodeId(0), &dests, NodeId(3), 10, 42);
        assert_eq!(stream.len(), 3 + 10);
        let to_flapping = stream
            .iter()
            .filter(|t| t.values[1] == Value::Addr(3))
            .count();
        assert_eq!(to_flapping, 10);
        // Deterministic per seed.
        assert_eq!(
            stream,
            route_update_stream(NodeId(0), &dests, NodeId(3), 10, 42)
        );
    }
}
