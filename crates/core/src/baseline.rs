//! Imperative routing baselines used to validate the declarative programs.
//!
//! The declarative-networking papers the reproduction builds on argue that
//! NDlog programs "perform efficiently relative to imperative
//! implementations" — which presumes imperative implementations to compare
//! against.  This module provides them: a textbook Bellman–Ford and a
//! Dijkstra with path extraction, both operating directly on a
//! [`Topology`].  They serve two purposes:
//!
//! 1. **Correctness oracles** — the integration tests check that the
//!    Best-Path / distance-vector programs executed by the engine reach the
//!    same per-destination costs (and, for path-vector, loop-free paths)
//!    that the imperative algorithms compute.
//! 2. **Baselines for the benches** — `benches/engine_fixpoint.rs` compares
//!    the engine's distributed fixpoint against the centralised imperative
//!    solution to quantify the cost of the declarative, per-node execution.

use pasn_net::{NodeId, Topology};
use std::collections::{BinaryHeap, HashMap};

/// The cost and concrete path of one shortest route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShortestPath {
    /// Total path cost.
    pub cost: u64,
    /// Nodes along the path, source first, destination last.
    pub path: Vec<NodeId>,
}

/// Single-source shortest-path costs via Bellman–Ford.
///
/// Link costs are non-negative in every generator this workspace ships, but
/// Bellman–Ford is kept deliberately general (it relaxes `V-1` rounds) so it
/// can serve as an independent oracle for Dijkstra and for the engine.
pub fn bellman_ford(topology: &Topology, src: NodeId) -> HashMap<NodeId, u64> {
    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    dist.insert(src, 0);
    let rounds = topology.node_count().saturating_sub(1);
    for _ in 0..rounds {
        let mut changed = false;
        for link in topology.links() {
            let Some(&d_src) = dist.get(&link.src) else {
                continue;
            };
            let candidate = d_src + u64::from(link.cost);
            let better = dist.get(&link.dst).is_none_or(|&d| candidate < d);
            if better {
                dist.insert(link.dst, candidate);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Single-source shortest paths (cost plus concrete path) via Dijkstra.
pub fn dijkstra_paths(topology: &Topology, src: NodeId) -> HashMap<NodeId, ShortestPath> {
    #[derive(PartialEq, Eq)]
    struct Entry {
        cost: u64,
        node: NodeId,
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap on cost, ties broken by node id for determinism.
            other
                .cost
                .cmp(&self.cost)
                .then_with(|| other.node.0.cmp(&self.node.0))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    let mut previous: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src, 0);
    heap.push(Entry { cost: 0, node: src });

    while let Some(Entry { cost, node }) = heap.pop() {
        if dist.get(&node).is_some_and(|&d| cost > d) {
            continue;
        }
        for link in topology.outgoing(node) {
            let next = cost + u64::from(link.cost);
            let better = dist.get(&link.dst).is_none_or(|&d| next < d);
            if better {
                dist.insert(link.dst, next);
                previous.insert(link.dst, node);
                heap.push(Entry {
                    cost: next,
                    node: link.dst,
                });
            }
        }
    }

    dist.into_iter()
        .map(|(node, cost)| {
            let mut path = vec![node];
            let mut cursor = node;
            while cursor != src {
                cursor = previous[&cursor];
                path.push(cursor);
            }
            path.reverse();
            (node, ShortestPath { cost, path })
        })
        .collect()
}

/// All-pairs shortest-path costs, keyed by `(src, dst)`.  Unreachable pairs
/// are absent from the map.
pub fn all_pairs_costs(topology: &Topology) -> HashMap<(NodeId, NodeId), u64> {
    let mut out = HashMap::new();
    for &src in topology.nodes() {
        for (dst, cost) in bellman_ford(topology, src) {
            out.insert((src, dst), cost);
        }
    }
    out
}

/// True when `path` visits no node twice (the invariant the path-vector
/// program's `f_member` guard maintains).
pub fn is_loop_free(path: &[NodeId]) -> bool {
    let mut seen = std::collections::HashSet::new();
    path.iter().all(|n| seen.insert(*n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasn_net::Link;
    use proptest::prelude::*;

    fn diamond() -> Topology {
        // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (1), 1 -> 3 (6), 2 -> 3 (1)
        Topology::new(
            (0..4).map(NodeId),
            vec![
                Link {
                    src: NodeId(0),
                    dst: NodeId(1),
                    cost: 1,
                },
                Link {
                    src: NodeId(0),
                    dst: NodeId(2),
                    cost: 4,
                },
                Link {
                    src: NodeId(1),
                    dst: NodeId(2),
                    cost: 1,
                },
                Link {
                    src: NodeId(1),
                    dst: NodeId(3),
                    cost: 6,
                },
                Link {
                    src: NodeId(2),
                    dst: NodeId(3),
                    cost: 1,
                },
            ],
        )
    }

    #[test]
    fn bellman_ford_and_dijkstra_agree_on_the_diamond() {
        let topo = diamond();
        let bf = bellman_ford(&topo, NodeId(0));
        let dj = dijkstra_paths(&topo, NodeId(0));
        assert_eq!(bf[&NodeId(3)], 3);
        assert_eq!(dj[&NodeId(3)].cost, 3);
        assert_eq!(
            dj[&NodeId(3)].path,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        for (node, cost) in &bf {
            assert_eq!(dj[node].cost, *cost);
        }
    }

    #[test]
    fn baselines_match_the_topology_oracle() {
        let topo = Topology::random_out_degree(30, 3, 10, 99);
        for &src in topo.nodes() {
            let oracle = topo.shortest_path_costs(src);
            let bf = bellman_ford(&topo, src);
            let dj = dijkstra_paths(&topo, src);
            assert_eq!(bf.len(), oracle.len());
            for (dst, cost) in &oracle {
                assert_eq!(bf[dst], *cost, "bellman-ford {src}->{dst}");
                assert_eq!(dj[dst].cost, *cost, "dijkstra {src}->{dst}");
            }
        }
    }

    #[test]
    fn unreachable_destinations_are_absent() {
        // 0 -> 1 only; 2 is isolated.
        let topo = Topology::new(
            (0..3).map(NodeId),
            vec![Link {
                src: NodeId(0),
                dst: NodeId(1),
                cost: 2,
            }],
        );
        let bf = bellman_ford(&topo, NodeId(0));
        assert_eq!(bf.len(), 2);
        assert!(!bf.contains_key(&NodeId(2)));
        let dj = dijkstra_paths(&topo, NodeId(2));
        assert_eq!(dj.len(), 1);
        assert_eq!(dj[&NodeId(2)].path, vec![NodeId(2)]);
    }

    #[test]
    fn all_pairs_covers_reachable_pairs_only() {
        let topo = Topology::paper_figure1();
        let pairs = all_pairs_costs(&topo);
        // a→b, a→c, b→c plus the three self-pairs.
        assert_eq!(pairs[&(NodeId(0), NodeId(1))], 1);
        assert_eq!(pairs[&(NodeId(0), NodeId(2))], 1);
        assert_eq!(pairs[&(NodeId(1), NodeId(2))], 1);
        assert!(!pairs.contains_key(&(NodeId(2), NodeId(0))));
        assert!(pairs.contains_key(&(NodeId(2), NodeId(2))));
    }

    #[test]
    fn loop_detection_on_paths() {
        assert!(is_loop_free(&[NodeId(0), NodeId(1), NodeId(2)]));
        assert!(!is_loop_free(&[NodeId(0), NodeId(1), NodeId(0)]));
        assert!(is_loop_free(&[]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_dijkstra_agrees_with_bellman_ford(n in 4u32..40, degree in 1u32..4, seed in any::<u64>()) {
            let topo = Topology::random_out_degree(n, degree, 10, seed);
            let src = NodeId(0);
            let bf = bellman_ford(&topo, src);
            let dj = dijkstra_paths(&topo, src);
            prop_assert_eq!(bf.len(), dj.len());
            for (dst, sp) in &dj {
                prop_assert_eq!(bf[dst], sp.cost);
                // Every returned path starts at the source, ends at the
                // destination, and is loop-free.
                prop_assert_eq!(sp.path.first(), Some(&src));
                prop_assert_eq!(sp.path.last(), Some(dst));
                prop_assert!(is_loop_free(&sp.path));
                // And its hop costs sum to the reported cost.
                let mut sum = 0u64;
                for pair in sp.path.windows(2) {
                    let link = topo
                        .outgoing(pair[0])
                        .iter()
                        .filter(|l| l.dst == pair[1])
                        .map(|l| u64::from(l.cost))
                        .min()
                        .expect("path uses existing links");
                    sum += link;
                }
                prop_assert_eq!(sum, sp.cost);
            }
        }
    }
}
