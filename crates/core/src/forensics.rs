//! Forensics (Section 3, second use case): offline provenance plus
//! distributed traceback.
//!
//! Forensic analysis needs *historical* data — provenance that survives the
//! expiry of the tuples themselves — and the ability to trace where
//! information originated without trusting unauthenticated headers.  This
//! module combines the offline [`pasn_provenance::ArchiveStore`] with the
//! distributed [`pasn_provenance::traceback`] query.

use crate::network::SecureNetwork;
use pasn_datalog::Value;
use pasn_provenance::{traceback, ArchivedEntry, TracebackResult};

/// The outcome of a forensic investigation into one tuple.
#[derive(Clone, Debug)]
pub struct ForensicReport {
    /// The tuple key investigated.
    pub key: String,
    /// Distributed traceback over the pointer provenance.
    pub traceback: TracebackResult,
    /// Matching offline archive entries (provenance retained past expiry).
    pub archived: Vec<ArchivedEntry>,
}

impl ForensicReport {
    /// True if the investigation reached at least one base tuple.
    pub fn has_origin(&self) -> bool {
        !self.traceback.base_tuples.is_empty()
    }
}

/// Investigates `key` starting at `location`: runs a distributed traceback
/// over the pointer provenance and collects archived records from every node
/// (the derivation is archived where the rule fired, which is generally not
/// where the tuple ends up stored), even if the tuple itself has long
/// expired.
pub fn investigate(network: &SecureNetwork, location: &Value, key: &str) -> ForensicReport {
    let stores = network.distributed_stores();
    let result = traceback(&stores, &location.to_string(), key);
    let archived = archived_activity(network, key, None, None)
        .into_iter()
        .map(|(_, entry)| entry)
        .collect();
    ForensicReport {
        key: key.to_string(),
        traceback: result,
        archived,
    }
}

/// Collects every archived derivation across all nodes inside a time window —
/// the "correlate traffic patterns of attackers" query of the forensics use
/// case.
pub fn archived_activity(
    network: &SecureNetwork,
    key_prefix: &str,
    from: Option<u64>,
    to: Option<u64>,
) -> Vec<(Value, ArchivedEntry)> {
    let mut out = Vec::new();
    for loc in network.engine().locations().to_vec() {
        if let Some(archive) = network.archive(&loc) {
            for entry in archive.query(key_prefix, from, to) {
                out.push((loc.clone(), entry.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use pasn_engine::{EngineConfig, GraphMode};
    use pasn_net::{CostModel, SimTime, Topology};

    fn forensic_network() -> SecureNetwork {
        let mut config = EngineConfig::ndlog()
            .with_cost_model(CostModel::zero_cpu())
            .with_graph_mode(GraphMode::Distributed)
            .with_default_ttl_us(1_000_000);
        config.archive_offline = true;
        let mut net = SecureNetwork::builder()
            .program(programs::reachability_ndlog())
            .topology(Topology::line(4))
            .config(config)
            .build()
            .unwrap();
        net.run().unwrap();
        net
    }

    #[test]
    fn investigation_finds_origins_and_archive_entries() {
        let net = forensic_network();
        let report = investigate(&net, &Value::Addr(0), "reachable(@n0,n3)");
        assert!(report.has_origin());
        assert!(report.traceback.remote_hops >= 1);
        assert!(!report.archived.is_empty());
    }

    #[test]
    fn offline_provenance_survives_tuple_expiry() {
        let mut net = forensic_network();
        // Expire all derived soft state.
        let dropped = net.expire(SimTime::from_secs_f64(100.0));
        assert!(dropped > 0);
        assert!(net.query(&Value::Addr(0), "reachable").is_empty());
        // The archive still answers forensic queries.
        let activity = archived_activity(&net, "reachable", None, None);
        assert!(!activity.is_empty());
        let report = investigate(&net, &Value::Addr(0), "reachable(@n0,n3)");
        assert!(!report.archived.is_empty());
    }

    #[test]
    fn time_windows_restrict_archived_activity() {
        let net = forensic_network();
        let all = archived_activity(&net, "reachable", None, None);
        let none = archived_activity(&net, "reachable", Some(u64::MAX - 1), None);
        assert!(all.len() > none.len());
        assert!(none.is_empty());
    }

    #[test]
    fn unknown_keys_produce_empty_reports() {
        let net = forensic_network();
        let report = investigate(&net, &Value::Addr(0), "bogus(@n0)");
        assert!(!report.has_origin());
        assert!(report.archived.is_empty());
        assert_eq!(report.traceback.unresolved, vec!["bogus(@n0)".to_string()]);
    }
}
