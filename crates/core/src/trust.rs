//! Trust management over provenance (Section 3 "Trust Management" and
//! Section 4.4/4.5).
//!
//! A node enforces trust by inspecting the provenance of incoming (or stored)
//! tuples: condensed provenance tells it *which principals* a tuple's
//! existence depends on, quantifiable provenance reduces that to a trust
//! level or a vote count.  [`TrustPolicy`] captures the three policies the
//! paper describes; [`TrustEvaluator`] applies them to a tuple's
//! [`ProvTag`].

use pasn_bdd::BoolExpr;
use pasn_provenance::{ProvTag, VarTable};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A trust-management policy applied to a tuple's provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrustPolicy {
    /// Accept a tuple only if it has some derivation relying exclusively on
    /// trusted principals (the Orchestra-style policy of Section 3; the
    /// paper's example: `<a + a*b>` is accepted whenever `a` is trusted,
    /// regardless of `b`).
    TrustedPrincipals(BTreeSet<u32>),
    /// Accept a tuple only if its quantifiable trust level (max over
    /// derivations of the min principal level, Section 4.5) reaches the
    /// threshold.
    MinTrustLevel(u8),
    /// Accept an update only if at least `k` distinct principals took part in
    /// asserting it ("accepting an update only if over K principals assert
    /// the update", Section 3).
    KOfN(usize),
}

impl fmt::Display for TrustPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustPolicy::TrustedPrincipals(set) => write!(
                f,
                "trusted principals {{{}}}",
                set.iter()
                    .map(|p| format!("p{p}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            TrustPolicy::MinTrustLevel(l) => write!(f, "minimum trust level {l}"),
            TrustPolicy::KOfN(k) => write!(f, "at least {k} asserting principals"),
        }
    }
}

/// The outcome of applying a policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrustDecision {
    /// The tuple satisfies the policy.
    Accept,
    /// The tuple violates the policy.
    Reject,
    /// The tuple's provenance annotation does not carry the information the
    /// policy needs (e.g. a `KOfN` policy over a trust-level tag).
    NotApplicable,
}

impl TrustDecision {
    /// True for [`TrustDecision::Accept`].
    pub fn is_accept(self) -> bool {
        self == TrustDecision::Accept
    }
}

/// Applies [`TrustPolicy`]s to provenance tags.
pub struct TrustEvaluator<'a> {
    var_table: &'a VarTable,
    security_levels: HashMap<u32, u8>,
}

impl<'a> TrustEvaluator<'a> {
    /// Creates an evaluator over the engine's shared variable table and a map
    /// of per-principal security levels (missing principals default to 1).
    pub fn new(var_table: &'a VarTable, security_levels: HashMap<u32, u8>) -> Self {
        TrustEvaluator {
            var_table,
            security_levels,
        }
    }

    fn level_of(&self, principal: u32) -> u8 {
        self.security_levels.get(&principal).copied().unwrap_or(1)
    }

    /// Evaluates `policy` against `tag`.
    pub fn evaluate(&self, tag: &ProvTag, policy: &TrustPolicy) -> TrustDecision {
        match policy {
            TrustPolicy::TrustedPrincipals(trusted) => match tag {
                ProvTag::Condensed(bdd) => {
                    // The tuple is acceptable if its provenance function is
                    // satisfied by the assignment "trusted principals exist,
                    // everything else does not".
                    let manager = self.var_table.manager();
                    let accepted = manager.evaluate(*bdd, |var| {
                        self.var_table
                            .principal_of(var)
                            .map(|p| trusted.contains(&p.0))
                            .unwrap_or(false)
                    });
                    if accepted {
                        TrustDecision::Accept
                    } else {
                        TrustDecision::Reject
                    }
                }
                ProvTag::Vote(votes) => {
                    if votes.principals().iter().any(|p| trusted.contains(p)) {
                        TrustDecision::Accept
                    } else {
                        TrustDecision::Reject
                    }
                }
                _ => TrustDecision::NotApplicable,
            },
            TrustPolicy::MinTrustLevel(threshold) => {
                let level = tag.trust_level(self.var_table, |p| self.level_of(p));
                match level {
                    Some(l) if l >= *threshold => TrustDecision::Accept,
                    Some(_) => TrustDecision::Reject,
                    None => TrustDecision::NotApplicable,
                }
            }
            TrustPolicy::KOfN(k) => match tag {
                ProvTag::Vote(votes) => {
                    if votes.satisfies_threshold(*k) {
                        TrustDecision::Accept
                    } else {
                        TrustDecision::Reject
                    }
                }
                ProvTag::Condensed(bdd) => {
                    // Count the distinct principals in the provenance support.
                    let support = self.var_table.manager().support(*bdd);
                    let distinct = support
                        .iter()
                        .filter_map(|v| self.var_table.principal_of(*v))
                        .count();
                    if distinct >= *k {
                        TrustDecision::Accept
                    } else {
                        TrustDecision::Reject
                    }
                }
                _ => TrustDecision::NotApplicable,
            },
        }
    }

    /// Renders the condensed provenance of a tag as the set of principals it
    /// depends on (the "source origins" trust management cares about).
    pub fn origins(&self, tag: &ProvTag) -> BTreeSet<u32> {
        match tag {
            ProvTag::Condensed(bdd) => self
                .var_table
                .manager()
                .support(*bdd)
                .into_iter()
                .filter_map(|v| self.var_table.principal_of(v).map(|p| p.0))
                .collect(),
            ProvTag::Vote(votes) => votes.principals().clone(),
            _ => BTreeSet::new(),
        }
    }

    /// Convenience: renders a tag's condensed expression through the shared
    /// table (e.g. `<p0 + p1*p2>`).
    pub fn render(&self, tag: &ProvTag) -> String {
        tag.render(self.var_table)
    }

    /// Renders a condensed tag as a [`BoolExpr`] over principal variables.
    pub fn expression(&self, tag: &ProvTag) -> Option<BoolExpr> {
        match tag {
            ProvTag::Condensed(bdd) => Some(BoolExpr::from_bdd(self.var_table.manager(), *bdd)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasn_crypto::PrincipalId;
    use pasn_provenance::{BaseTupleId, ProvenanceKind, Semiring, VoteSet};

    /// Builds the paper's `<a + a*b>` condensed tag with a = p0, b = p1.
    fn figure2_tag(table: &mut VarTable) -> ProvTag {
        let a = ProvTag::base(
            ProvenanceKind::Condensed,
            table,
            BaseTupleId(0),
            "link(a,c)",
            PrincipalId(0),
            2,
        );
        let b = ProvTag::base(
            ProvenanceKind::Condensed,
            table,
            BaseTupleId(1),
            "link(a,b)",
            PrincipalId(1),
            1,
        );
        let ab = a.times(&b, table);
        a.plus(&ab, table)
    }

    #[test]
    fn trusted_principal_policy_matches_paper_example() {
        let mut table = VarTable::new();
        let tag = figure2_tag(&mut table);
        let evaluator = TrustEvaluator::new(&table, HashMap::new());

        // Trusting a alone is enough, b is inconsequential.
        let trust_a = TrustPolicy::TrustedPrincipals([0u32].into_iter().collect());
        assert_eq!(evaluator.evaluate(&tag, &trust_a), TrustDecision::Accept);
        // Trusting only b is not enough: every derivation needs a.
        let trust_b = TrustPolicy::TrustedPrincipals([1u32].into_iter().collect());
        assert_eq!(evaluator.evaluate(&tag, &trust_b), TrustDecision::Reject);
        // Origins reflect the condensation: only a remains.
        assert_eq!(evaluator.origins(&tag), [0u32].into_iter().collect());
        assert_eq!(evaluator.render(&tag), "<p0>");
        assert_eq!(
            evaluator.expression(&tag).unwrap(),
            pasn_bdd::BoolExpr::Var(0)
        );
    }

    #[test]
    fn min_trust_level_policy_uses_quantifiable_provenance() {
        let mut table = VarTable::new();
        let tag = figure2_tag(&mut table);
        let levels: HashMap<u32, u8> = [(0, 2), (1, 1)].into_iter().collect();
        let evaluator = TrustEvaluator::new(&table, levels);
        // max(2, min(2,1)) = 2
        assert_eq!(
            evaluator.evaluate(&tag, &TrustPolicy::MinTrustLevel(2)),
            TrustDecision::Accept
        );
        assert_eq!(
            evaluator.evaluate(&tag, &TrustPolicy::MinTrustLevel(3)),
            TrustDecision::Reject
        );
    }

    #[test]
    fn k_of_n_policy_over_votes_and_condensed() {
        let table = VarTable::new();
        let evaluator = TrustEvaluator::new(&table, HashMap::new());
        let votes = ProvTag::Vote(
            VoteSet::principal(0)
                .plus(&VoteSet::principal(1))
                .plus(&VoteSet::principal(2)),
        );
        assert_eq!(
            evaluator.evaluate(&votes, &TrustPolicy::KOfN(2)),
            TrustDecision::Accept
        );
        assert_eq!(
            evaluator.evaluate(&votes, &TrustPolicy::KOfN(4)),
            TrustDecision::Reject
        );
        assert_eq!(evaluator.origins(&votes).len(), 3);

        let mut table2 = VarTable::new();
        let condensed = figure2_tag(&mut table2);
        let evaluator2 = TrustEvaluator::new(&table2, HashMap::new());
        // Condensed support is {a} only → 1 distinct principal.
        assert_eq!(
            evaluator2.evaluate(&condensed, &TrustPolicy::KOfN(1)),
            TrustDecision::Accept
        );
        assert_eq!(
            evaluator2.evaluate(&condensed, &TrustPolicy::KOfN(2)),
            TrustDecision::Reject
        );
    }

    #[test]
    fn policies_report_not_applicable_on_missing_information() {
        let table = VarTable::new();
        let evaluator = TrustEvaluator::new(&table, HashMap::new());
        let none = ProvTag::None;
        assert_eq!(
            evaluator.evaluate(&none, &TrustPolicy::TrustedPrincipals(BTreeSet::new())),
            TrustDecision::NotApplicable
        );
        assert_eq!(
            evaluator.evaluate(&none, &TrustPolicy::MinTrustLevel(1)),
            TrustDecision::NotApplicable
        );
        assert_eq!(
            evaluator.evaluate(&none, &TrustPolicy::KOfN(1)),
            TrustDecision::NotApplicable
        );
        assert!(!TrustDecision::NotApplicable.is_accept());
        assert!(TrustDecision::Accept.is_accept());
        assert!(evaluator.expression(&none).is_none());
    }

    #[test]
    fn policy_display_is_informative() {
        assert_eq!(
            TrustPolicy::TrustedPrincipals([3u32, 5].into_iter().collect()).to_string(),
            "trusted principals {p3,p5}"
        );
        assert_eq!(
            TrustPolicy::MinTrustLevel(2).to_string(),
            "minimum trust level 2"
        );
        assert_eq!(
            TrustPolicy::KOfN(3).to_string(),
            "at least 3 asserting principals"
        );
    }
}
