//! The declarative network programs used throughout the paper.
//!
//! * [`reachability_ndlog`] — the two-rule all-pairs reachability query of
//!   Section 2.1 (the running example behind Figures 1 and 2);
//! * [`reachability_sendlog`] — its SeNDlog form with context blocks and the
//!   `says` operator (Section 2.2);
//! * [`best_path`] — the Best-Path recursive query used by the evaluation
//!   (Section 6): all-pairs shortest paths carrying the actual path vector
//!   and cost, with a MIN aggregation selecting the best path;
//! * [`route_monitor`] — the continuous route-change monitoring query
//!   sketched in Section 3 (real-time diagnostics use case);
//! * [`distance_vector`], [`path_vector`], [`path_vector_policy`] — the
//!   distance-vector and path-vector routing protocols Section 2.1 says the
//!   reachability example generalises to, the latter with an import policy
//!   that filters routes by the origins carried in their path (the BGP /
//!   trust-management use case of Section 3).

use pasn_datalog::{parse_program, Program};

/// Source text of the NDlog reachability program (Section 2.1).
pub const REACHABILITY_NDLOG: &str = "\
r1 reachable(@S,D) :- link(@S,D).
r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
";

/// Source text of the SeNDlog reachability program (Section 2.2).
pub const REACHABILITY_SENDLOG: &str = "\
At S:
s1 reachable(S,D) :- link(S,D).
s2 linkD(D,S)@D :- link(S,D).
s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
";

/// Source text of the Best-Path query (Section 6).
///
/// The query extends the reachability program with path vectors, additive
/// costs and a MIN aggregation, exactly as described in the evaluation:
/// *"This query is obtained from the NDlog all-pairs reachability query
/// presented in Section 2, with additional predicates to compute the actual
/// path, cost of the path, and two extra rules for computing the best
/// paths."*
pub const BEST_PATH: &str = "\
sp1 path(@S,D,P,C) :- link(@S,D,C), P := f_init(S,D).
sp2 path(@S,D,P,C) :- link(@S,Z,C1), bestPath(@Z,D,P2,C2), f_member(P2,S) == false, C := C1 + C2, P := f_concat(S,P2).
sp3 bestPathCost(@S,D,a_MIN<C>) :- path(@S,D,P,C).
sp4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
";

/// Source text of the route-change monitoring query (Section 3, real-time
/// diagnostics): counts route updates per destination and raises an alarm
/// tuple once the count exceeds a threshold.
pub const ROUTE_MONITOR: &str = "\
m1 updateCount(@S,D,a_COUNT<C>) :- routeUpdate(@S,D,C).
m2 alarm(@S,D,N) :- updateCount(@S,D,N), threshold(@S,T), N > T.
";

/// Source text of a distance-vector routing protocol.
///
/// Section 2.1 notes that the reachability example generalises to *"more
/// complex routing protocols, such as the distance vector and path vector
/// routing protocols"*.  This is the distance-vector form: each node
/// advertises only its best known cost per destination, and neighbours relax
/// their own estimates against those advertisements (the declarative
/// Bellman–Ford of the Declarative Routing paper).
pub const DISTANCE_VECTOR: &str = "\
dv1 cost(@S,D,C) :- link(@S,D,C).
dv2 cost(@S,D,C) :- link(@S,Z,C1), bestCost(@Z,D,C2), C := C1 + C2.
dv3 bestCost(@S,D,a_MIN<C>) :- cost(@S,D,C).
";

/// Source text of a path-vector routing protocol (the BGP analogue).
///
/// Every route advertisement carries the full path, which lets a node drop
/// advertisements that already contain itself (`f_member(P2,S) == false` —
/// loop suppression) and, more generally, lets policy inspect the *origins*
/// of a route before accepting it — exactly the trust-management use the
/// paper motivates with BGP in Section 3.
pub const PATH_VECTOR: &str = "\
pv1 route(@S,D,P) :- link(@S,D), P := f_init(S,D).
pv2 route(@S,D,P) :- link(@S,Z), route(@Z,D,P2), f_member(P2,S) == false, P := f_concat(S,P2).
";

/// [`PATH_VECTOR`] extended with an import policy: a route is *accepted*
/// only if it avoids the node named by the local `avoid(@S,B)` fact.
///
/// The filter is the declarative form of "reject updates whose provenance
/// contains an untrusted origin" (Section 3, trust management): the carried
/// path is the route's provenance, and `f_member(P,B) == false` checks it
/// against the local policy.  Each `avoid` fact expresses one banned
/// principal; a node that bans nobody simply inserts `avoid(@S, S)`-style
/// sentinel facts or none at all (in which case no `acceptedRoute` tuples
/// are derived at that node).
pub const PATH_VECTOR_POLICY: &str = "\
pv1 route(@S,D,P) :- link(@S,D), P := f_init(S,D).
pv2 route(@S,D,P) :- link(@S,Z), route(@Z,D,P2), f_member(P2,S) == false, P := f_concat(S,P2).
pv3 acceptedRoute(@S,D,P) :- route(@S,D,P), avoid(@S,B), f_member(P,B) == false.
";

/// Parses [`REACHABILITY_NDLOG`].
pub fn reachability_ndlog() -> Program {
    parse_program(REACHABILITY_NDLOG).expect("built-in program parses")
}

/// Parses [`REACHABILITY_SENDLOG`].
pub fn reachability_sendlog() -> Program {
    parse_program(REACHABILITY_SENDLOG).expect("built-in program parses")
}

/// Parses [`BEST_PATH`].
pub fn best_path() -> Program {
    parse_program(BEST_PATH).expect("built-in program parses")
}

/// Parses [`ROUTE_MONITOR`].
pub fn route_monitor() -> Program {
    parse_program(ROUTE_MONITOR).expect("built-in program parses")
}

/// Parses [`DISTANCE_VECTOR`].
pub fn distance_vector() -> Program {
    parse_program(DISTANCE_VECTOR).expect("built-in program parses")
}

/// Parses [`PATH_VECTOR`].
pub fn path_vector() -> Program {
    parse_program(PATH_VECTOR).expect("built-in program parses")
}

/// Parses [`PATH_VECTOR_POLICY`].
pub fn path_vector_policy() -> Program {
    parse_program(PATH_VECTOR_POLICY).expect("built-in program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasn_datalog::compile_program;

    #[test]
    fn all_built_in_programs_parse_and_compile() {
        for program in [
            reachability_ndlog(),
            reachability_sendlog(),
            best_path(),
            route_monitor(),
            distance_vector(),
            path_vector(),
            path_vector_policy(),
        ] {
            compile_program(&program).expect("program compiles");
        }
    }

    #[test]
    fn routing_protocol_programs_have_the_expected_shape() {
        let dv = distance_vector();
        assert_eq!(dv.rules.len(), 3);
        assert!(dv.rules[2].head.has_aggregate());
        let pv = path_vector();
        assert_eq!(pv.rules.len(), 2);
        assert!(!pv.rules.iter().any(|r| r.head.has_aggregate()));
        let policy = path_vector_policy();
        assert_eq!(policy.rules.len(), 3);
        assert!(!policy.uses_sendlog());
    }

    #[test]
    fn best_path_has_the_expected_structure() {
        let p = best_path();
        assert_eq!(p.rules.len(), 4);
        assert!(p.rules[2].head.has_aggregate());
        assert!(!p.uses_sendlog());
    }

    #[test]
    fn sendlog_variant_uses_says() {
        assert!(reachability_sendlog().uses_sendlog());
        assert!(!reachability_ndlog().uses_sendlog());
    }
}
