//! [`SecureNetwork`]: the top-level facade tying a topology, a declarative
//! program and an engine configuration into one runnable deployment.

use crate::workload::{link_facts, locations_of, weighted_link_facts};
use pasn_datalog::{parse_program, ParseError, Program, Value};
use pasn_engine::{
    ChurnEvent, ChurnScript, DistributedEngine, EngineConfig, EngineError, RunMetrics, Tuple,
    TupleMeta,
};
use pasn_net::{SimTime, Topology};
use pasn_provenance::{ArchiveStore, DerivationGraph, DistributedStore, VarTable};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while building or running a [`SecureNetwork`].
#[derive(Debug)]
pub enum NetworkError {
    /// The program text failed to parse.
    Parse(ParseError),
    /// The engine rejected the program or a fact.
    Engine(EngineError),
    /// The builder is missing a required component.
    Builder(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Parse(e) => write!(f, "{e}"),
            NetworkError::Engine(e) => write!(f, "{e}"),
            NetworkError::Builder(msg) => write!(f, "builder error: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<ParseError> for NetworkError {
    fn from(e: ParseError) -> Self {
        NetworkError::Parse(e)
    }
}

impl From<EngineError> for NetworkError {
    fn from(e: EngineError) -> Self {
        NetworkError::Engine(e)
    }
}

/// Builder for [`SecureNetwork`].
pub struct SecureNetworkBuilder {
    program: Option<Program>,
    topology: Option<Topology>,
    config: EngineConfig,
    locations: Option<Vec<Value>>,
    extra_facts: Vec<(Value, Tuple)>,
}

impl Default for SecureNetworkBuilder {
    fn default() -> Self {
        SecureNetworkBuilder {
            program: None,
            topology: None,
            config: EngineConfig::ndlog(),
            locations: None,
            extra_facts: Vec::new(),
        }
    }
}

impl SecureNetworkBuilder {
    /// Sets the declarative program from an already parsed [`Program`].
    pub fn program(mut self, program: Program) -> Self {
        self.program = Some(program);
        self
    }

    /// Sets the declarative program from NDlog / SeNDlog source text.
    pub fn program_text(mut self, source: &str) -> Result<Self, NetworkError> {
        self.program = Some(parse_program(source)?);
        Ok(self)
    }

    /// Sets the topology; its nodes become the deployment's locations and its
    /// links become `link` base facts.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets explicit location values (useful for the string-named examples of
    /// the paper, `a`, `b`, `c`).  Overrides the topology-derived locations.
    pub fn locations(mut self, locations: Vec<Value>) -> Self {
        self.locations = Some(locations);
        self
    }

    /// Sets the engine configuration (authentication, provenance, costs).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Adds an extra base fact to insert at time zero.
    pub fn fact(mut self, location: Value, tuple: Tuple) -> Self {
        self.extra_facts.push((location, tuple));
        self
    }

    /// Builds the deployment: compiles the program, provisions keys, and
    /// schedules the topology's link facts plus any extra facts.
    pub fn build(self) -> Result<SecureNetwork, NetworkError> {
        let program = self
            .program
            .ok_or_else(|| NetworkError::Builder("a program is required".into()))?;
        let locations = match (&self.locations, &self.topology) {
            (Some(locs), _) => locs.clone(),
            (None, Some(topo)) => locations_of(topo),
            (None, None) => {
                return Err(NetworkError::Builder(
                    "either a topology or explicit locations are required".into(),
                ))
            }
        };
        let mut engine = DistributedEngine::new(&program, self.config, &locations)?;

        if let Some(topology) = &self.topology {
            // Pick the link arity the program actually uses: the Best-Path
            // query joins three-attribute links (with costs), the
            // reachability programs use two attributes.
            let uses_weighted = program
                .rules
                .iter()
                .flat_map(|r| r.body_atoms())
                .any(|a| a.predicate == "link" && a.args.len() == 3);
            let facts = if uses_weighted {
                weighted_link_facts(topology)
            } else {
                link_facts(topology)
            };
            for (loc, tuple) in facts {
                engine.insert_fact(loc, tuple)?;
            }
        }
        for (loc, tuple) in self.extra_facts {
            engine.insert_fact(loc, tuple)?;
        }
        Ok(SecureNetwork {
            engine,
            topology: self.topology,
        })
    }
}

/// A deployed provenance-aware secure network: a topology, a compiled
/// SeNDlog/NDlog program, per-node key material and provenance stores.
pub struct SecureNetwork {
    engine: DistributedEngine,
    topology: Option<Topology>,
}

impl fmt::Debug for SecureNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecureNetwork")
            .field("locations", &self.engine.locations().len())
            .field(
                "links",
                &self
                    .topology
                    .as_ref()
                    .map(Topology::link_count)
                    .unwrap_or(0),
            )
            .finish()
    }
}

impl SecureNetwork {
    /// Starts building a deployment.
    pub fn builder() -> SecureNetworkBuilder {
        SecureNetworkBuilder::default()
    }

    /// Runs the program to its distributed fixpoint and returns the metrics.
    pub fn run(&mut self) -> Result<RunMetrics, NetworkError> {
        Ok(self.engine.run_to_fixpoint()?)
    }

    /// Runs a network-dynamics scenario to its post-churn fixpoint: the
    /// scripted events (link flaps, node failures/rejoins, base-tuple
    /// churn) are scheduled through the discrete-event simulator, derived
    /// soft state dies and is withdrawn by provenance-guided incremental
    /// deletion as its support disappears, and evaluation re-converges.
    /// Call instead of [`SecureNetwork::run`] on a freshly built deployment.
    pub fn run_scenario(&mut self, script: &ChurnScript) -> Result<RunMetrics, NetworkError> {
        Ok(self.engine.run_scenario(script)?)
    }

    /// Runs a churn workload in streaming mode: events are pulled from the
    /// iterator (which must yield them in nondecreasing time order) instead
    /// of being materialised in the work queue, so driver memory stays
    /// O(in-flight work) rather than O(script) — the mode large
    /// generational workloads use.  The schedule, and every counter, is
    /// bit-identical to [`SecureNetwork::run_scenario`] on the same events;
    /// peak footprint is additionally sampled into
    /// `RunMetrics::peak_store_bytes` / `peak_index_bytes`.
    pub fn run_streaming<I>(&mut self, events: I) -> Result<RunMetrics, NetworkError>
    where
        I: IntoIterator<Item = (SimTime, ChurnEvent)>,
    {
        Ok(self.engine.run_streaming(events)?)
    }

    /// The flight recorder, when the deployment's config enabled tracing
    /// via `EngineConfig::with_tracing`.  Read it after a run for the
    /// simulated-time event stream, the hot-rule profile
    /// (`TraceRecorder::hot_rules`), per-link frame lifecycles
    /// (`TraceRecorder::link_lifecycles`), filtered queries
    /// (`TraceRecorder::query`) and the Chrome/Perfetto export
    /// (`TraceRecorder::to_chrome_json`).
    pub fn trace(&self) -> Option<&pasn_engine::TraceRecorder> {
        self.engine.trace()
    }

    /// The underlying engine (advanced use).
    pub fn engine(&self) -> &DistributedEngine {
        &self.engine
    }

    /// Mutable access to the underlying engine (advanced use: injecting
    /// streamed facts, expiring soft state, materialising provenance).
    pub fn engine_mut(&mut self) -> &mut DistributedEngine {
        &mut self.engine
    }

    /// The topology this deployment was built from, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// All tuples of `predicate` stored at `location`.
    pub fn query(&self, location: &Value, predicate: &str) -> Vec<(Tuple, TupleMeta)> {
        self.engine.query(location, predicate)
    }

    /// All tuples of `predicate` stored at `location`, in insertion order
    /// (deterministic across runs, unlike [`SecureNetwork::query`]).
    pub fn query_ordered(&self, location: &Value, predicate: &str) -> Vec<(Tuple, TupleMeta)> {
        self.engine.query_ordered(location, predicate)
    }

    /// All tuples of `predicate` across every node.
    pub fn query_all(&self, predicate: &str) -> Vec<(Value, Tuple, TupleMeta)> {
        self.engine.query_all(predicate)
    }

    /// Renders the provenance annotation of an exact stored tuple.
    pub fn render_provenance(&self, location: &Value, tuple: &Tuple) -> Option<String> {
        self.engine.render_provenance(location, tuple)
    }

    /// The provenance graph maintained at `location` (graph modes only).
    pub fn provenance_graph(&self, location: &Value) -> Option<&DerivationGraph> {
        self.engine.provenance_graph(location)
    }

    /// Per-node distributed provenance stores, ready for
    /// [`pasn_provenance::traceback`].
    pub fn distributed_stores(&self) -> HashMap<String, DistributedStore> {
        self.engine.distributed_stores()
    }

    /// The offline provenance archive of `location`.
    pub fn archive(&self, location: &Value) -> Option<&ArchiveStore> {
        self.engine.archive(location)
    }

    /// The shared provenance variable table.
    pub fn var_table(&self) -> &VarTable {
        self.engine.var_table()
    }

    /// Expires soft state older than `now` on every node.
    pub fn expire(&mut self, now: SimTime) -> usize {
        self.engine.expire_all(now)
    }

    /// Bytes sent per node (accountability raw data).
    pub fn bytes_sent_per_node(&self) -> HashMap<Value, u64> {
        self.engine.bytes_sent_per_node()
    }

    /// Bytes of tuple data currently stored across all nodes (each shared
    /// row charged once, plus insertion-order bookkeeping; also reported at
    /// fixpoint as `RunMetrics::store_bytes`).
    pub fn store_bytes(&self) -> u64 {
        self.engine.store_bytes()
    }

    /// Bytes of secondary-index overhead currently held across all nodes
    /// (bucket keys plus seq ids — indexes reference rows instead of
    /// copying them; also reported at fixpoint as
    /// `RunMetrics::index_bytes`).
    pub fn index_bytes(&self) -> u64 {
        self.engine.index_bytes()
    }

    /// Multi-tuple shipment frames sent so far (also reported at fixpoint
    /// as `RunMetrics::frames`).  Each frame is signed and verified once,
    /// however many tuples it carries; with `batch_window = 0` every frame
    /// holds exactly one tuple.
    pub fn frames(&self) -> u64 {
        self.engine.metrics().frames
    }

    /// Tuples shipped inside frames so far, after in-frame deduplication
    /// (also reported at fixpoint as `RunMetrics::batched_tuples`).
    pub fn batched_tuples(&self) -> u64 {
        self.engine.metrics().batched_tuples
    }

    /// Mean shipment-frame occupancy so far: tuples per signed frame — how
    /// far each message header, signature and verification is amortised.
    pub fn mean_batch_occupancy(&self) -> f64 {
        self.engine.metrics().mean_batch_occupancy()
    }

    /// RSA private-key exponentiations so far (also reported at fixpoint as
    /// `RunMetrics::rsa_sign_ops`): one per frame at the `Rsa` `says` level,
    /// one per key-establishment handshake at the `Session` level.
    pub fn rsa_sign_ops(&self) -> u64 {
        self.engine.metrics().rsa_sign_ops
    }

    /// RSA public-key exponentiations so far (also reported at fixpoint as
    /// `RunMetrics::rsa_verify_ops`).
    pub fn rsa_verify_ops(&self) -> u64 {
        self.engine.metrics().rsa_verify_ops
    }

    /// HMAC-SHA-256 computations so far (also reported at fixpoint as
    /// `RunMetrics::hmac_ops`): frame MACs and verifications at the `Hmac`
    /// and `Session` levels plus per-handshake session-key derivations.
    pub fn hmac_ops(&self) -> u64 {
        self.engine.metrics().hmac_ops
    }

    /// Session-channel handshakes performed so far (also reported at
    /// fixpoint as `RunMetrics::handshakes`): one per live directed link,
    /// plus rebinds after channel expiry.
    pub fn handshakes(&self) -> u64 {
        self.engine.metrics().handshakes
    }

    /// Coalesced handshake-verification windows dispatched at receivers
    /// (also reported at fixpoint as `RunMetrics::handshake_batches`):
    /// same-instant handshakes to one node share a single CPU charge, so
    /// this is at most [`SecureNetwork::handshakes`].
    pub fn handshake_batches(&self) -> u64 {
        self.engine.metrics().handshake_batches
    }

    /// Scripted churn events processed so far (also reported at fixpoint
    /// as `RunMetrics::churn_events`).
    pub fn churn_events(&self) -> u64 {
        self.engine.metrics().churn_events
    }

    /// Frames the fault plan dropped so far, counting every failed attempt
    /// (also reported at fixpoint as `RunMetrics::frames_dropped`).  Zero
    /// on reliable runs.
    pub fn frames_dropped(&self) -> u64 {
        self.engine.metrics().frames_dropped
    }

    /// Frames the fault plan delivered twice so far (also reported at
    /// fixpoint as `RunMetrics::frames_duplicated`); the receiver's
    /// sequence cursor deduplicates them before evaluation.
    pub fn frames_duplicated(&self) -> u64 {
        self.engine.metrics().frames_duplicated
    }

    /// Retransmission timer firings so far (also reported at fixpoint as
    /// `RunMetrics::retransmits`): each re-offers one unacknowledged frame
    /// to the fault plan at the next attempt number.
    pub fn retransmits(&self) -> u64 {
        self.engine.metrics().retransmits
    }

    /// Cumulative acknowledgement frames sent so far (also reported at
    /// fixpoint as `RunMetrics::acks`); coalesced per link, charged on the
    /// wire dst → src.
    pub fn acks(&self) -> u64 {
        self.engine.metrics().acks
    }

    /// Exponential-backoff escalations so far — retransmission attempts
    /// beyond a frame's first (also reported at fixpoint as
    /// `RunMetrics::backoff_events`).
    pub fn backoff_events(&self) -> u64 {
        self.engine.metrics().backoff_events
    }

    /// Worst per-frame retransmission count observed (also reported at
    /// fixpoint as `RunMetrics::max_retransmit_per_frame`); bounded by the
    /// engine's retry budget.
    pub fn max_retransmit_per_frame(&self) -> u64 {
        self.engine.metrics().max_retransmit_per_frame
    }

    /// Tuples removed by provenance-guided deletion so far — retraction
    /// cascades, scheduled TTL expiry, node failures and the well-founded
    /// sweep (also reported at fixpoint as `RunMetrics::retractions`).
    pub fn retractions(&self) -> u64 {
        self.engine.metrics().retractions
    }

    /// Fresh re-derivations of previously retracted tuples so far (also
    /// reported at fixpoint as `RunMetrics::rederivations`).
    pub fn rederivations(&self) -> u64 {
        self.engine.metrics().rederivations
    }

    /// Tombstone (retraction) frames shipped between nodes so far (also
    /// reported at fixpoint as `RunMetrics::tombstone_frames`).
    pub fn tombstone_frames(&self) -> u64 {
        self.engine.metrics().tombstone_frames
    }

    /// Size of the evaluation worker pool the last run was configured with
    /// (1 = the sequential schedule; also `RunMetrics::worker_threads`).
    pub fn worker_threads(&self) -> u64 {
        self.engine.metrics().worker_threads
    }

    /// Node partitions the worker pool sharded the deployment into (also
    /// reported at fixpoint as `RunMetrics::partitions`).
    pub fn partitions(&self) -> u64 {
        self.engine.metrics().partitions
    }

    /// Shipment frames whose sender and receiver lived on different
    /// partitions — the pool's mailbox traffic (also reported at fixpoint
    /// as `RunMetrics::cross_partition_frames`).
    pub fn cross_partition_frames(&self) -> u64 {
        self.engine.metrics().cross_partition_frames
    }

    /// Largest same-instant work slice any single partition drained (also
    /// reported at fixpoint as `RunMetrics::max_partition_queue`).
    pub fn max_partition_queue(&self) -> u64 {
        self.engine.metrics().max_partition_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use pasn_net::CostModel;

    fn fast(config: EngineConfig) -> EngineConfig {
        config.with_cost_model(CostModel::zero_cpu())
    }

    #[test]
    fn builder_runs_reachability_over_a_topology() {
        let mut net = SecureNetwork::builder()
            .program(programs::reachability_ndlog())
            .topology(Topology::ring(5))
            .config(fast(EngineConfig::ndlog()))
            .build()
            .unwrap();
        let metrics = net.run().unwrap();
        assert!(metrics.messages > 0);
        // In a ring every node reaches every other node — and itself, since
        // the cycle closes the transitive closure back to the origin.
        for loc in net.engine().locations().to_vec() {
            assert_eq!(net.query(&loc, "reachable").len(), 5);
        }
        assert!(net.topology().is_some());
        assert_eq!(net.bytes_sent_per_node().len(), 5);
        // Storage gauges: rows and index overhead are live and mirrored
        // into the fixpoint metrics.
        assert!(net.store_bytes() > 0);
        assert!(net.index_bytes() > 0);
        assert_eq!(metrics.store_bytes, net.store_bytes());
        assert_eq!(metrics.index_bytes, net.index_bytes());
        // Frame gauges: per-tuple mode ships one-tuple frames, one per
        // message, and the facade mirrors the fixpoint counters.
        assert_eq!(net.frames(), metrics.messages);
        assert_eq!(net.batched_tuples(), metrics.messages);
        assert_eq!(net.mean_batch_occupancy(), 1.0);
        assert_eq!(metrics.frames, net.frames());
        assert_eq!(metrics.batched_tuples, net.batched_tuples());
    }

    #[test]
    fn batching_ships_fewer_signed_frames_with_identical_results() {
        let build = |config: EngineConfig| {
            SecureNetwork::builder()
                .program(programs::reachability_ndlog())
                .topology(Topology::ring(6))
                .config(fast(config))
                .build()
                .unwrap()
        };
        let mut per_tuple = build(EngineConfig::sendlog());
        let baseline = per_tuple.run().unwrap();
        let mut batched = build(EngineConfig::sendlog().with_batching());
        let metrics = batched.run().unwrap();

        // One signature per frame, fewer frames than per-tuple messages.
        assert_eq!(metrics.signatures, metrics.frames);
        assert_eq!(metrics.verifications, metrics.frames);
        assert!(metrics.frames < baseline.messages);
        assert!(batched.mean_batch_occupancy() > 1.0);
        // The fixpoint is unchanged: same reachability closure everywhere.
        for loc in batched.engine().locations().to_vec() {
            assert_eq!(batched.query(&loc, "reachable").len(), 6);
        }
        assert_eq!(metrics.tuples_stored, baseline.tuples_stored);
    }

    #[test]
    fn session_channels_surface_their_crypto_counters() {
        let build = |config: EngineConfig| {
            SecureNetwork::builder()
                .program(programs::reachability_ndlog())
                .topology(Topology::ring(6))
                .config(fast(config))
                .build()
                .unwrap()
        };
        let mut rsa = build(EngineConfig::sendlog().with_batching());
        let baseline = rsa.run().unwrap();
        let mut session = build(EngineConfig::sendlog_session().with_batching());
        let m = session.run().unwrap();

        // RSA collapses to one sign/verify per live directed link (a 6-ring
        // ships over 12: each link carries data and reply-direction
        // exports); every frame rides an HMAC instead.
        assert_eq!(session.handshakes(), 12);
        assert_eq!(session.rsa_sign_ops(), session.handshakes());
        assert_eq!(session.rsa_verify_ops(), session.handshakes());
        assert!(session.rsa_sign_ops() < baseline.rsa_sign_ops);
        assert!(session.hmac_ops() > 0);
        assert_eq!(baseline.hmac_ops, 0);
        // The facade mirrors the fixpoint metrics.
        assert_eq!(m.rsa_sign_ops, session.rsa_sign_ops());
        assert_eq!(m.rsa_verify_ops, session.rsa_verify_ops());
        assert_eq!(m.hmac_ops, session.hmac_ops());
        assert_eq!(m.handshakes, session.handshakes());
        // Same-instant handshake deliveries coalesce into shared CPU
        // windows at the receivers — never more windows than handshakes.
        assert_eq!(m.handshake_batches, session.handshake_batches());
        assert!(session.handshake_batches() >= 1);
        assert!(session.handshake_batches() <= session.handshakes());
        // The frame stream and fixpoint are the Rsa level's, bit for bit.
        assert_eq!(m.frames, baseline.frames);
        assert_eq!(m.batched_tuples, baseline.batched_tuples);
        assert_eq!(m.derivations, baseline.derivations);
        assert_eq!(m.tuples_stored, baseline.tuples_stored);
    }

    #[test]
    fn run_scenario_flaps_a_link_and_reconverges() {
        use pasn_engine::ChurnScript;
        let build = || {
            SecureNetwork::builder()
                .program(programs::reachability_ndlog())
                .topology(Topology::ring(5))
                .config(fast(EngineConfig::sendlog_session().with_batching()))
                .build()
                .unwrap()
        };
        let mut stat = build();
        let baseline = stat.run().unwrap();

        let script = ChurnScript::new()
            .link_down(5_000_000, Value::Addr(0), Value::Addr(1))
            .link_up(10_000_000, Value::Addr(0), Value::Addr(1));
        let mut churned = build();
        let metrics = churned.run_scenario(&script).unwrap();

        // The flapped deployment re-converges to the static fixpoint.
        assert_eq!(metrics.tuples_stored, baseline.tuples_stored);
        for loc in churned.engine().locations().to_vec() {
            assert_eq!(churned.query(&loc, "reachable").len(), 5);
        }
        // The facade mirrors the dynamics counters.
        assert_eq!(churned.churn_events(), 2);
        assert_eq!(metrics.churn_events, churned.churn_events());
        assert!(churned.retractions() > 0);
        assert!(churned.rederivations() > 0);
        assert!(churned.tombstone_frames() > 0);
        assert_eq!(metrics.retractions, churned.retractions());
        assert_eq!(metrics.rederivations, churned.rederivations());
        assert_eq!(metrics.tombstone_frames, churned.tombstone_frames());
        assert_eq!(metrics.verification_failures, 0);
    }

    #[test]
    fn builder_auto_selects_weighted_links_for_best_path() {
        let mut net = SecureNetwork::builder()
            .program(programs::best_path())
            .topology(Topology::line(4))
            .config(fast(EngineConfig::ndlog()))
            .build()
            .unwrap();
        net.run().unwrap();
        let loc = Value::Addr(0);
        let best: Vec<_> = net.query(&loc, "bestPath");
        assert!(!best.is_empty());
        // Link facts carry three attributes.
        assert_eq!(net.query(&loc, "link")[0].0.arity(), 3);
    }

    #[test]
    fn builder_with_explicit_locations_and_text_program() {
        let mut net = SecureNetwork::builder()
            .program_text(programs::REACHABILITY_NDLOG)
            .unwrap()
            .locations(vec![
                Value::Str("a".into()),
                Value::Str("b".into()),
                Value::Str("c".into()),
            ])
            .config(fast(EngineConfig::ndlog()))
            .fact(
                Value::Str("a".into()),
                Tuple::new("link", vec![Value::Str("a".into()), Value::Str("b".into())]),
            )
            .build()
            .unwrap();
        net.run().unwrap();
        assert_eq!(net.query(&Value::Str("a".into()), "reachable").len(), 1);
    }

    #[test]
    fn builder_errors_are_reported() {
        let err = SecureNetwork::builder().build().unwrap_err();
        assert!(err.to_string().contains("program"));
        let err = SecureNetwork::builder()
            .program(programs::reachability_ndlog())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("topology"));
        assert!(SecureNetwork::builder().program_text("p(@X :-").is_err());
    }
}
