//! Real-time diagnostics (Section 3, first use case).
//!
//! The paper sketches a continuous query that counts the changes to a routing
//! table entry over the past `T` seconds and raises an alarm when the count
//! exceeds a threshold, after which the system queries the online provenance
//! of the offending entry to locate the source of the instability.
//!
//! [`FlapMonitor`] is that sliding-window counter; [`diagnose`] combines an
//! alarm with an online provenance lookup.

use pasn_datalog::Value;
use pasn_engine::Tuple;
use pasn_net::SimTime;
use pasn_provenance::traceback;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// An alarm raised when a route changed too often within the window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlapAlarm {
    /// The routing-table key (e.g. "bestPath(@n0,n7)") that is flapping.
    pub key: String,
    /// Number of changes observed inside the window.
    pub changes: usize,
    /// Time the alarm fired.
    pub at: SimTime,
}

/// Sliding-window route-change monitor.
#[derive(Clone, Debug)]
pub struct FlapMonitor {
    window: SimTime,
    threshold: usize,
    events: HashMap<String, VecDeque<SimTime>>,
}

impl FlapMonitor {
    /// Creates a monitor that alarms when a key changes more than `threshold`
    /// times within `window`.
    pub fn new(window: SimTime, threshold: usize) -> Self {
        FlapMonitor {
            window,
            threshold,
            events: HashMap::new(),
        }
    }

    /// Records a route change for `key` at time `now`; returns an alarm if
    /// the threshold is exceeded within the window.
    pub fn record(&mut self, key: &str, now: SimTime) -> Option<FlapAlarm> {
        let queue = self.events.entry(key.to_string()).or_default();
        queue.push_back(now);
        let horizon = now.as_micros().saturating_sub(self.window.as_micros());
        while queue.front().is_some_and(|t| t.as_micros() < horizon) {
            queue.pop_front();
        }
        if queue.len() > self.threshold {
            Some(FlapAlarm {
                key: key.to_string(),
                changes: queue.len(),
                at: now,
            })
        } else {
            None
        }
    }

    /// Number of changes currently inside the window for `key`.
    pub fn changes_in_window(&self, key: &str) -> usize {
        self.events.get(key).map_or(0, VecDeque::len)
    }
}

/// The result of diagnosing an alarm: the origins of the flapping entry,
/// obtained from the online provenance.
#[derive(Clone, Debug, Default)]
pub struct Diagnosis {
    /// The alarmed key.
    pub key: String,
    /// Base tuples (by provenance key) the flapping entry depends on.
    pub suspected_origins: Vec<String>,
    /// Number of cross-node provenance hops the diagnosis needed.
    pub provenance_hops: usize,
}

/// Diagnoses an alarm by tracing the online distributed provenance of the
/// flapping entry from `location`.
pub fn diagnose(
    network: &crate::network::SecureNetwork,
    location: &Value,
    alarm: &FlapAlarm,
) -> Diagnosis {
    let stores = network.distributed_stores();
    let result = traceback(&stores, &location.to_string(), &alarm.key);
    Diagnosis {
        key: alarm.key.clone(),
        suspected_origins: result
            .visited
            .iter()
            .filter(|k| k.starts_with("link"))
            .cloned()
            .collect(),
        provenance_hops: result.remote_hops,
    }
}

/// Summarises per-destination route-update counts from a stream of
/// `routeUpdate(@node, dest, seq)` tuples — the declarative counterpart used
/// by the `diagnostics_monitor` example to cross-check [`FlapMonitor`].
pub fn update_counts(updates: &[Tuple]) -> BTreeMap<u32, usize> {
    let mut counts = BTreeMap::new();
    for t in updates {
        if let Some(Value::Addr(dest)) = t.value(1) {
            *counts.entry(*dest).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_alarms_only_above_threshold_within_window() {
        let mut monitor = FlapMonitor::new(SimTime::from_secs_f64(10.0), 3);
        let key = "bestPath(@n0,n7)";
        for i in 0..3u64 {
            assert!(monitor
                .record(key, SimTime::from_secs_f64(i as f64))
                .is_none());
        }
        let alarm = monitor
            .record(key, SimTime::from_secs_f64(3.0))
            .expect("fourth change within 10s trips the threshold");
        assert_eq!(alarm.changes, 4);
        assert_eq!(alarm.key, key);
        assert_eq!(monitor.changes_in_window(key), 4);
        assert_eq!(monitor.changes_in_window("other"), 0);
    }

    #[test]
    fn old_changes_slide_out_of_the_window() {
        let mut monitor = FlapMonitor::new(SimTime::from_secs_f64(5.0), 2);
        let key = "bestPath(@n0,n1)";
        assert!(monitor.record(key, SimTime::from_secs_f64(0.0)).is_none());
        assert!(monitor.record(key, SimTime::from_secs_f64(1.0)).is_none());
        // 100 seconds later the early changes have expired.
        assert!(monitor.record(key, SimTime::from_secs_f64(100.0)).is_none());
        assert_eq!(monitor.changes_in_window(key), 1);
    }

    #[test]
    fn different_keys_are_tracked_independently() {
        let mut monitor = FlapMonitor::new(SimTime::from_secs_f64(10.0), 1);
        assert!(monitor.record("a", SimTime::from_secs_f64(0.0)).is_none());
        assert!(monitor.record("b", SimTime::from_secs_f64(0.0)).is_none());
        assert!(monitor.record("a", SimTime::from_secs_f64(1.0)).is_some());
    }

    #[test]
    fn update_counts_aggregate_by_destination() {
        let updates = vec![
            Tuple::new(
                "routeUpdate",
                vec![Value::Addr(0), Value::Addr(1), Value::Int(1)],
            ),
            Tuple::new(
                "routeUpdate",
                vec![Value::Addr(0), Value::Addr(1), Value::Int(2)],
            ),
            Tuple::new(
                "routeUpdate",
                vec![Value::Addr(0), Value::Addr(2), Value::Int(3)],
            ),
        ];
        let counts = update_counts(&updates);
        assert_eq!(counts[&1], 2);
        assert_eq!(counts[&2], 1);
    }

    #[test]
    fn diagnose_traces_online_provenance() {
        use crate::network::SecureNetwork;
        use crate::programs;
        use pasn_engine::{EngineConfig, GraphMode};
        use pasn_net::{CostModel, Topology};

        let mut net = SecureNetwork::builder()
            .program(programs::reachability_ndlog())
            .topology(Topology::line(3))
            .config(
                EngineConfig::ndlog()
                    .with_cost_model(CostModel::zero_cpu())
                    .with_graph_mode(GraphMode::Distributed),
            )
            .build()
            .unwrap();
        net.run().unwrap();
        let alarm = FlapAlarm {
            key: "reachable(@n0,n2)".to_string(),
            changes: 5,
            at: SimTime::ZERO,
        };
        let diagnosis = diagnose(&net, &Value::Addr(0), &alarm);
        assert_eq!(diagnosis.key, alarm.key);
        assert!(!diagnosis.suspected_origins.is_empty());
    }
}
