//! The evaluation harness: regenerates Figures 3 and 4 and the summary
//! statistics of Section 6.
//!
//! The paper runs the Best-Path query over random topologies of N = 10..100
//! nodes (average out-degree three) under three system variants — NDLog,
//! SeNDLog (authenticated) and SeNDLogProv (authenticated + condensed
//! provenance) — and reports query completion time (Figure 3) and total
//! bandwidth (Figure 4), averaged over 10 runs.  [`run_sweep`] reproduces
//! that protocol; [`Summary`] computes the relative-overhead statistics the
//! paper quotes (53% / 36% average SeNDLog overhead, 41% / 54% SeNDLogProv
//! overhead, both shrinking at N = 100).

use crate::network::{NetworkError, SecureNetwork};
use crate::programs;
use crate::workload::evaluation_topology;
use pasn_engine::{EngineConfig, RunMetrics, SystemVariant};
use pasn_net::CostModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parameters of a Best-Path evaluation sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Network sizes to evaluate (the paper uses 10, 20, ..., 100).
    pub sizes: Vec<u32>,
    /// Independent runs (distinct random topologies) averaged per point; the
    /// paper averages 10.
    pub runs_per_point: u32,
    /// Base random seed.
    pub seed: u64,
    /// RSA modulus size used by the authenticated variants.
    pub rsa_modulus_bits: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            sizes: (1..=10).map(|i| i * 10).collect(),
            runs_per_point: 10,
            seed: 0x1cde_2008,
            rsa_modulus_bits: 512,
        }
    }
}

impl SweepConfig {
    /// A reduced sweep that finishes quickly (used by tests and CI): three
    /// sizes, two runs per point.
    pub fn quick() -> Self {
        SweepConfig {
            sizes: vec![10, 20, 30],
            runs_per_point: 2,
            ..SweepConfig::default()
        }
    }
}

/// One measured point of the evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Number of nodes.
    pub n: u32,
    /// System variant name (`NDLog`, `SeNDLog`, `SeNDLogProv`).
    pub variant: String,
    /// Query completion time in seconds (Figure 3's y-axis), averaged over
    /// the runs.
    pub completion_secs: f64,
    /// Bandwidth utilization in MB (Figure 4's y-axis), averaged over the
    /// runs.
    pub megabytes: f64,
    /// Average number of inter-node messages.
    pub messages: f64,
    /// Average number of rule firings.
    pub derivations: f64,
    /// Average number of signatures generated.
    pub signatures: f64,
}

/// Runs one (N, variant) point: `runs` topologies, metrics averaged.
pub fn run_point(
    n: u32,
    variant: SystemVariant,
    config: &SweepConfig,
    cost_model: CostModel,
) -> Result<ExperimentPoint, NetworkError> {
    let mut completion = 0.0;
    let mut megabytes = 0.0;
    let mut messages = 0.0;
    let mut derivations = 0.0;
    let mut signatures = 0.0;
    for run in 0..config.runs_per_point {
        let metrics = run_best_path_once(n, variant, config, cost_model, run as u64)?;
        completion += metrics.completion_secs();
        megabytes += metrics.megabytes();
        messages += metrics.messages as f64;
        derivations += metrics.derivations as f64;
        signatures += metrics.signatures as f64;
    }
    let runs = config.runs_per_point.max(1) as f64;
    Ok(ExperimentPoint {
        n,
        variant: variant.name().to_string(),
        completion_secs: completion / runs,
        megabytes: megabytes / runs,
        messages: messages / runs,
        derivations: derivations / runs,
        signatures: signatures / runs,
    })
}

/// Runs the Best-Path query once for a given size, variant and run index.
pub fn run_best_path_once(
    n: u32,
    variant: SystemVariant,
    config: &SweepConfig,
    cost_model: CostModel,
    run: u64,
) -> Result<RunMetrics, NetworkError> {
    let topology_seed = config
        .seed
        .wrapping_mul(31)
        .wrapping_add(n as u64)
        .wrapping_add(run.wrapping_mul(7919));
    let topology = evaluation_topology(n, topology_seed);
    let mut engine_config: EngineConfig = variant.config();
    engine_config.cost_model = cost_model;
    engine_config.rsa_modulus_bits = config.rsa_modulus_bits;
    engine_config.key_seed = config.seed;
    let mut network = SecureNetwork::builder()
        .program(programs::best_path())
        .topology(topology)
        .config(engine_config)
        .build()?;
    network.run()
}

/// Runs the full sweep: every size × every variant.
pub fn run_sweep(config: &SweepConfig) -> Result<Vec<ExperimentPoint>, NetworkError> {
    run_sweep_with_cost(config, CostModel::paper_2008())
}

/// Runs the full sweep with an explicit cost model.
pub fn run_sweep_with_cost(
    config: &SweepConfig,
    cost_model: CostModel,
) -> Result<Vec<ExperimentPoint>, NetworkError> {
    let mut points = Vec::new();
    for &n in &config.sizes {
        for variant in SystemVariant::ALL {
            points.push(run_point(n, variant, config, cost_model)?);
        }
    }
    Ok(points)
}

/// The overhead statistics the paper quotes in Section 6.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Average SeNDLog-over-NDLog completion-time overhead (paper: ~53%).
    pub sendlog_time_overhead: f64,
    /// Average SeNDLog-over-NDLog bandwidth overhead (paper: ~36%).
    pub sendlog_bandwidth_overhead: f64,
    /// SeNDLog overheads at the largest N (paper: 44% / 17% at N = 100).
    pub sendlog_time_overhead_at_max: f64,
    /// SeNDLog bandwidth overhead at the largest N.
    pub sendlog_bandwidth_overhead_at_max: f64,
    /// Average SeNDLogProv-over-SeNDLog completion-time overhead (paper: ~41%).
    pub prov_time_overhead: f64,
    /// Average SeNDLogProv-over-SeNDLog bandwidth overhead (paper: ~54%).
    pub prov_bandwidth_overhead: f64,
    /// SeNDLogProv overheads at the largest N (paper: 6% / 10% at N = 100).
    pub prov_time_overhead_at_max: f64,
    /// SeNDLogProv bandwidth overhead at the largest N.
    pub prov_bandwidth_overhead_at_max: f64,
    /// The largest N in the sweep.
    pub max_n: u32,
}

/// Groups points by size, then by variant name.
fn by_size(points: &[ExperimentPoint]) -> BTreeMap<u32, BTreeMap<String, ExperimentPoint>> {
    let mut map: BTreeMap<u32, BTreeMap<String, ExperimentPoint>> = BTreeMap::new();
    for p in points {
        map.entry(p.n)
            .or_default()
            .insert(p.variant.clone(), p.clone());
    }
    map
}

/// Computes the Section 6 summary statistics from a sweep.
pub fn summarize(points: &[ExperimentPoint]) -> Summary {
    let grouped = by_size(points);
    let mut summary = Summary::default();
    let mut sendlog_time = Vec::new();
    let mut sendlog_bw = Vec::new();
    let mut prov_time = Vec::new();
    let mut prov_bw = Vec::new();
    for (n, variants) in &grouped {
        let (Some(nd), Some(se), Some(sp)) = (
            variants.get("NDLog"),
            variants.get("SeNDLog"),
            variants.get("SeNDLogProv"),
        ) else {
            continue;
        };
        let st = se.completion_secs / nd.completion_secs - 1.0;
        let sb = se.megabytes / nd.megabytes - 1.0;
        let pt = sp.completion_secs / se.completion_secs - 1.0;
        let pb = sp.megabytes / se.megabytes - 1.0;
        sendlog_time.push(st);
        sendlog_bw.push(sb);
        prov_time.push(pt);
        prov_bw.push(pb);
        if *n >= summary.max_n {
            summary.max_n = *n;
            summary.sendlog_time_overhead_at_max = st;
            summary.sendlog_bandwidth_overhead_at_max = sb;
            summary.prov_time_overhead_at_max = pt;
            summary.prov_bandwidth_overhead_at_max = pb;
        }
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    summary.sendlog_time_overhead = avg(&sendlog_time);
    summary.sendlog_bandwidth_overhead = avg(&sendlog_bw);
    summary.prov_time_overhead = avg(&prov_time);
    summary.prov_bandwidth_overhead = avg(&prov_bw);
    summary
}

/// Renders a figure as a markdown table: one row per N, one column per
/// variant; `metric` selects completion time (Figure 3) or bandwidth
/// (Figure 4).
pub fn render_figure(points: &[ExperimentPoint], metric: FigureMetric) -> String {
    let grouped = by_size(points);
    let mut out = String::new();
    let unit = match metric {
        FigureMetric::CompletionTime => "s",
        FigureMetric::Bandwidth => "MB",
    };
    let _ = writeln!(
        out,
        "| N | NDLog ({unit}) | SeNDLog ({unit}) | SeNDLogProv ({unit}) |"
    );
    let _ = writeln!(out, "|---|---|---|---|");
    for (n, variants) in grouped {
        let value = |name: &str| {
            variants
                .get(name)
                .map(|p| match metric {
                    FigureMetric::CompletionTime => p.completion_secs,
                    FigureMetric::Bandwidth => p.megabytes,
                })
                .unwrap_or(f64::NAN)
        };
        let _ = writeln!(
            out,
            "| {n} | {:.2} | {:.2} | {:.2} |",
            value("NDLog"),
            value("SeNDLog"),
            value("SeNDLogProv"),
        );
    }
    out
}

/// Which figure to render.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FigureMetric {
    /// Figure 3: query completion time.
    CompletionTime,
    /// Figure 4: bandwidth utilization.
    Bandwidth,
}

/// Renders the Section 6 summary in the same phrasing as the paper.
pub fn render_summary(summary: &Summary) -> String {
    format!(
        "SeNDlog overhead: authenticated communication adds {:.0}% completion time and {:.0}% \
         bandwidth on average vs NDLog (at N={}: {:.0}% / {:.0}%).\n\
         Condensed provenance overhead: SeNDLogProv adds {:.0}% completion time and {:.0}% \
         bandwidth on average vs SeNDLog (at N={}: {:.0}% / {:.0}%).\n",
        summary.sendlog_time_overhead * 100.0,
        summary.sendlog_bandwidth_overhead * 100.0,
        summary.max_n,
        summary.sendlog_time_overhead_at_max * 100.0,
        summary.sendlog_bandwidth_overhead_at_max * 100.0,
        summary.prov_time_overhead * 100.0,
        summary.prov_bandwidth_overhead * 100.0,
        summary.max_n,
        summary.prov_time_overhead_at_max * 100.0,
        summary.prov_bandwidth_overhead_at_max * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_points() -> Vec<ExperimentPoint> {
        let mut points = Vec::new();
        for (n, base) in [(10u32, 10.0f64), (100, 100.0)] {
            // Overheads shrink with N, as in the paper.
            let (se_t, se_b, sp_t, sp_b) = if n == 10 {
                (1.6, 1.5, 1.7, 1.9)
            } else {
                (1.44, 1.17, 1.06, 1.10)
            };
            points.push(ExperimentPoint {
                n,
                variant: "NDLog".into(),
                completion_secs: base,
                megabytes: base,
                messages: 0.0,
                derivations: 0.0,
                signatures: 0.0,
            });
            points.push(ExperimentPoint {
                n,
                variant: "SeNDLog".into(),
                completion_secs: base * se_t,
                megabytes: base * se_b,
                messages: 0.0,
                derivations: 0.0,
                signatures: 0.0,
            });
            points.push(ExperimentPoint {
                n,
                variant: "SeNDLogProv".into(),
                completion_secs: base * se_t * sp_t,
                megabytes: base * se_b * sp_b,
                messages: 0.0,
                derivations: 0.0,
                signatures: 0.0,
            });
        }
        points
    }

    #[test]
    fn summary_computes_average_and_at_max_overheads() {
        let summary = summarize(&synthetic_points());
        assert_eq!(summary.max_n, 100);
        assert!((summary.sendlog_time_overhead - 0.52).abs() < 1e-9);
        assert!((summary.sendlog_time_overhead_at_max - 0.44).abs() < 1e-9);
        assert!((summary.prov_bandwidth_overhead_at_max - 0.10).abs() < 1e-9);
        let rendered = render_summary(&summary);
        assert!(rendered.contains("SeNDlog overhead"));
        assert!(rendered.contains("N=100"));
    }

    #[test]
    fn figure_rendering_produces_markdown_tables() {
        let points = synthetic_points();
        let fig3 = render_figure(&points, FigureMetric::CompletionTime);
        assert!(fig3.contains("| N | NDLog (s)"));
        assert!(fig3.lines().count() >= 4);
        let fig4 = render_figure(&points, FigureMetric::Bandwidth);
        assert!(fig4.contains("MB"));
    }

    #[test]
    fn quick_sweep_config_is_small() {
        let quick = SweepConfig::quick();
        assert!(quick.sizes.len() <= 3);
        assert!(quick.runs_per_point <= 2);
        let full = SweepConfig::default();
        assert_eq!(full.sizes, vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(full.runs_per_point, 10);
    }

    // The full sweep is exercised by the bench harness; here we only check a
    // single tiny point end to end so the test suite stays fast.
    #[test]
    fn single_point_runs_end_to_end() {
        let config = SweepConfig {
            sizes: vec![6],
            runs_per_point: 1,
            seed: 3,
            rsa_modulus_bits: 512,
        };
        let nd = run_point(6, SystemVariant::NDLog, &config, CostModel::paper_2008()).unwrap();
        let se = run_point(6, SystemVariant::SeNDLog, &config, CostModel::paper_2008()).unwrap();
        assert_eq!(nd.n, 6);
        assert!(nd.completion_secs > 0.0);
        assert!(se.completion_secs > nd.completion_secs);
        assert!(se.megabytes > nd.megabytes);
        assert!(se.signatures > 0.0);
        assert_eq!(nd.signatures, 0.0);
    }
}
