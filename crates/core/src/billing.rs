//! Diverse billing over provenance-derived usage data.
//!
//! The paper's introduction lists *"imposing diverse billing over the
//! Internet"* among the applications that motivate network accountability.
//! Once the accountability report of [`crate::accountability`] attributes
//! traffic to principals (and the provenance behind it makes that
//! attribution auditable), billing is a pure policy layer on top: a rate
//! plan maps attributed bytes to charges, possibly with different plans for
//! different principals — the "diverse" part.

use crate::accountability::AccountabilityReport;
use pasn_datalog::Value;
use std::collections::HashMap;
use std::fmt;

const BYTES_PER_MB: f64 = 1_000_000.0;

/// One pricing tier: traffic up to `up_to_bytes` (cumulative) is charged at
/// `price_per_mb`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tier {
    /// Upper bound (in bytes, cumulative) of the tier; `None` means
    /// unbounded (the final tier).
    pub up_to_bytes: Option<u64>,
    /// Price per megabyte within the tier.
    pub price_per_mb: f64,
}

/// A rate plan: a flat subscription fee plus tiered per-megabyte pricing.
#[derive(Clone, Debug, PartialEq)]
pub struct RatePlan {
    /// Human-readable plan name (appears on invoices).
    pub name: String,
    /// Flat fee charged regardless of usage.
    pub flat_fee: f64,
    /// Pricing tiers in increasing order of `up_to_bytes`; the last tier
    /// should be unbounded.
    pub tiers: Vec<Tier>,
}

impl RatePlan {
    /// A flat-rate plan: a single price per megabyte, no subscription fee.
    pub fn flat(name: &str, price_per_mb: f64) -> Self {
        RatePlan {
            name: name.to_string(),
            flat_fee: 0.0,
            tiers: vec![Tier {
                up_to_bytes: None,
                price_per_mb,
            }],
        }
    }

    /// A tiered plan: `included_bytes` are covered by the flat fee, traffic
    /// beyond that is charged per megabyte.
    pub fn tiered(name: &str, flat_fee: f64, included_bytes: u64, overage_per_mb: f64) -> Self {
        RatePlan {
            name: name.to_string(),
            flat_fee,
            tiers: vec![
                Tier {
                    up_to_bytes: Some(included_bytes),
                    price_per_mb: 0.0,
                },
                Tier {
                    up_to_bytes: None,
                    price_per_mb: overage_per_mb,
                },
            ],
        }
    }

    /// The charge for `bytes` of attributed traffic under this plan.
    pub fn charge(&self, bytes: u64) -> f64 {
        let mut remaining = bytes;
        let mut previous_bound = 0u64;
        let mut total = self.flat_fee;
        for tier in &self.tiers {
            if remaining == 0 {
                break;
            }
            let span = match tier.up_to_bytes {
                Some(bound) => bound.saturating_sub(previous_bound),
                None => remaining,
            };
            let in_tier = remaining.min(span);
            total += in_tier as f64 / BYTES_PER_MB * tier.price_per_mb;
            remaining -= in_tier;
            if let Some(bound) = tier.up_to_bytes {
                previous_bound = bound;
            }
        }
        total
    }
}

/// The bill of one principal.
#[derive(Clone, Debug, PartialEq)]
pub struct Invoice {
    /// The billed principal's location value.
    pub principal: Value,
    /// Name of the rate plan applied.
    pub plan: String,
    /// Attributed bytes.
    pub bytes: u64,
    /// The resulting charge.
    pub amount: f64,
}

/// A billing run over an accountability report.
#[derive(Clone, Debug, Default)]
pub struct BillingRun {
    /// One invoice per principal, sorted by descending amount.
    pub invoices: Vec<Invoice>,
}

impl BillingRun {
    /// Bills every principal of `report` under `default_plan`, except those
    /// with an entry in `overrides` (the "diverse" billing of the paper's
    /// introduction: different principals may be on different plans).
    pub fn compute(
        report: &AccountabilityReport,
        default_plan: &RatePlan,
        overrides: &HashMap<Value, RatePlan>,
    ) -> Self {
        let mut invoices: Vec<Invoice> = report
            .usage
            .iter()
            .map(|usage| {
                let plan = overrides.get(&usage.location).unwrap_or(default_plan);
                Invoice {
                    principal: usage.location.clone(),
                    plan: plan.name.clone(),
                    bytes: usage.bytes_sent,
                    amount: plan.charge(usage.bytes_sent),
                }
            })
            .collect();
        invoices.sort_by(|a, b| {
            b.amount
                .partial_cmp(&a.amount)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.principal.cmp(&b.principal))
        });
        BillingRun { invoices }
    }

    /// Total revenue of the run.
    pub fn total(&self) -> f64 {
        self.invoices.iter().map(|i| i.amount).sum()
    }

    /// The invoice of one principal.
    pub fn invoice_for(&self, principal: &Value) -> Option<&Invoice> {
        self.invoices.iter().find(|i| &i.principal == principal)
    }
}

impl fmt::Display for BillingRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<16} {:>12} {:>10}",
            "principal", "plan", "bytes", "amount"
        )?;
        for invoice in &self.invoices {
            writeln!(
                f,
                "{:<12} {:<16} {:>12} {:>10.4}",
                invoice.principal.to_string(),
                invoice.plan,
                invoice.bytes,
                invoice.amount
            )?;
        }
        writeln!(f, "total: {:.4}", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accountability::PrincipalUsage;

    fn report(byte_counts: &[(u32, u64)]) -> AccountabilityReport {
        AccountabilityReport {
            usage: byte_counts
                .iter()
                .map(|(node, bytes)| PrincipalUsage {
                    location: Value::Addr(*node),
                    bytes_sent: *bytes,
                    derivations: 0,
                    tuples_stored: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn flat_plan_charges_proportionally() {
        let plan = RatePlan::flat("flat", 2.0);
        assert_eq!(plan.charge(0), 0.0);
        assert!((plan.charge(1_000_000) - 2.0).abs() < 1e-9);
        assert!((plan.charge(2_500_000) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tiered_plan_charges_only_overage() {
        let plan = RatePlan::tiered("tiered", 10.0, 1_000_000, 4.0);
        // Under the included volume only the flat fee applies.
        assert!((plan.charge(0) - 10.0).abs() < 1e-9);
        assert!((plan.charge(999_999) - 10.0).abs() < 1e-9);
        // One megabyte of overage.
        assert!((plan.charge(2_000_000) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn multi_tier_plans_charge_progressively() {
        let plan = RatePlan {
            name: "progressive".into(),
            flat_fee: 0.0,
            tiers: vec![
                Tier {
                    up_to_bytes: Some(1_000_000),
                    price_per_mb: 1.0,
                },
                Tier {
                    up_to_bytes: Some(3_000_000),
                    price_per_mb: 2.0,
                },
                Tier {
                    up_to_bytes: None,
                    price_per_mb: 5.0,
                },
            ],
        };
        // 1 MB at 1.0 + 2 MB at 2.0 + 1 MB at 5.0.
        assert!((plan.charge(4_000_000) - 10.0).abs() < 1e-9);
        // Entirely inside the first tier.
        assert!((plan.charge(500_000) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn billing_run_applies_overrides_and_sorts_by_amount() {
        let report = report(&[(0, 3_000_000), (1, 1_000_000), (2, 0)]);
        let default_plan = RatePlan::flat("standard", 1.0);
        let mut overrides = HashMap::new();
        overrides.insert(Value::Addr(1), RatePlan::flat("premium", 10.0));

        let run = BillingRun::compute(&report, &default_plan, &overrides);
        assert_eq!(run.invoices.len(), 3);
        // Principal 1 pays the premium rate and tops the bill despite sending
        // less traffic.
        assert_eq!(run.invoices[0].principal, Value::Addr(1));
        assert_eq!(run.invoices[0].plan, "premium");
        assert!((run.invoices[0].amount - 10.0).abs() < 1e-9);
        assert!((run.total() - 13.0).abs() < 1e-9);
        assert_eq!(run.invoice_for(&Value::Addr(2)).unwrap().amount, 0.0);
        assert!(run.invoice_for(&Value::Addr(9)).is_none());
        let rendered = run.to_string();
        assert!(rendered.contains("premium"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn empty_report_produces_an_empty_run() {
        let run = BillingRun::compute(
            &AccountabilityReport::default(),
            &RatePlan::flat("standard", 1.0),
            &HashMap::new(),
        );
        assert!(run.invoices.is_empty());
        assert_eq!(run.total(), 0.0);
    }
}
