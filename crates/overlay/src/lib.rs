//! # pasn-overlay
//!
//! Secure overlay networks built on the *Provenance-aware Secure Networks*
//! substrates (Zhou, Cronin, Loo — ICDE 2008).
//!
//! The paper closes with the systems its authors planned to specify on top
//! of the provenance-aware SeNDlog stack: *"we are in the process of
//! evaluating a variety of secure networks specified and implemented by
//! using SeNDlog (e.g. secure Chord routing, DNSSEC)"*, and earlier notes
//! that the general applicability of the techniques extends to overlay
//! networks.  This crate implements those two overlays over the same
//! building blocks the rest of the reproduction uses — `says`
//! authentication from `pasn-crypto` and derivation-graph / semiring
//! provenance from `pasn-provenance` — so that lookup results and
//! resolution answers carry verifiable provenance exactly like routing
//! tuples do in the core evaluation:
//!
//! * [`id`] — the consistent-hashing identifier space shared by the
//!   overlays (SHA-256-derived identifiers on a 2^m ring, interval and
//!   finger arithmetic);
//! * [`chord`] — a Chord distributed hash table with finger-table routing;
//!   every lookup hop is asserted (`says`-signed) by the forwarding node and
//!   recorded as a derivation, so the querier can authenticate the whole
//!   lookup path, enforce trust policies over the principals it traversed,
//!   and trace stored values back to the node that inserted them;
//! * [`dns`] — a DNSSEC-style secure name hierarchy: zones sign their
//!   records, parents endorse child zone keys (DS-style fingerprints), and a
//!   resolution's chain of trust is exposed as an authenticated derivation
//!   graph rooted at the resolver's trust anchor.
//!
//! ## Example
//!
//! ```
//! use pasn_overlay::chord::{ChordConfig, ChordRing};
//! use pasn_crypto::SaysLevel;
//!
//! let ring = ChordRing::build(ChordConfig {
//!     nodes: 8,
//!     bits: 16,
//!     says_level: SaysLevel::Hmac,
//!     modulus_bits: 512,
//!     seed: 7,
//!     successor_list_len: 2,
//! })
//! .unwrap();
//!
//! let origin = ring.node_ids()[0];
//! let key = ring.space().key_id("alice.txt");
//! let trace = ring.lookup(origin, key).unwrap();
//! assert_eq!(trace.owner, ring.successor_of(key));
//! assert!(ring.verify_lookup(&trace).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chord;
pub mod dns;
pub mod id;

pub use chord::{ChordConfig, ChordError, ChordNode, ChordRing, LookupHop, LookupTrace};
pub use dns::{
    DnsError, RecordData, Resolution, Resolver, ResourceRecord, SecureDns, SecureDnsBuilder,
    SignedRecord, Zone,
};
pub use id::{ChordId, IdSpace};
