//! Consistent-hashing identifier space shared by the overlays.
//!
//! Chord (Stoica et al., SIGCOMM 2001 — reference [25] of the paper) places
//! both nodes and keys on a ring of 2^m identifiers produced by a
//! cryptographic hash.  This module provides the identifier type, the
//! hashing helpers (SHA-256 truncated to the ring width, reusing the digest
//! from `pasn-crypto`), and the modular interval arithmetic that the finger
//! table and the lookup procedure need.

use pasn_crypto::sha256::sha256;
use pasn_crypto::PrincipalId;
use std::fmt;

/// An identifier on the ring (node identifier or key identifier).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ChordId(pub u64);

impl fmt::Debug for ChordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChordId({:#x})", self.0)
    }
}

impl fmt::Display for ChordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A 2^m identifier ring.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IdSpace {
    bits: u32,
}

impl IdSpace {
    /// Creates an identifier space of `bits` bits (`1..=64`).
    ///
    /// # Panics
    ///
    /// Panics when `bits` is zero or larger than 64.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "identifier space must use between 1 and 64 bits, got {bits}"
        );
        IdSpace { bits }
    }

    /// Number of identifier bits (the `m` of Chord).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Bit mask selecting the low `bits` bits of a hash.
    fn mask(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Number of identifiers on the ring as a float (used for load-balance
    /// statistics; exact only below 2^53).
    pub fn size_f64(&self) -> f64 {
        2f64.powi(self.bits as i32)
    }

    /// Hashes arbitrary bytes onto the ring.
    pub fn hash_bytes(&self, data: &[u8]) -> ChordId {
        let digest = sha256(data);
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&digest[..8]);
        ChordId(u64::from_be_bytes(raw) & self.mask())
    }

    /// The ring identifier of a node, derived from its principal identity.
    pub fn node_id(&self, principal: PrincipalId) -> ChordId {
        self.hash_bytes(format!("node:{}", principal.0).as_bytes())
    }

    /// The ring identifier of an application key (a name stored in the DHT).
    pub fn key_id(&self, name: &str) -> ChordId {
        self.hash_bytes(format!("key:{name}").as_bytes())
    }

    /// Adds `offset` to `id` modulo the ring size.
    pub fn add(&self, id: ChordId, offset: u64) -> ChordId {
        ChordId(id.0.wrapping_add(offset) & self.mask())
    }

    /// The start of the `k`-th finger of node `n`: `(n + 2^k) mod 2^m`.
    ///
    /// # Panics
    ///
    /// Panics when `k >= bits`.
    pub fn finger_start(&self, n: ChordId, k: u32) -> ChordId {
        assert!(
            k < self.bits,
            "finger index {k} out of range for {} bits",
            self.bits
        );
        self.add(n, 1u64 << k)
    }

    /// Clockwise distance from `a` to `b` on the ring.
    pub fn distance(&self, a: ChordId, b: ChordId) -> u64 {
        b.0.wrapping_sub(a.0) & self.mask()
    }

    /// True when `x` lies in the half-open interval `(a, b]` walking
    /// clockwise.  When `a == b` the interval covers the whole ring.
    pub fn in_open_closed(&self, a: ChordId, b: ChordId, x: ChordId) -> bool {
        if a == b {
            return true;
        }
        let d_ab = self.distance(a, b);
        let d_ax = self.distance(a, x);
        d_ax != 0 && d_ax <= d_ab
    }

    /// True when `x` lies strictly inside `(a, b)` walking clockwise.  When
    /// `a == b` the interval covers the whole ring except `a` itself.
    pub fn in_open_open(&self, a: ChordId, b: ChordId, x: ChordId) -> bool {
        if a == b {
            return x != a;
        }
        let d_ab = self.distance(a, b);
        let d_ax = self.distance(a, x);
        d_ax != 0 && d_ax < d_ab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hash_is_deterministic_and_masked() {
        let space = IdSpace::new(16);
        let a = space.hash_bytes(b"hello");
        let b = space.hash_bytes(b"hello");
        assert_eq!(a, b);
        assert!(a.0 < (1 << 16));
        assert_ne!(space.hash_bytes(b"hello"), space.hash_bytes(b"world"));
    }

    #[test]
    fn node_and_key_ids_use_distinct_namespaces() {
        let space = IdSpace::new(32);
        // The same raw label hashed as a node and as a key must not collide
        // by construction (different prefixes).
        assert_ne!(space.node_id(PrincipalId(7)), space.key_id("7"));
    }

    #[test]
    fn finger_start_wraps_around() {
        let space = IdSpace::new(8);
        let n = ChordId(250);
        assert_eq!(space.finger_start(n, 0), ChordId(251));
        assert_eq!(space.finger_start(n, 3), ChordId(2)); // 250 + 8 = 258 mod 256
        assert_eq!(space.add(ChordId(255), 1), ChordId(0));
    }

    #[test]
    #[should_panic(expected = "finger index")]
    fn finger_start_rejects_out_of_range_index() {
        IdSpace::new(8).finger_start(ChordId(0), 8);
    }

    #[test]
    #[should_panic(expected = "between 1 and 64")]
    fn zero_bit_space_is_rejected() {
        IdSpace::new(0);
    }

    #[test]
    fn interval_open_closed_handles_wraparound() {
        let space = IdSpace::new(8);
        // (200, 10] wraps through zero.
        assert!(space.in_open_closed(ChordId(200), ChordId(10), ChordId(250)));
        assert!(space.in_open_closed(ChordId(200), ChordId(10), ChordId(5)));
        assert!(space.in_open_closed(ChordId(200), ChordId(10), ChordId(10)));
        assert!(!space.in_open_closed(ChordId(200), ChordId(10), ChordId(200)));
        assert!(!space.in_open_closed(ChordId(200), ChordId(10), ChordId(100)));
        // Degenerate interval covers the whole ring.
        assert!(space.in_open_closed(ChordId(5), ChordId(5), ChordId(77)));
    }

    #[test]
    fn interval_open_open_excludes_endpoints() {
        let space = IdSpace::new(8);
        assert!(space.in_open_open(ChordId(10), ChordId(20), ChordId(15)));
        assert!(!space.in_open_open(ChordId(10), ChordId(20), ChordId(10)));
        assert!(!space.in_open_open(ChordId(10), ChordId(20), ChordId(20)));
        assert!(space.in_open_open(ChordId(20), ChordId(10), ChordId(0)));
        assert!(space.in_open_open(ChordId(5), ChordId(5), ChordId(4)));
        assert!(!space.in_open_open(ChordId(5), ChordId(5), ChordId(5)));
    }

    #[test]
    fn distance_is_clockwise() {
        let space = IdSpace::new(8);
        assert_eq!(space.distance(ChordId(10), ChordId(20)), 10);
        assert_eq!(space.distance(ChordId(20), ChordId(10)), 246);
        assert_eq!(space.distance(ChordId(42), ChordId(42)), 0);
    }

    #[test]
    fn sixty_four_bit_space_does_not_overflow() {
        let space = IdSpace::new(64);
        let max = ChordId(u64::MAX);
        assert_eq!(space.add(max, 1), ChordId(0));
        assert!(space.in_open_closed(max, ChordId(5), ChordId(3)));
        assert!(space.size_f64() > 1e19);
    }

    proptest! {
        #[test]
        fn prop_membership_matches_distance_definition(
            bits in 3u32..=32,
            a in any::<u64>(),
            b in any::<u64>(),
            x in any::<u64>(),
        ) {
            let space = IdSpace::new(bits);
            let a = ChordId(a & space.mask());
            let b = ChordId(b & space.mask());
            let x = ChordId(x & space.mask());
            // (a, b] and (a, b) agree except possibly at b.
            let oc = space.in_open_closed(a, b, x);
            let oo = space.in_open_open(a, b, x);
            if x == b {
                prop_assert!(!oo);
            } else {
                prop_assert_eq!(oc, oo);
            }
            // x is never inside an interval starting at itself, unless the
            // interval is degenerate (a == b covers the whole ring).
            if x != b {
                prop_assert!(!space.in_open_closed(x, b, x));
            }
        }

        #[test]
        fn prop_every_id_is_in_exactly_one_half(
            bits in 3u32..=32,
            a in any::<u64>(),
            b in any::<u64>(),
            x in any::<u64>(),
        ) {
            let space = IdSpace::new(bits);
            let a = ChordId(a & space.mask());
            let b = ChordId(b & space.mask());
            let x = ChordId(x & space.mask());
            prop_assume!(a != b);
            // Splitting the ring at a and b: every x other than the two
            // endpoints lies in exactly one of (a, b) and (b, a).
            if x != a && x != b {
                let in_ab = space.in_open_open(a, b, x);
                let in_ba = space.in_open_open(b, a, x);
                prop_assert!(in_ab ^ in_ba);
            }
        }

        #[test]
        fn prop_distance_round_trip(bits in 3u32..=32, a in any::<u64>(), b in any::<u64>()) {
            let space = IdSpace::new(bits);
            let a = ChordId(a & space.mask());
            let b = ChordId(b & space.mask());
            let d = space.distance(a, b);
            prop_assert_eq!(space.add(a, d), b);
        }
    }
}
