//! Secure Chord routing with authenticated, provenance-tracked lookups.
//!
//! The paper's future work names *secure Chord routing* as the first overlay
//! it intends to express on the provenance-aware SeNDlog stack.  The full
//! 47-rule declarative Chord of Loo et al. needs bit-level identifier
//! built-ins the NDlog front-end of this reproduction does not grow, so this
//! module implements the overlay directly on the same substrates the engine
//! itself uses: the `says` construct of `pasn-crypto` authenticates every
//! lookup hop, and `pasn-provenance` derivation graphs record *why* a lookup
//! returned the owner it did.  That preserves the behaviour the paper cares
//! about — the querier can verify who forwarded its lookup, enforce trust
//! policies over those principals, and trace a stored value back to the node
//! that inserted it — while the routing state itself (successors, finger
//! tables, replica placement) follows the Chord paper the reproduction
//! cites.
//!
//! The ring is built in its *stabilised* state (every node's successor,
//! predecessor, finger table and successor list are globally consistent),
//! and churn is modelled by [`ChordRing::remove_node`] /
//! [`ChordRing::rejoin_node`] followed by [`ChordRing::stabilize`], which is
//! what a converged run of Chord's periodic stabilisation produces.

use crate::id::{ChordId, IdSpace};
use pasn_crypto::{Authenticator, KeyAuthority, Principal, PrincipalId, SaysAssertion, SaysLevel};
use pasn_provenance::{BaseTupleId, DerivationGraph, VoteSet};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised by the Chord overlay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChordError {
    /// The ring must contain at least one node.
    EmptyRing,
    /// The configured `says` level cannot back single-shot hop assertions
    /// (session proofs only exist on an established frame channel).
    UnsupportedSaysLevel(SaysLevel),
    /// Key provisioning for the node principals failed.
    KeyProvisioning(String),
    /// The referenced node is not (or no longer) a ring member.
    UnknownNode(ChordId),
    /// The lookup visited more nodes than the ring contains — the routing
    /// state is inconsistent.
    LookupLoop {
        /// The key being looked up.
        key: ChordId,
        /// Nodes visited before the loop was detected.
        visited: usize,
    },
    /// A hop assertion failed to verify, or the hop chain is inconsistent.
    InvalidLookup(String),
    /// No value is stored under the requested name.
    NotFound(String),
}

impl fmt::Display for ChordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChordError::EmptyRing => write!(f, "a chord ring needs at least one node"),
            ChordError::UnsupportedSaysLevel(level) => write!(
                f,
                "says level {} cannot back per-hop assertions (use cleartext, hmac or rsa)",
                level.name()
            ),
            ChordError::KeyProvisioning(e) => write!(f, "key provisioning failed: {e}"),
            ChordError::UnknownNode(id) => write!(f, "node {id} is not a ring member"),
            ChordError::LookupLoop { key, visited } => {
                write!(
                    f,
                    "lookup for {key} visited {visited} nodes without converging"
                )
            }
            ChordError::InvalidLookup(msg) => write!(f, "lookup verification failed: {msg}"),
            ChordError::NotFound(name) => write!(f, "no value stored under {name:?}"),
        }
    }
}

impl std::error::Error for ChordError {}

/// Configuration of a [`ChordRing`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChordConfig {
    /// Number of ring members.
    pub nodes: u32,
    /// Identifier bits (the `m` of Chord).
    pub bits: u32,
    /// Strength of the `says` assertions on lookup hops and stored values.
    /// Hops assert individual statements, so only the single-shot levels
    /// apply (`Cleartext` / `Hmac` / `Rsa`); `SaysLevel::Session` proofs
    /// live on an established frame channel and cannot back per-hop
    /// assertions.
    pub says_level: SaysLevel,
    /// RSA modulus size used when provisioning node keys.
    pub modulus_bits: usize,
    /// Seed for key provisioning (node placement is derived from principal
    /// identities, so it is deterministic independently of this seed).
    pub seed: u64,
    /// Length of each node's successor list (replication factor).
    pub successor_list_len: usize,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            nodes: 16,
            bits: 32,
            says_level: SaysLevel::Hmac,
            modulus_bits: 512,
            seed: 0xc0de,
            successor_list_len: 3,
        }
    }
}

/// One finger-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FingerEntry {
    /// Start of the finger interval, `(n + 2^k) mod 2^m`.
    pub start: ChordId,
    /// First ring member at or after `start`.
    pub node: ChordId,
}

/// A value stored in the DHT, signed by the principal that inserted it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredValue {
    /// Application-level name of the value.
    pub name: String,
    /// The stored payload.
    pub value: Vec<u8>,
    /// Principal that inserted the value.
    pub inserted_by: PrincipalId,
    /// `inserted_by says put(name, value)`.
    pub assertion: SaysAssertion,
}

impl StoredValue {
    /// The canonical byte string the inserting principal signs.
    pub fn payload(name: &str, value: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(name.len() + value.len() + 5);
        out.extend_from_slice(b"put:");
        out.extend_from_slice(name.as_bytes());
        out.push(0);
        out.extend_from_slice(value);
        out
    }
}

/// One ring member.
pub struct ChordNode {
    /// Ring identifier.
    pub id: ChordId,
    /// The node's security principal.
    pub principal: PrincipalId,
    /// Immediate successor on the ring.
    pub successor: ChordId,
    /// Immediate predecessor on the ring.
    pub predecessor: ChordId,
    /// Finger table, one entry per identifier bit.
    pub fingers: Vec<FingerEntry>,
    /// The next `r` successors (replica set).
    pub successor_list: Vec<ChordId>,
    authenticator: Authenticator,
    storage: BTreeMap<ChordId, StoredValue>,
}

impl fmt::Debug for ChordNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChordNode")
            .field("id", &self.id)
            .field("principal", &self.principal)
            .field("successor", &self.successor)
            .field("predecessor", &self.predecessor)
            .field("fingers", &self.fingers.len())
            .field("stored", &self.storage.len())
            .finish()
    }
}

impl ChordNode {
    /// The closest finger preceding `key`, falling back to the node itself.
    fn closest_preceding_node(&self, space: &IdSpace, key: ChordId) -> ChordId {
        for finger in self.fingers.iter().rev() {
            if space.in_open_open(self.id, key, finger.node) {
                return finger.node;
            }
        }
        if space.in_open_open(self.id, key, self.successor) {
            return self.successor;
        }
        self.id
    }

    /// Names of the values this node currently stores (primary or replica).
    pub fn stored_names(&self) -> Vec<&str> {
        self.storage.values().map(|v| v.name.as_str()).collect()
    }

    /// Number of stored values.
    pub fn stored_count(&self) -> usize {
        self.storage.len()
    }
}

/// One hop of an authenticated lookup.
#[derive(Clone, Debug)]
pub struct LookupHop {
    /// The node that handled this step of the lookup.
    pub node: ChordId,
    /// The principal behind that node.
    pub principal: PrincipalId,
    /// Where the node forwarded the lookup (the owner, for the final hop).
    pub forwarded_to: ChordId,
    /// The canonical payload the principal asserted.
    pub payload: Vec<u8>,
    /// `principal says payload`.
    pub assertion: SaysAssertion,
}

impl LookupHop {
    /// The canonical byte string a forwarding node signs for one hop.
    pub fn hop_payload(
        key: ChordId,
        index: usize,
        node: ChordId,
        forwarded_to: ChordId,
    ) -> Vec<u8> {
        format!(
            "chordHop:{:#x}:{index}:{:#x}->{:#x}",
            key.0, node.0, forwarded_to.0
        )
        .into_bytes()
    }
}

/// The authenticated trace of one lookup.
#[derive(Clone, Debug)]
pub struct LookupTrace {
    /// The key that was looked up.
    pub key: ChordId,
    /// The node that issued the lookup.
    pub origin: ChordId,
    /// The node responsible for the key.
    pub owner: ChordId,
    /// Every forwarding step, in order (the final hop is performed by the
    /// owner's predecessor on the lookup path, or by the origin itself).
    pub hops: Vec<LookupHop>,
}

impl LookupTrace {
    /// Number of forwarding steps.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The principals involved in answering this lookup, in path order and
    /// deduplicated.
    pub fn principals(&self) -> Vec<PrincipalId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for hop in &self.hops {
            if seen.insert(hop.principal) {
                out.push(hop.principal);
            }
        }
        out
    }

    /// A vote-semiring value over the principals on the path, for K-of-N
    /// style trust decisions on the lookup result.
    pub fn vote(&self) -> VoteSet {
        use pasn_provenance::Semiring;
        self.hops
            .iter()
            .map(|h| VoteSet::principal(h.principal.0))
            .fold(VoteSet::one(), |acc, v| acc.times(&v))
    }

    /// Builds the derivation graph of the lookup: each hop derives the next
    /// lookup step from the previous one plus the forwarding node's
    /// membership fact, and the final result is derived from the last step
    /// plus the owner's membership fact.  The membership facts are the base
    /// tuples, asserted by the corresponding principals — the same shape the
    /// engine produces for routing tuples (Figure 2 of the paper).
    ///
    /// The graph is *unauthenticated*; use
    /// [`ChordRing::authenticated_lookup_graph`] when each derivation step
    /// should carry a `says` assertion by the node that performed it
    /// (Section 4.3 of the paper).
    pub fn provenance_graph(&self, owner_principal: PrincipalId) -> DerivationGraph {
        self.provenance_graph_with(owner_principal, |_, _| None)
    }

    /// [`LookupTrace::provenance_graph`] with a caller-supplied signer: for
    /// every derivation, `sign(node, payload)` is asked for the `says`
    /// assertion the executing node makes over the canonical
    /// [`pasn_provenance::derivation_payload`].
    pub fn provenance_graph_with<F>(
        &self,
        owner_principal: PrincipalId,
        mut sign: F,
    ) -> DerivationGraph
    where
        F: FnMut(ChordId, &[u8]) -> Option<SaysAssertion>,
    {
        use pasn_provenance::derivation_payload;
        let mut graph = DerivationGraph::new();
        let key = format!("{:#x}", self.key.0);
        let mut previous: Option<String> = None;
        for (i, hop) in self.hops.iter().enumerate() {
            let location = format!("{:#x}", hop.node.0);
            let member_key = format!("chordNode({:#x})", hop.node.0);
            graph.add_base(
                &member_key,
                &location,
                BaseTupleId(hop.principal.0 as u64),
                Some(hop.principal),
                i as u64,
                None,
            );
            let step_key = format!("lookupStep({key},{i})");
            let mut antecedents = vec![member_key];
            if let Some(prev) = &previous {
                antecedents.push(prev.clone());
            }
            let payload = derivation_payload(&step_key, "ch_forward", &location, &antecedents);
            let assertion = sign(hop.node, &payload);
            graph.add_derivation(
                &step_key,
                &location,
                "ch_forward",
                &location,
                &antecedents,
                Some(hop.principal),
                assertion,
                i as u64,
                None,
            );
            previous = Some(step_key);
        }
        let owner_location = format!("{:#x}", self.owner.0);
        let origin_location = format!("{:#x}", self.origin.0);
        let owner_key = format!("chordNode({:#x})", self.owner.0);
        graph.add_base(
            &owner_key,
            &owner_location,
            BaseTupleId(owner_principal.0 as u64),
            Some(owner_principal),
            self.hops.len() as u64,
            None,
        );
        let mut antecedents = vec![owner_key];
        if let Some(prev) = previous {
            antecedents.push(prev);
        }
        let result_key = format!("lookupResult({key},{:#x})", self.owner.0);
        let payload = derivation_payload(&result_key, "ch_result", &origin_location, &antecedents);
        let assertion = sign(self.owner, &payload);
        graph.add_derivation(
            &result_key,
            &origin_location,
            "ch_result",
            &origin_location,
            &antecedents,
            Some(owner_principal),
            assertion,
            self.hops.len() as u64,
            None,
        );
        graph
    }
}

/// Result of fetching a value through the DHT.
#[derive(Clone, Debug)]
pub struct GetResult {
    /// The stored value as held by the owner (primary or replica).
    pub value: StoredValue,
    /// The authenticated lookup that located the owner.
    pub trace: LookupTrace,
}

/// A Chord ring in its stabilised state.
pub struct ChordRing {
    space: IdSpace,
    says_level: SaysLevel,
    authority: KeyAuthority,
    nodes: BTreeMap<ChordId, ChordNode>,
    departed: BTreeMap<ChordId, ChordNode>,
    successor_list_len: usize,
}

impl fmt::Debug for ChordRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChordRing")
            .field("nodes", &self.nodes.len())
            .field("bits", &self.space.bits())
            .field("says_level", &self.says_level.name())
            .finish()
    }
}

impl ChordRing {
    /// Builds a stabilised ring per `config`.
    pub fn build(config: ChordConfig) -> Result<Self, ChordError> {
        if config.nodes == 0 {
            return Err(ChordError::EmptyRing);
        }
        // Hops assert individual statements; channel-bound session proofs
        // cannot back them, so refuse the level up front instead of
        // panicking on the first lookup.
        if config.says_level == SaysLevel::Session {
            return Err(ChordError::UnsupportedSaysLevel(config.says_level));
        }
        let space = IdSpace::new(config.bits);
        let principals: Vec<Principal> = (0..config.nodes)
            .map(|i| Principal::new(i, format!("chord{i}")))
            .collect();
        let authority =
            KeyAuthority::provision_with_modulus(&principals, config.seed, config.modulus_bits)
                .map_err(|e| ChordError::KeyProvisioning(format!("{e:?}")))?;

        let mut nodes = BTreeMap::new();
        for principal in &principals {
            let mut id = space.node_id(principal.id);
            // Linear probing on the rare identifier collision keeps every
            // principal on the ring.
            while nodes.contains_key(&id) {
                id = space.add(id, 1);
            }
            let keyring = authority
                .keyring_for(principal.id)
                .ok_or_else(|| ChordError::KeyProvisioning("missing keyring".into()))?;
            nodes.insert(
                id,
                ChordNode {
                    id,
                    principal: principal.id,
                    successor: id,
                    predecessor: id,
                    fingers: Vec::new(),
                    successor_list: Vec::new(),
                    authenticator: Authenticator::new(keyring, config.says_level),
                    storage: BTreeMap::new(),
                },
            );
        }

        let mut ring = ChordRing {
            space,
            says_level: config.says_level,
            authority,
            nodes,
            departed: BTreeMap::new(),
            successor_list_len: config.successor_list_len.max(1),
        };
        ring.stabilize();
        Ok(ring)
    }

    /// The identifier space of the ring.
    pub fn space(&self) -> &IdSpace {
        &self.space
    }

    /// The `says` level in use.
    pub fn says_level(&self) -> SaysLevel {
        self.says_level
    }

    /// The key authority provisioned for the ring members.
    pub fn authority(&self) -> &KeyAuthority {
        &self.authority
    }

    /// Current ring members, in identifier order.
    pub fn node_ids(&self) -> Vec<ChordId> {
        self.nodes.keys().copied().collect()
    }

    /// Number of current members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no members (only possible after removing every
    /// node).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A member node.
    pub fn node(&self, id: ChordId) -> Result<&ChordNode, ChordError> {
        self.nodes.get(&id).ok_or(ChordError::UnknownNode(id))
    }

    /// The principal that operates `node`.
    pub fn principal_of(&self, node: ChordId) -> Result<PrincipalId, ChordError> {
        Ok(self.node(node)?.principal)
    }

    /// Ground truth: the ring member responsible for `key` (its successor).
    pub fn successor_of(&self, key: ChordId) -> ChordId {
        match self.nodes.range(key..).next() {
            Some((id, _)) => *id,
            None => *self
                .nodes
                .keys()
                .next()
                .expect("stabilised ring always has at least one member"),
        }
    }

    /// Recomputes every node's successor, predecessor, finger table and
    /// successor list from the current membership — the converged state of
    /// Chord's periodic stabilisation.
    pub fn stabilize(&mut self) {
        let ids: Vec<ChordId> = self.nodes.keys().copied().collect();
        if ids.is_empty() {
            return;
        }
        let n = ids.len();
        let successor_of = |key: ChordId| -> ChordId {
            match ids.binary_search(&key) {
                Ok(i) => ids[i],
                Err(i) => ids[i % n],
            }
        };
        let bits = self.space.bits();
        let space = self.space;
        let list_len = self.successor_list_len.min(n.saturating_sub(1));
        for (pos, id) in ids.iter().enumerate() {
            let successor = ids[(pos + 1) % n];
            let predecessor = ids[(pos + n - 1) % n];
            let fingers = (0..bits)
                .map(|k| {
                    let start = space.finger_start(*id, k);
                    FingerEntry {
                        start,
                        node: successor_of(start),
                    }
                })
                .collect();
            let successor_list = (1..=list_len).map(|i| ids[(pos + i) % n]).collect();
            let node = self.nodes.get_mut(id).expect("id enumerated from the map");
            node.successor = successor;
            node.predecessor = predecessor;
            node.fingers = fingers;
            node.successor_list = successor_list;
        }
    }

    /// Removes a member (node departure / failure).  Its stored values stay
    /// on the replicas; call [`ChordRing::stabilize`] afterwards to repair
    /// the routing state, as Chord's stabilisation protocol would.
    pub fn remove_node(&mut self, id: ChordId) -> Result<(), ChordError> {
        let node = self.nodes.remove(&id).ok_or(ChordError::UnknownNode(id))?;
        self.departed.insert(id, node);
        Ok(())
    }

    /// Re-admits a previously removed member with its old identity and
    /// storage.
    pub fn rejoin_node(&mut self, id: ChordId) -> Result<(), ChordError> {
        let node = self
            .departed
            .remove(&id)
            .ok_or(ChordError::UnknownNode(id))?;
        self.nodes.insert(id, node);
        Ok(())
    }

    /// Performs an iterative, authenticated lookup of `key` starting at
    /// `origin`.  Every forwarding step is asserted by the node that
    /// performed it.
    pub fn lookup(&self, origin: ChordId, key: ChordId) -> Result<LookupTrace, ChordError> {
        let mut current = self.node(origin)?;
        let mut hops = Vec::new();
        loop {
            if hops.len() > self.nodes.len() {
                return Err(ChordError::LookupLoop {
                    key,
                    visited: hops.len(),
                });
            }
            let (forwarded_to, done) =
                if self
                    .space
                    .in_open_closed(current.id, current.successor, key)
                    || current.id == current.successor
                {
                    (current.successor, true)
                } else {
                    let next = current.closest_preceding_node(&self.space, key);
                    if next == current.id {
                        (current.successor, true)
                    } else {
                        (next, false)
                    }
                };
            let payload = LookupHop::hop_payload(key, hops.len(), current.id, forwarded_to);
            let assertion = current.authenticator.assert(&payload);
            hops.push(LookupHop {
                node: current.id,
                principal: current.principal,
                forwarded_to,
                payload,
                assertion,
            });
            if done {
                return Ok(LookupTrace {
                    key,
                    origin,
                    owner: forwarded_to,
                    hops,
                });
            }
            current = self.node(forwarded_to)?;
        }
    }

    /// Verifies an authenticated lookup trace: every hop's `says` assertion
    /// must check out against its payload, the payloads must encode the hop
    /// chain consistently, and the chain must end at the claimed owner.
    pub fn verify_lookup(&self, trace: &LookupTrace) -> Result<(), ChordError> {
        if trace.hops.is_empty() {
            return Err(ChordError::InvalidLookup("empty hop chain".into()));
        }
        // Any member can verify: the key directory is shared.  Prefer the
        // origin's view when it is still a member.
        let verifier = match self
            .nodes
            .get(&trace.origin)
            .or_else(|| self.nodes.values().next())
        {
            Some(node) => &node.authenticator,
            None => return Err(ChordError::EmptyRing),
        };
        let mut expected_node = trace.hops[0].node;
        if expected_node != trace.origin {
            return Err(ChordError::InvalidLookup(format!(
                "lookup claims to originate at {} but the first hop was performed by {}",
                trace.origin, expected_node
            )));
        }
        for (i, hop) in trace.hops.iter().enumerate() {
            if hop.node != expected_node {
                return Err(ChordError::InvalidLookup(format!(
                    "hop {i} was performed by {} but the previous hop forwarded to {}",
                    hop.node, expected_node
                )));
            }
            let expected_payload = LookupHop::hop_payload(trace.key, i, hop.node, hop.forwarded_to);
            if expected_payload != hop.payload {
                return Err(ChordError::InvalidLookup(format!(
                    "hop {i} payload does not match its claimed key/route"
                )));
            }
            if hop.assertion.principal != hop.principal {
                return Err(ChordError::InvalidLookup(format!(
                    "hop {i} assertion was made by {} instead of {}",
                    hop.assertion.principal, hop.principal
                )));
            }
            verifier
                .verify_at_level(&hop.payload, &hop.assertion, self.says_level)
                .map_err(|e| ChordError::InvalidLookup(format!("hop {i}: {e}")))?;
            expected_node = hop.forwarded_to;
        }
        if expected_node != trace.owner {
            return Err(ChordError::InvalidLookup(format!(
                "hop chain ends at {} but the trace claims owner {}",
                expected_node, trace.owner
            )));
        }
        Ok(())
    }

    /// Builds the *authenticated* provenance graph of a lookup: each
    /// derivation step carries a `says` assertion, over the canonical
    /// derivation payload, by the node that executed it — the authenticated
    /// provenance of Section 4.3 applied to overlay routing.
    pub fn authenticated_lookup_graph(
        &self,
        trace: &LookupTrace,
    ) -> Result<DerivationGraph, ChordError> {
        let owner_principal = self.principal_of(trace.owner)?;
        Ok(
            trace.provenance_graph_with(owner_principal, |node, payload| {
                self.nodes
                    .get(&node)
                    .map(|n| n.authenticator.assert(payload))
            }),
        )
    }

    /// Stores `value` under `name`: the inserting node signs the value, the
    /// key's owner stores the primary copy and each member of the owner's
    /// successor list stores a replica.  Returns the lookup trace used to
    /// locate the owner.
    pub fn put(
        &mut self,
        origin: ChordId,
        name: &str,
        value: &[u8],
    ) -> Result<LookupTrace, ChordError> {
        let key = self.space.key_id(name);
        let trace = self.lookup(origin, key)?;
        let inserter = self.node(origin)?;
        let payload = StoredValue::payload(name, value);
        let stored = StoredValue {
            name: name.to_string(),
            value: value.to_vec(),
            inserted_by: inserter.principal,
            assertion: inserter.authenticator.assert(&payload),
        };
        let owner = trace.owner;
        let replicas: Vec<ChordId> = self
            .node(owner)?
            .successor_list
            .iter()
            .copied()
            .filter(|r| *r != owner)
            .collect();
        self.nodes
            .get_mut(&owner)
            .ok_or(ChordError::UnknownNode(owner))?
            .storage
            .insert(key, stored.clone());
        for replica in replicas {
            if let Some(node) = self.nodes.get_mut(&replica) {
                node.storage.insert(key, stored.clone());
            }
        }
        Ok(trace)
    }

    /// Looks up `name` and fetches its value from the owner, falling back to
    /// the owner's replicas if the owner does not hold it (e.g. after a
    /// departure re-mapped the key).  The returned value's signature is
    /// verified before it is handed back.
    pub fn get(&self, origin: ChordId, name: &str) -> Result<GetResult, ChordError> {
        let key = self.space.key_id(name);
        let trace = self.lookup(origin, key)?;
        let owner = self.node(trace.owner)?;
        let mut holders = vec![trace.owner];
        holders.extend(owner.successor_list.iter().copied());
        let stored = holders
            .iter()
            .filter_map(|h| self.nodes.get(h))
            .find_map(|n| n.storage.get(&key))
            .cloned()
            .ok_or_else(|| ChordError::NotFound(name.to_string()))?;
        let payload = StoredValue::payload(&stored.name, &stored.value);
        let verifier = &self.node(origin)?.authenticator;
        verifier
            .verify_at_level(&payload, &stored.assertion, self.says_level)
            .map_err(|e| ChordError::InvalidLookup(format!("stored value: {e}")))?;
        Ok(GetResult {
            value: stored,
            trace,
        })
    }

    /// Average and maximum hop counts over `samples` deterministic lookups,
    /// used by the overlay benchmarks and the O(log N) routing test.
    pub fn lookup_hop_stats(&self, samples: usize) -> Result<(f64, usize), ChordError> {
        if self.nodes.is_empty() {
            return Err(ChordError::EmptyRing);
        }
        let origins = self.node_ids();
        let mut total = 0usize;
        let mut max = 0usize;
        for i in 0..samples {
            let origin = origins[i % origins.len()];
            let key = self.space.key_id(&format!("sample-key-{i}"));
            let trace = self.lookup(origin, key)?;
            total += trace.hop_count();
            max = max.max(trace.hop_count());
        }
        Ok((total as f64 / samples.max(1) as f64, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ring(nodes: u32, level: SaysLevel) -> ChordRing {
        ChordRing::build(ChordConfig {
            nodes,
            bits: 16,
            says_level: level,
            modulus_bits: 512,
            seed: 11,
            successor_list_len: 2,
        })
        .unwrap()
    }

    #[test]
    fn build_rejects_an_empty_ring() {
        let err = ChordRing::build(ChordConfig {
            nodes: 0,
            ..ChordConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, ChordError::EmptyRing);
        // Session-level says is channel-bound and cannot back per-hop
        // assertions: refused at build time, not a panic mid-lookup.
        assert_eq!(
            ChordRing::build(ChordConfig {
                says_level: SaysLevel::Session,
                ..ChordConfig::default()
            })
            .unwrap_err(),
            ChordError::UnsupportedSaysLevel(SaysLevel::Session)
        );
    }

    #[test]
    fn ring_pointers_are_consistent_after_build() {
        let ring = small_ring(12, SaysLevel::Cleartext);
        let ids = ring.node_ids();
        assert_eq!(ids.len(), 12);
        for (i, id) in ids.iter().enumerate() {
            let node = ring.node(*id).unwrap();
            assert_eq!(node.successor, ids[(i + 1) % ids.len()]);
            assert_eq!(node.predecessor, ids[(i + ids.len() - 1) % ids.len()]);
            assert_eq!(node.fingers.len(), 16);
            assert_eq!(node.successor_list.len(), 2);
            // Every finger points at the true successor of its start.
            for finger in &node.fingers {
                assert_eq!(finger.node, ring.successor_of(finger.start));
            }
        }
    }

    #[test]
    fn lookup_finds_the_true_successor_from_every_origin() {
        let ring = small_ring(10, SaysLevel::Cleartext);
        for origin in ring.node_ids() {
            for i in 0..20 {
                let key = ring.space().key_id(&format!("k{i}"));
                let trace = ring.lookup(origin, key).unwrap();
                assert_eq!(
                    trace.owner,
                    ring.successor_of(key),
                    "origin {origin} key k{i}"
                );
                assert_eq!(trace.origin, origin);
                assert!(trace.hop_count() >= 1);
            }
        }
    }

    #[test]
    fn lookup_hops_stay_logarithmic() {
        let ring = small_ring(32, SaysLevel::Cleartext);
        let (avg, max) = ring.lookup_hop_stats(64).unwrap();
        // 2 * log2(32) = 10 is a generous bound for a stabilised ring.
        assert!(max <= 10, "max hops {max}");
        assert!(avg <= 6.0, "avg hops {avg}");
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let ring = small_ring(1, SaysLevel::Cleartext);
        let only = ring.node_ids()[0];
        let key = ring.space().key_id("anything");
        let trace = ring.lookup(only, key).unwrap();
        assert_eq!(trace.owner, only);
        assert_eq!(trace.hop_count(), 1);
        assert!(ring.verify_lookup(&trace).is_ok());
    }

    #[test]
    fn hmac_lookups_verify_and_tampering_is_detected() {
        let ring = small_ring(8, SaysLevel::Hmac);
        let origin = ring.node_ids()[0];
        let key = ring.space().key_id("document-42");
        let trace = ring.lookup(origin, key).unwrap();
        assert!(ring.verify_lookup(&trace).is_ok());

        // Tamper with the claimed route of an intermediate hop.
        let mut tampered = trace.clone();
        let last = tampered.hops.len() - 1;
        tampered.hops[last].forwarded_to = ring.node_ids()[1];
        assert!(matches!(
            ring.verify_lookup(&tampered),
            Err(ChordError::InvalidLookup(_))
        ));

        // Tamper with the payload (claim a different key was routed).
        let mut tampered = trace.clone();
        tampered.hops[0].payload = LookupHop::hop_payload(
            ring.space().key_id("other"),
            0,
            tampered.hops[0].node,
            tampered.hops[0].forwarded_to,
        );
        assert!(ring.verify_lookup(&tampered).is_err());

        // Claim the lookup was issued by a different origin.
        let mut tampered = trace.clone();
        tampered.origin = ring.node_ids()[2];
        assert!(ring.verify_lookup(&tampered).is_err());

        // Claim a different owner than the chain ends at.
        let mut tampered = trace;
        tampered.owner = origin;
        assert!(ring.verify_lookup(&tampered).is_err());
    }

    #[test]
    fn rsa_lookups_verify_end_to_end() {
        let ring = ChordRing::build(ChordConfig {
            nodes: 4,
            bits: 16,
            says_level: SaysLevel::Rsa,
            modulus_bits: 512,
            seed: 3,
            successor_list_len: 1,
        })
        .unwrap();
        let origin = ring.node_ids()[2];
        let key = ring.space().key_id("rsa-protected");
        let trace = ring.lookup(origin, key).unwrap();
        assert!(ring.verify_lookup(&trace).is_ok());
        // A forged assertion principal is rejected.
        let mut forged = trace.clone();
        forged.hops[0].assertion.principal = PrincipalId(999);
        assert!(ring.verify_lookup(&forged).is_err());
    }

    #[test]
    fn put_and_get_round_trip_with_replication() {
        let mut ring = small_ring(8, SaysLevel::Hmac);
        let origin = ring.node_ids()[3];
        ring.put(origin, "alice.txt", b"hello provenance").unwrap();
        let fetched = ring.get(ring.node_ids()[5], "alice.txt").unwrap();
        assert_eq!(fetched.value.value, b"hello provenance");
        assert_eq!(
            fetched.value.inserted_by,
            ring.principal_of(origin).unwrap()
        );
        // The primary owner plus its successor-list replicas hold the value.
        let key = ring.space().key_id("alice.txt");
        let owner = ring.successor_of(key);
        assert!(ring.node(owner).unwrap().storage.contains_key(&key));
        let holders = ring
            .node_ids()
            .into_iter()
            .filter(|id| ring.node(*id).unwrap().storage.contains_key(&key))
            .count();
        assert!(holders >= 2, "expected replicas, got {holders} holder(s)");
    }

    #[test]
    fn get_survives_owner_departure_via_replicas() {
        let mut ring = small_ring(8, SaysLevel::Cleartext);
        let origin = ring.node_ids()[0];
        ring.put(origin, "resilient", b"still here").unwrap();
        let key = ring.space().key_id("resilient");
        let owner = ring.successor_of(key);
        let querier = ring.node_ids().into_iter().find(|id| *id != owner).unwrap();
        ring.remove_node(owner).unwrap();
        ring.stabilize();
        let fetched = ring.get(querier, "resilient").unwrap();
        assert_eq!(fetched.value.value, b"still here");
    }

    #[test]
    fn missing_value_and_unknown_node_are_reported() {
        let mut ring = small_ring(4, SaysLevel::Cleartext);
        let origin = ring.node_ids()[0];
        assert!(matches!(
            ring.get(origin, "never-stored"),
            Err(ChordError::NotFound(_))
        ));
        assert!(matches!(
            ring.lookup(ChordId(0xdead_beef), ChordId(1)),
            Err(ChordError::UnknownNode(_))
        ));
        let gone = ring.node_ids()[1];
        ring.remove_node(gone).unwrap();
        assert!(matches!(
            ring.rejoin_node(ChordId(42)),
            Err(ChordError::UnknownNode(_))
        ));
        ring.rejoin_node(gone).unwrap();
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn departure_and_rejoin_keep_lookups_correct() {
        let mut ring = small_ring(12, SaysLevel::Cleartext);
        let victim = ring.node_ids()[6];
        ring.remove_node(victim).unwrap();
        ring.stabilize();
        assert_eq!(ring.len(), 11);
        for i in 0..12 {
            let key = ring.space().key_id(&format!("churn-{i}"));
            let origin = ring.node_ids()[i % ring.len()];
            let trace = ring.lookup(origin, key).unwrap();
            assert_eq!(trace.owner, ring.successor_of(key));
        }
        ring.rejoin_node(victim).unwrap();
        ring.stabilize();
        assert_eq!(ring.len(), 12);
        let key = ring.space().key_id("after-rejoin");
        let trace = ring.lookup(victim, key).unwrap();
        assert_eq!(trace.owner, ring.successor_of(key));
    }

    #[test]
    fn lookup_provenance_graph_matches_the_hop_chain() {
        let ring = small_ring(10, SaysLevel::Hmac);
        let origin = ring.node_ids()[1];
        let key = ring.space().key_id("graph-me");
        let trace = ring.lookup(origin, key).unwrap();
        let graph = ring.authenticated_lookup_graph(&trace).unwrap();

        // One membership base per distinct node on the path (plus the owner),
        // one lookupStep per hop, one lookupResult.
        let result_key = format!("lookupResult({:#x},{:#x})", key.0, trace.owner.0);
        let result = graph.find(&result_key).expect("result node exists");
        let why = graph.why_provenance(result);
        assert!(!why.witnesses().is_empty());
        // The rendered tree names the rule used at every hop.
        let rendered = graph.render_tree(result);
        assert!(rendered.contains("ch_forward") || trace.hop_count() == 1);
        assert!(rendered.contains("ch_result"));

        // Authenticated provenance: every derivation assertion verifies with
        // the ring's keys.
        let verifier = ring.node(origin).unwrap();
        let failures = graph.verify_assertions(result, false, |principal, payload, assertion| {
            assert_eq!(principal, assertion.principal);
            verifier
                .authenticator
                .verify_at_level(payload, assertion, ring.says_level())
                .is_ok()
        });
        assert!(failures.is_empty(), "failures: {failures:?}");

        // The vote over the lookup path counts each principal once.
        let vote = trace.vote();
        assert_eq!(vote.count(), trace.principals().len());
        assert!(vote.satisfies_threshold(1));
    }

    #[test]
    fn ring_is_deterministic_for_a_seed() {
        let a = small_ring(8, SaysLevel::Cleartext);
        let b = small_ring(8, SaysLevel::Cleartext);
        assert_eq!(a.node_ids(), b.node_ids());
        let key = a.space().key_id("same");
        assert_eq!(a.successor_of(key), b.successor_of(key));
    }
}
