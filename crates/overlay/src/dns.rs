//! A DNSSEC-style secure name hierarchy whose chain of trust is
//! authenticated provenance.
//!
//! The paper's future work lists DNSSEC alongside secure Chord as a network
//! to specify on the provenance-aware stack.  The essence of DNSSEC maps
//! directly onto the paper's vocabulary: every resource record is a tuple
//! *asserted* (`says`-signed) by the zone principal that owns it, a
//! delegation is a derivation whose antecedents are the parent's signed DS
//! endorsement of the child's key, and a validated answer is a derivation
//! tree rooted at the resolver's trust anchor.  Verifying a resolution is
//! therefore exactly the *authenticated provenance* check of Section 4.3,
//! and the set of zone principals a resolution depends on is its condensed
//! provenance, over which the resolver can enforce trust policies.
//!
//! The module keeps the record model deliberately small (addresses,
//! delegations with key fingerprints, and text records) — enough to exercise
//! multi-level delegation, signature verification, and broken-chain
//! detection without reproducing the full DNS wire protocol.

use pasn_crypto::sha256::{to_hex, Digest};
use pasn_crypto::{Authenticator, SaysError};
use pasn_crypto::{KeyAuthority, Principal, PrincipalId, RsaPublicKey, SaysAssertion, SaysLevel};
use pasn_provenance::{BaseTupleId, DerivationGraph, VoteSet};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Errors raised while building the hierarchy or resolving names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnsError {
    /// A zone was declared twice.
    DuplicateZone(String),
    /// A zone's declared parent does not exist.
    MissingParent {
        /// The zone being attached.
        zone: String,
        /// The parent it referenced.
        parent: String,
    },
    /// A zone name is not a dot-separated suffix extension of its parent.
    InvalidZoneName {
        /// The offending zone.
        zone: String,
        /// Its declared parent.
        parent: String,
    },
    /// Key provisioning failed.
    KeyProvisioning(String),
    /// The referenced zone does not exist.
    UnknownZone(String),
    /// No zone in the hierarchy is authoritative for the queried name.
    NoAuthority(String),
    /// The queried name has no address record in its authoritative zone.
    NameNotFound(String),
    /// The resolver's trust anchor does not match the root zone's published
    /// key.
    UntrustedRoot,
    /// A record signature failed to verify.
    BadSignature {
        /// The zone whose record failed.
        zone: String,
        /// The record owner name.
        owner: String,
    },
    /// A child zone's published key does not match the fingerprint its
    /// parent endorsed (a key-substitution attack, or a stale delegation).
    BrokenChain {
        /// The parent zone holding the endorsement.
        parent: String,
        /// The child whose key failed the check.
        child: String,
    },
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::DuplicateZone(z) => write!(f, "zone {z:?} declared twice"),
            DnsError::MissingParent { zone, parent } => {
                write!(f, "zone {zone:?} references missing parent {parent:?}")
            }
            DnsError::InvalidZoneName { zone, parent } => {
                write!(
                    f,
                    "zone {zone:?} is not a subdomain of its parent {parent:?}"
                )
            }
            DnsError::KeyProvisioning(e) => write!(f, "key provisioning failed: {e}"),
            DnsError::UnknownZone(z) => write!(f, "unknown zone {z:?}"),
            DnsError::NoAuthority(n) => write!(f, "no zone is authoritative for {n:?}"),
            DnsError::NameNotFound(n) => write!(f, "name {n:?} has no address record"),
            DnsError::UntrustedRoot => write!(f, "root key does not match the trust anchor"),
            DnsError::BadSignature { zone, owner } => {
                write!(
                    f,
                    "record {owner:?} in zone {zone:?} has an invalid signature"
                )
            }
            DnsError::BrokenChain { parent, child } => write!(
                f,
                "zone {child:?} publishes a key its parent {parent:?} did not endorse"
            ),
        }
    }
}

impl std::error::Error for DnsError {}

/// The data carried by a resource record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordData {
    /// An address record (the A record analogue).
    Address(u32),
    /// A delegation to a child zone, endorsing the fingerprint of the
    /// child's zone key (the NS + DS pair of DNSSEC).
    Delegation {
        /// Name of the delegated child zone.
        child_zone: String,
        /// SHA-256 fingerprint of the child zone's public key.
        key_fingerprint: Digest,
    },
    /// Free-form text (the TXT record analogue).
    Text(String),
}

impl RecordData {
    /// Short type name used in rendered chains.
    pub fn type_name(&self) -> &'static str {
        match self {
            RecordData::Address(_) => "A",
            RecordData::Delegation { .. } => "DS",
            RecordData::Text(_) => "TXT",
        }
    }
}

/// An unsigned resource record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Fully qualified owner name.
    pub owner: String,
    /// The zone the record belongs to.
    pub zone: String,
    /// The record data.
    pub data: RecordData,
}

impl ResourceRecord {
    /// The canonical byte string the zone principal signs (the RRSIG
    /// analogue covers exactly these bytes).
    pub fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.zone.as_bytes());
        out.push(0);
        out.extend_from_slice(self.owner.as_bytes());
        out.push(0);
        match &self.data {
            RecordData::Address(a) => {
                out.push(1);
                out.extend_from_slice(&a.to_be_bytes());
            }
            RecordData::Delegation {
                child_zone,
                key_fingerprint,
            } => {
                out.push(2);
                out.extend_from_slice(child_zone.as_bytes());
                out.push(0);
                out.extend_from_slice(key_fingerprint);
            }
            RecordData::Text(t) => {
                out.push(3);
                out.extend_from_slice(t.as_bytes());
            }
        }
        out
    }
}

/// A resource record together with its zone's `says` assertion.
#[derive(Clone, Debug)]
pub struct SignedRecord {
    /// The record.
    pub record: ResourceRecord,
    /// `zone-principal says record`.
    pub assertion: SaysAssertion,
}

/// One zone of the hierarchy.
pub struct Zone {
    /// Fully qualified zone name (the root zone is `"."`).
    pub name: String,
    /// Parent zone name (`None` for the root).
    pub parent: Option<String>,
    /// The principal operating the zone.
    pub principal: PrincipalId,
    records: Vec<SignedRecord>,
    published_key: RsaPublicKey,
}

impl fmt::Debug for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Zone")
            .field("name", &self.name)
            .field("principal", &self.principal)
            .field("records", &self.records.len())
            .finish()
    }
}

impl Zone {
    /// All signed records of the zone.
    pub fn records(&self) -> &[SignedRecord] {
        &self.records
    }

    /// The key the zone currently publishes (what an untrusted server would
    /// hand a resolver; validated against the parent's DS endorsement).
    pub fn published_key(&self) -> &RsaPublicKey {
        &self.published_key
    }

    /// The zone's address record for `name`, if any.
    pub fn address_record(&self, name: &str) -> Option<&SignedRecord> {
        self.records
            .iter()
            .find(|r| r.record.owner == name && matches!(r.record.data, RecordData::Address(_)))
    }

    /// The delegation record for `child_zone`, if any.
    pub fn delegation_record(&self, child_zone: &str) -> Option<&SignedRecord> {
        self.records.iter().find(|r| {
            matches!(&r.record.data, RecordData::Delegation { child_zone: c, .. } if c == child_zone)
        })
    }
}

fn is_subdomain(child: &str, parent: &str) -> bool {
    if parent == "." {
        return child != "." && !child.is_empty();
    }
    child.len() > parent.len() && child.ends_with(parent) && {
        let prefix = &child[..child.len() - parent.len()];
        prefix.ends_with('.')
    }
}

/// Builder for a [`SecureDns`] hierarchy.
#[derive(Clone, Debug, Default)]
pub struct SecureDnsBuilder {
    zones: Vec<(String, Option<String>)>,
    addresses: Vec<(String, String, u32)>,
    texts: Vec<(String, String, String)>,
    seed: u64,
    modulus_bits: usize,
}

impl SecureDnsBuilder {
    /// Starts a hierarchy with a root zone (named `"."`).
    pub fn new() -> Self {
        SecureDnsBuilder {
            zones: vec![(".".to_string(), None)],
            addresses: Vec::new(),
            texts: Vec::new(),
            seed: 0xd15c,
            modulus_bits: 512,
        }
    }

    /// Builder: sets the key-provisioning seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the RSA modulus size (smaller keys keep tests fast).
    pub fn modulus_bits(mut self, bits: usize) -> Self {
        self.modulus_bits = bits;
        self
    }

    /// Declares a zone delegated from `parent`.
    pub fn zone(mut self, name: &str, parent: &str) -> Self {
        self.zones
            .push((name.to_string(), Some(parent.to_string())));
        self
    }

    /// Adds an address record for `owner` in `zone`.
    pub fn address(mut self, zone: &str, owner: &str, addr: u32) -> Self {
        self.addresses
            .push((zone.to_string(), owner.to_string(), addr));
        self
    }

    /// Adds a text record for `owner` in `zone`.
    pub fn text(mut self, zone: &str, owner: &str, value: &str) -> Self {
        self.texts
            .push((zone.to_string(), owner.to_string(), value.to_string()));
        self
    }

    /// Provisions zone keys, signs every record, and signs a DS endorsement
    /// in each parent for each child zone.
    pub fn build(self) -> Result<SecureDns, DnsError> {
        // Validate the zone tree first.
        let mut declared: BTreeMap<String, Option<String>> = BTreeMap::new();
        for (name, parent) in &self.zones {
            if declared.insert(name.clone(), parent.clone()).is_some() {
                return Err(DnsError::DuplicateZone(name.clone()));
            }
        }
        for (name, parent) in &self.zones {
            if let Some(parent) = parent {
                if !declared.contains_key(parent) {
                    return Err(DnsError::MissingParent {
                        zone: name.clone(),
                        parent: parent.clone(),
                    });
                }
                if !is_subdomain(name, parent) {
                    return Err(DnsError::InvalidZoneName {
                        zone: name.clone(),
                        parent: parent.clone(),
                    });
                }
            }
        }

        // One principal per zone, in declaration order.
        let principals: Vec<Principal> = self
            .zones
            .iter()
            .enumerate()
            .map(|(i, (name, _))| Principal::new(i as u32, name.clone()))
            .collect();
        let authority =
            KeyAuthority::provision_with_modulus(&principals, self.seed, self.modulus_bits)
                .map_err(|e| DnsError::KeyProvisioning(format!("{e:?}")))?;

        let mut zones: BTreeMap<String, Zone> = BTreeMap::new();
        let mut signers: HashMap<String, Authenticator> = HashMap::new();
        for (i, (name, parent)) in self.zones.iter().enumerate() {
            let principal = PrincipalId(i as u32);
            let keyring = authority
                .keyring_for(principal)
                .ok_or_else(|| DnsError::KeyProvisioning("missing keyring".into()))?;
            let published_key = keyring.rsa_keypair().public_key().clone();
            signers.insert(name.clone(), Authenticator::new(keyring, SaysLevel::Rsa));
            zones.insert(
                name.clone(),
                Zone {
                    name: name.clone(),
                    parent: parent.clone(),
                    principal,
                    records: Vec::new(),
                    published_key,
                },
            );
        }

        let sign = |signers: &HashMap<String, Authenticator>, record: ResourceRecord| {
            let signer = &signers[&record.zone];
            let assertion = signer.assert(&record.payload());
            SignedRecord { record, assertion }
        };

        // Delegations: each parent endorses its child's key fingerprint.
        let child_fingerprints: Vec<(String, String, Digest)> = self
            .zones
            .iter()
            .filter_map(|(name, parent)| {
                parent.as_ref().map(|p| {
                    (
                        p.clone(),
                        name.clone(),
                        zones[name].published_key.fingerprint(),
                    )
                })
            })
            .collect();
        for (parent, child, fingerprint) in child_fingerprints {
            let record = ResourceRecord {
                owner: child.clone(),
                zone: parent.clone(),
                data: RecordData::Delegation {
                    child_zone: child,
                    key_fingerprint: fingerprint,
                },
            };
            let signed = sign(&signers, record);
            zones
                .get_mut(&parent)
                .expect("validated above")
                .records
                .push(signed);
        }

        // Address and text records.
        for (zone, owner, addr) in &self.addresses {
            let zone_entry = zones
                .get_mut(zone)
                .ok_or_else(|| DnsError::UnknownZone(zone.clone()))?;
            let record = ResourceRecord {
                owner: owner.clone(),
                zone: zone.clone(),
                data: RecordData::Address(*addr),
            };
            zone_entry.records.push(sign(&signers, record));
        }
        for (zone, owner, value) in &self.texts {
            let zone_entry = zones
                .get_mut(zone)
                .ok_or_else(|| DnsError::UnknownZone(zone.clone()))?;
            let record = ResourceRecord {
                owner: owner.clone(),
                zone: zone.clone(),
                data: RecordData::Text(value.clone()),
            };
            zone_entry.records.push(sign(&signers, record));
        }

        Ok(SecureDns { zones, authority })
    }
}

/// A built secure name hierarchy.
pub struct SecureDns {
    zones: BTreeMap<String, Zone>,
    authority: KeyAuthority,
}

impl fmt::Debug for SecureDns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecureDns")
            .field("zones", &self.zones.len())
            .finish()
    }
}

impl SecureDns {
    /// Starts building a hierarchy.
    pub fn builder() -> SecureDnsBuilder {
        SecureDnsBuilder::new()
    }

    /// The zone named `name`.
    pub fn zone(&self, name: &str) -> Result<&Zone, DnsError> {
        self.zones
            .get(name)
            .ok_or_else(|| DnsError::UnknownZone(name.to_string()))
    }

    /// All zone names, sorted.
    pub fn zone_names(&self) -> Vec<&str> {
        self.zones.keys().map(String::as_str).collect()
    }

    /// The key authority behind the hierarchy (useful for trust evaluation
    /// in the examples).
    pub fn authority(&self) -> &KeyAuthority {
        &self.authority
    }

    /// The fingerprint of the root zone's genuine key — what an operator
    /// would configure as a resolver trust anchor.
    pub fn root_fingerprint(&self) -> Result<Digest, DnsError> {
        Ok(self.zone(".")?.published_key().fingerprint())
    }

    /// The chain of zones from the root to the zone authoritative for
    /// `name`, longest-suffix-first resolution (root, then each delegated
    /// child whose name suffixes `name`).
    pub fn delegation_chain(&self, name: &str) -> Vec<&Zone> {
        let mut chain = vec![];
        if let Some(root) = self.zones.get(".") {
            chain.push(root);
        }
        while let Some(&current) = chain.last() {
            // Deepest declared child of `current` whose name is a suffix of
            // the queried name.
            let next = self
                .zones
                .values()
                .filter(|z| z.parent.as_deref() == Some(current.name.as_str()))
                .filter(|z| name == z.name || is_subdomain(name, &z.name))
                .max_by_key(|z| z.name.len());
            match next {
                Some(z) => chain.push(z),
                None => break,
            }
        }
        chain
    }

    /// Testing / attack-simulation hook: overwrites the address carried by a
    /// record *without* re-signing it (an on-path attacker rewriting an
    /// answer).
    pub fn tamper_address(&mut self, zone: &str, owner: &str, addr: u32) -> Result<(), DnsError> {
        let zone = self
            .zones
            .get_mut(zone)
            .ok_or_else(|| DnsError::UnknownZone(zone.to_string()))?;
        for record in &mut zone.records {
            if record.record.owner == owner {
                if let RecordData::Address(a) = &mut record.record.data {
                    *a = addr;
                    return Ok(());
                }
            }
        }
        Err(DnsError::NameNotFound(owner.to_string()))
    }

    /// Testing / attack-simulation hook: replaces the key a zone publishes
    /// with one its parent never endorsed (a key-substitution attack).
    pub fn substitute_zone_key(&mut self, zone: &str, seed: u64) -> Result<(), DnsError> {
        let principal = vec![Principal::new(0u32, format!("rogue-{zone}"))];
        let rogue = KeyAuthority::provision_with_modulus(&principal, seed, 512)
            .map_err(|e| DnsError::KeyProvisioning(format!("{e:?}")))?;
        let rogue_key = rogue
            .keyring_for(PrincipalId(0))
            .expect("provisioned above")
            .rsa_keypair()
            .public_key()
            .clone();
        let zone = self
            .zones
            .get_mut(zone)
            .ok_or_else(|| DnsError::UnknownZone(zone.to_string()))?;
        zone.published_key = rogue_key;
        Ok(())
    }
}

/// One verified step of a resolution's chain of trust.
#[derive(Clone, Debug)]
pub struct ChainStep {
    /// The zone that signed the record used at this step.
    pub zone: String,
    /// The zone's principal.
    pub principal: PrincipalId,
    /// The record used (delegation for intermediate steps, address for the
    /// final step).
    pub record: ResourceRecord,
}

/// A validated resolution: the answer plus its chain of trust, exposed as
/// authenticated provenance.
#[derive(Clone, Debug)]
pub struct Resolution {
    /// The queried name.
    pub name: String,
    /// The resolved address.
    pub address: u32,
    /// The verified chain of trust, root first.
    pub chain: Vec<ChainStep>,
}

impl Resolution {
    /// The principals the answer depends on (the zones on the chain).
    pub fn principals(&self) -> BTreeSet<PrincipalId> {
        self.chain.iter().map(|s| s.principal).collect()
    }

    /// The vote-semiring value over the chain's principals.
    pub fn vote(&self) -> VoteSet {
        use pasn_provenance::Semiring;
        self.chain
            .iter()
            .map(|s| VoteSet::principal(s.principal.0))
            .fold(VoteSet::one(), |acc, v| acc.times(&v))
    }

    /// Builds the derivation graph of the answer: the trust anchor and each
    /// signed record are base tuples, and each delegation step derives the
    /// next zone's validated key from the parent's endorsement, exactly like
    /// the rule-by-rule trees of Figures 1 and 2.
    pub fn provenance_graph(&self) -> DerivationGraph {
        let mut graph = DerivationGraph::new();
        graph.add_base("trustAnchor(.)", ".", BaseTupleId(u64::MAX), None, 0, None);
        let mut previous = "trustAnchor(.)".to_string();
        for (i, step) in self.chain.iter().enumerate() {
            let record_key = format!(
                "record({},{},{})",
                step.zone,
                step.record.owner,
                step.record.data.type_name()
            );
            graph.add_base(
                &record_key,
                &step.zone,
                BaseTupleId(step.principal.0 as u64),
                Some(step.principal),
                i as u64,
                None,
            );
            let derived_key = if i + 1 == self.chain.len() {
                format!("resolved({},{})", self.name, self.address)
            } else {
                format!("validatedZone({})", step.record.owner)
            };
            graph.add_derivation(
                &derived_key,
                &step.zone,
                if i + 1 == self.chain.len() {
                    "dns_answer"
                } else {
                    "dns_delegate"
                },
                &step.zone,
                &[previous.clone(), record_key],
                Some(step.principal),
                None,
                i as u64,
                None,
            );
            previous = derived_key;
        }
        graph
    }

    /// Renders the chain of trust, one step per line.
    pub fn render_chain(&self) -> String {
        let mut out = String::new();
        for step in &self.chain {
            out.push_str(&format!(
                "{} says {} {} ({})\n",
                step.zone,
                step.record.data.type_name(),
                step.record.owner,
                match &step.record.data {
                    RecordData::Address(a) => format!("address {a}"),
                    RecordData::Delegation {
                        key_fingerprint, ..
                    } => format!("key {}", &to_hex(key_fingerprint)[..16]),
                    RecordData::Text(t) => t.clone(),
                }
            ));
        }
        out
    }
}

/// A validating resolver configured with a trust anchor for the root zone.
#[derive(Clone, Debug)]
pub struct Resolver {
    trust_anchor: Digest,
}

impl Resolver {
    /// Creates a resolver trusting the root key with this fingerprint.
    pub fn new(trust_anchor: Digest) -> Self {
        Resolver { trust_anchor }
    }

    /// A resolver anchored at the hierarchy's genuine root key.
    pub fn anchored_at(dns: &SecureDns) -> Result<Self, DnsError> {
        Ok(Resolver::new(dns.root_fingerprint()?))
    }

    fn verify_record(key: &RsaPublicKey, record: &SignedRecord) -> Result<(), DnsError> {
        let valid = match &record.assertion.proof {
            pasn_crypto::SaysProof::Rsa(sig) => key.verify(&record.record.payload(), sig),
            _ => false,
        };
        if valid {
            Ok(())
        } else {
            Err(DnsError::BadSignature {
                zone: record.record.zone.clone(),
                owner: record.record.owner.clone(),
            })
        }
    }

    /// Resolves `name`, validating every signature and every delegation
    /// against the chain of trust anchored at the resolver's root key.
    pub fn resolve(&self, dns: &SecureDns, name: &str) -> Result<Resolution, DnsError> {
        let chain_zones = dns.delegation_chain(name);
        if chain_zones.is_empty() {
            return Err(DnsError::NoAuthority(name.to_string()));
        }
        let root = chain_zones[0];
        if root.published_key().fingerprint() != self.trust_anchor {
            return Err(DnsError::UntrustedRoot);
        }

        let mut chain = Vec::new();
        let mut current_key = root.published_key().clone();
        for (i, zone) in chain_zones.iter().enumerate() {
            let is_last = i + 1 == chain_zones.len();
            if is_last {
                let record = zone
                    .address_record(name)
                    .ok_or_else(|| DnsError::NameNotFound(name.to_string()))?;
                Self::verify_record(&current_key, record)?;
                let address = match record.record.data {
                    RecordData::Address(a) => a,
                    _ => unreachable!("address_record returns only address records"),
                };
                chain.push(ChainStep {
                    zone: zone.name.clone(),
                    principal: zone.principal,
                    record: record.record.clone(),
                });
                return Ok(Resolution {
                    name: name.to_string(),
                    address,
                    chain,
                });
            }

            let child = chain_zones[i + 1];
            let delegation =
                zone.delegation_record(&child.name)
                    .ok_or_else(|| DnsError::BrokenChain {
                        parent: zone.name.clone(),
                        child: child.name.clone(),
                    })?;
            Self::verify_record(&current_key, delegation)?;
            let endorsed = match &delegation.record.data {
                RecordData::Delegation {
                    key_fingerprint, ..
                } => *key_fingerprint,
                _ => unreachable!("delegation_record returns only delegations"),
            };
            let child_key = child.published_key().clone();
            if child_key.fingerprint() != endorsed {
                return Err(DnsError::BrokenChain {
                    parent: zone.name.clone(),
                    child: child.name.clone(),
                });
            }
            chain.push(ChainStep {
                zone: zone.name.clone(),
                principal: zone.principal,
                record: delegation.record.clone(),
            });
            current_key = child_key;
        }
        Err(DnsError::NameNotFound(name.to_string()))
    }
}

/// Convenience: the error type a verification helper may surface when the
/// hierarchy is queried through an [`Authenticator`] rather than raw keys.
pub type SaysVerification = Result<(), SaysError>;

#[cfg(test)]
mod tests {
    use super::*;

    fn example_hierarchy() -> SecureDns {
        SecureDns::builder()
            .modulus_bits(512)
            .seed(21)
            .zone("org", ".")
            .zone("example.org", "org")
            .zone("cs.example.org", "example.org")
            .zone("net", ".")
            .address("example.org", "www.example.org", 0x0a00_0001)
            .address("cs.example.org", "gw.cs.example.org", 0x0a00_0102)
            .address("net", "a.net", 0x0a00_0200)
            .address(".", "root-host", 0x7f00_0001)
            .text("example.org", "example.org", "hello provenance")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_the_zone_tree() {
        let err = SecureDns::builder()
            .modulus_bits(512)
            .zone("org", ".")
            .zone("org", ".")
            .build()
            .unwrap_err();
        assert_eq!(err, DnsError::DuplicateZone("org".into()));

        let err = SecureDns::builder()
            .modulus_bits(512)
            .zone("example.org", "org")
            .build()
            .unwrap_err();
        assert!(matches!(err, DnsError::MissingParent { .. }));

        let err = SecureDns::builder()
            .modulus_bits(512)
            .zone("org", ".")
            .zone("unrelated.net", "org")
            .build()
            .unwrap_err();
        assert!(matches!(err, DnsError::InvalidZoneName { .. }));

        let err = SecureDns::builder()
            .modulus_bits(512)
            .address("nonexistent", "www.nonexistent", 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, DnsError::UnknownZone(_)));
    }

    #[test]
    fn resolution_walks_the_delegation_chain() {
        let dns = example_hierarchy();
        let resolver = Resolver::anchored_at(&dns).unwrap();

        let res = resolver.resolve(&dns, "www.example.org").unwrap();
        assert_eq!(res.address, 0x0a00_0001);
        let zones: Vec<&str> = res.chain.iter().map(|s| s.zone.as_str()).collect();
        assert_eq!(zones, vec![".", "org", "example.org"]);
        assert_eq!(res.principals().len(), 3);

        let deep = resolver.resolve(&dns, "gw.cs.example.org").unwrap();
        assert_eq!(deep.address, 0x0a00_0102);
        assert_eq!(deep.chain.len(), 4);

        let shallow = resolver.resolve(&dns, "root-host").unwrap();
        assert_eq!(shallow.chain.len(), 1);
        assert_eq!(shallow.address, 0x7f00_0001);
    }

    #[test]
    fn missing_names_are_reported() {
        let dns = example_hierarchy();
        let resolver = Resolver::anchored_at(&dns).unwrap();
        assert!(matches!(
            resolver.resolve(&dns, "missing.example.org"),
            Err(DnsError::NameNotFound(_))
        ));
        // A name under an undelegated label falls back to the closest
        // enclosing zone, which has no record for it.
        assert!(matches!(
            resolver.resolve(&dns, "www.other.test"),
            Err(DnsError::NameNotFound(_))
        ));
    }

    #[test]
    fn tampered_address_records_fail_signature_validation() {
        let mut dns = example_hierarchy();
        dns.tamper_address("example.org", "www.example.org", 0x0bad_1dea)
            .unwrap();
        let resolver = Resolver::anchored_at(&dns).unwrap();
        assert!(matches!(
            resolver.resolve(&dns, "www.example.org"),
            Err(DnsError::BadSignature { .. })
        ));
        // Other names are unaffected.
        assert!(resolver.resolve(&dns, "a.net").is_ok());
    }

    #[test]
    fn key_substitution_breaks_the_chain_of_trust() {
        let mut dns = example_hierarchy();
        dns.substitute_zone_key("example.org", 99).unwrap();
        let resolver = Resolver::anchored_at(&dns).unwrap();
        let err = resolver.resolve(&dns, "www.example.org").unwrap_err();
        assert!(
            matches!(err, DnsError::BrokenChain { ref parent, ref child }
                if parent == "org" && child == "example.org"),
            "{err:?}"
        );
        // Substituting the root key invalidates the trust anchor itself.
        let mut dns = example_hierarchy();
        dns.substitute_zone_key(".", 7).unwrap();
        let resolver = Resolver::new([0u8; 32]);
        assert!(matches!(
            resolver.resolve(&dns, "a.net"),
            Err(DnsError::UntrustedRoot)
        ));
    }

    #[test]
    fn wrong_trust_anchor_is_rejected() {
        let dns = example_hierarchy();
        let resolver = Resolver::new([0xab; 32]);
        assert_eq!(
            resolver.resolve(&dns, "www.example.org").unwrap_err(),
            DnsError::UntrustedRoot
        );
    }

    #[test]
    fn resolution_provenance_graph_is_rooted_at_the_trust_anchor() {
        let dns = example_hierarchy();
        let resolver = Resolver::anchored_at(&dns).unwrap();
        let res = resolver.resolve(&dns, "gw.cs.example.org").unwrap();
        let graph = res.provenance_graph();
        let answer = graph
            .find(&format!("resolved(gw.cs.example.org,{})", res.address))
            .expect("answer node exists");
        let why = graph.why_provenance(answer);
        let support = graph.base_support(answer);
        // The answer depends on the anchor plus one signed record per zone.
        assert_eq!(support.len(), res.chain.len() + 1);
        assert!(!why.witnesses().is_empty());
        let rendered = graph.render_tree(answer);
        assert!(rendered.contains("dns_answer"));
        assert!(rendered.contains("dns_delegate"));
        assert!(rendered.contains("trustAnchor"));
        // The chain renders one line per step.
        assert_eq!(res.render_chain().lines().count(), res.chain.len());
        assert!(res.vote().satisfies_threshold(res.chain.len()));
    }

    #[test]
    fn delegation_chain_prefers_the_deepest_matching_zone() {
        let dns = example_hierarchy();
        let chain = dns.delegation_chain("x.cs.example.org");
        let names: Vec<&str> = chain.iter().map(|z| z.name.as_str()).collect();
        assert_eq!(names, vec![".", "org", "example.org", "cs.example.org"]);
        let chain = dns.delegation_chain("unrelated.test");
        assert_eq!(chain.len(), 1);
        assert_eq!(dns.zone_names().len(), 5);
    }

    #[test]
    fn is_subdomain_handles_edge_cases() {
        assert!(is_subdomain("org", "."));
        assert!(is_subdomain("example.org", "org"));
        assert!(is_subdomain("a.b.example.org", "example.org"));
        assert!(!is_subdomain("notorg", "org"));
        assert!(!is_subdomain("org", "org"));
        assert!(!is_subdomain(".", "."));
        assert!(!is_subdomain("example.net", "org"));
    }
}
