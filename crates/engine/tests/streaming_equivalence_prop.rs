//! Property tests: the streaming driver is schedule-exact.
//!
//! `DistributedEngine::run_streaming` pulls churn events from an iterator
//! and injects each one only once the queue has drained up to that event's
//! scenario cut, instead of materialising the whole script in the work
//! queue up front.  The claim is not merely that both drivers converge to
//! equivalent fixpoints — it is that they execute the *same schedule*:
//! identical insertion-ordered stores at every node, and bit-identical
//! counters (`derivations`, `tuples_stored`, `frames`, `batched_tuples`,
//! retraction/expiry totals), across says levels × worker counts × batch
//! knobs × churn scripts × soft-state TTLs.

use pasn_datalog::Value;
use pasn_engine::{ChurnScript, DistributedEngine, EngineConfig, Tuple};
use pasn_net::CostModel;
use proptest::prelude::*;
use std::collections::HashMap;

const REACHABLE: &str = "
    r1 reachable(@S,D) :- link(@S,D).
    r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
";

const NODES: [&str; 4] = ["a", "b", "c", "d"];

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn locations() -> Vec<Value> {
    NODES.iter().map(|n| str_val(n)).collect()
}

/// Per-node *insertion-ordered* `(values, tag)` renderings of `pred` — no
/// sorting, so any schedule divergence between the two drivers shows up.
fn ordered_fixpoint_of(engine: &DistributedEngine, pred: &str) -> Vec<Vec<String>> {
    locations()
        .iter()
        .map(|loc| {
            engine
                .query_ordered(loc, pred)
                .into_iter()
                .map(|(t, m)| format!("{:?} {}", t.values, m.tag))
                .collect()
        })
        .collect()
}

fn says_config(pick: u64) -> EngineConfig {
    match pick % 3 {
        0 => EngineConfig::ndlog(),
        1 => EngineConfig::sendlog(),
        _ => EngineConfig::sendlog_session(),
    }
}

fn reach_engine(config: EngineConfig, links: &[(usize, usize)]) -> DistributedEngine {
    let program = pasn_datalog::parse_program(REACHABLE).unwrap();
    let mut engine = DistributedEngine::new(
        &program,
        config
            .with_cost_model(CostModel::zero_cpu())
            .with_dynamics(),
        &locations(),
    )
    .unwrap();
    for &(src, dst) in links {
        engine
            .insert_fact(
                str_val(NODES[src]),
                Tuple::new("link", vec![str_val(NODES[src]), str_val(NODES[dst])]),
            )
            .unwrap();
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming injection reproduces the batch scenario bit for bit:
    /// same insertion-ordered stores, same counters.
    #[test]
    fn streaming_matches_batch_scenario_exactly(
        words in prop::collection::vec(any::<u64>(), 1..20),
        knobs in any::<u64>(),
    ) {
        // One word per candidate link: endpoints plus down / re-up flags.
        let mut initial: Vec<(usize, usize)> = Vec::new();
        let mut flags: HashMap<(usize, usize), (bool, bool)> = HashMap::new();
        for w in &words {
            let link = ((w % 4) as usize, ((w >> 8) % 4) as usize);
            if link.0 == link.1 || flags.contains_key(&link) {
                continue;
            }
            initial.push(link);
            flags.insert(link, ((w >> 16) & 1 == 1, (w >> 17) & 1 == 1));
        }
        prop_assume!(!initial.is_empty());
        let window = knobs % 3_000;
        let cap = 1 + ((knobs >> 16) % 5) as usize;
        let workers = if (knobs >> 32) & 1 == 1 { 4 } else { 1 };
        // A TTL on one case in four exercises mid-run soft-state expiry —
        // the generational shape the streaming driver exists for.
        let ttl = if (knobs >> 33) & 3 == 0 { Some(7_000_000u64) } else { None };
        let config = || {
            let mut c = says_config(knobs >> 24)
                .with_batch_window_us(window)
                .with_max_batch_tuples(cap)
                .with_workers(workers);
            if let Some(ttl) = ttl {
                c = c.with_default_ttl_us(ttl);
            }
            c
        };

        let mut script = ChurnScript::new();
        for (i, link) in initial.iter().enumerate() {
            let (down, up) = flags[link];
            if down {
                script = script.link_down(
                    5_000_000 + i as u64 * 1_000,
                    str_val(NODES[link.0]),
                    str_val(NODES[link.1]),
                );
                if up {
                    script = script.link_up(
                        10_000_000 + i as u64 * 1_000,
                        str_val(NODES[link.0]),
                        str_val(NODES[link.1]),
                    );
                }
            }
        }

        let mut batch = reach_engine(config(), &initial);
        let batch_metrics = batch.run_scenario(&script).unwrap();

        // Streaming requires time order; a *stable* sort keeps script order
        // on same-instant ties, which is exactly the scenario's seq-based
        // tiebreak for scripted events.
        let mut events = script.events().to_vec();
        events.sort_by_key(|(at, _)| *at);

        let mut streaming = reach_engine(config(), &initial);
        let streaming_metrics = streaming.run_streaming(events).unwrap();

        for pred in ["link", "reachable"] {
            prop_assert_eq!(
                ordered_fixpoint_of(&streaming, pred),
                ordered_fixpoint_of(&batch, pred),
                "{} diverged (window {} cap {} workers {} ttl {:?})",
                pred,
                window,
                cap,
                workers,
                ttl
            );
        }
        prop_assert_eq!(streaming_metrics.derivations, batch_metrics.derivations);
        prop_assert_eq!(streaming_metrics.tuples_stored, batch_metrics.tuples_stored);
        prop_assert_eq!(streaming_metrics.frames, batch_metrics.frames);
        prop_assert_eq!(streaming_metrics.batched_tuples, batch_metrics.batched_tuples);
        prop_assert_eq!(streaming_metrics.retractions, batch_metrics.retractions);
        prop_assert_eq!(streaming_metrics.rederivations, batch_metrics.rederivations);
        prop_assert_eq!(streaming_metrics.churn_events, script.len() as u64);
        // The streaming driver samples peaks; they must dominate the final
        // footprint.
        prop_assert!(
            streaming_metrics.peak_store_bytes >= streaming_metrics.store_bytes
        );
        prop_assert!(
            streaming_metrics.peak_index_bytes >= streaming_metrics.index_bytes
        );
    }
}

/// Out-of-order streams are rejected up front rather than silently
/// reordered (silent reordering would break the scenario-cut equivalence).
#[test]
fn streaming_rejects_time_disordered_events() {
    let mut engine = reach_engine(EngineConfig::ndlog(), &[(0, 1)]);
    let events = vec![
        (
            pasn_net::SimTime::from_micros(5_000_000),
            pasn_engine::ChurnEvent::LinkDown {
                src: str_val("a"),
                dst: str_val("b"),
            },
        ),
        (
            pasn_net::SimTime::from_micros(4_000_000),
            pasn_engine::ChurnEvent::LinkUp {
                src: str_val("a"),
                dst: str_val("b"),
                cost: None,
            },
        ),
    ];
    let err = engine.run_streaming(events).unwrap_err();
    assert!(err.to_string().contains("time-ordered"), "{err}");
}
