//! Property tests: the unreliable-network mode is exact.
//!
//! 1. **Lossy re-convergence** — for random topologies × seeded fault
//!    plans (per-link drop / duplicate / delay, plus a crash-style link
//!    cut that discards in-flight frames) × random `says` levels × worker
//!    counts × batch knobs, the lossy run's fixpoint equals a from-scratch
//!    *reliable* evaluation of the surviving topology: identical tuple
//!    sets (canonically ordered) at every node and identical totals.
//! 2. **Counter determinism** — re-running the same seeded plan yields
//!    bit-identical fault counters (drops, duplicates, retransmits, acks,
//!    backoffs), because every transport decision is a pure function of
//!    `(seed, link, frame seq, attempt)`.
//! 3. **Aggregate re-election** — retracting the tuple that carried the
//!    current `a_MIN` best under churn converges to the surviving
//!    candidates' best (the stale-best-on-deletion regression).

use pasn_datalog::Value;
use pasn_engine::{ChurnScript, DistributedEngine, EngineConfig, RunMetrics, Tuple};
use pasn_net::{CostModel, FaultPlan};
use proptest::prelude::*;
use std::collections::HashMap;

const REACHABLE: &str = "
    r1 reachable(@S,D) :- link(@S,D).
    r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
";

const NODES: [&str; 4] = ["a", "b", "c", "d"];

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn locations() -> Vec<Value> {
    NODES.iter().map(|n| str_val(n)).collect()
}

/// Per-node canonically ordered `(values, tag)` renderings of `pred`.
fn fixpoint_of(engine: &DistributedEngine, pred: &str) -> Vec<Vec<String>> {
    locations()
        .iter()
        .map(|loc| {
            let mut rows: Vec<String> = engine
                .query(loc, pred)
                .into_iter()
                .map(|(t, m)| format!("{:?} {}", t.values, m.tag))
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

fn says_config(pick: u64) -> EngineConfig {
    match pick % 3 {
        0 => EngineConfig::ndlog(),
        1 => EngineConfig::sendlog(),
        _ => EngineConfig::sendlog_session(),
    }
}

fn reach_engine(config: EngineConfig, links: &[(usize, usize)]) -> DistributedEngine {
    let program = pasn_datalog::parse_program(REACHABLE).unwrap();
    let mut engine = DistributedEngine::new(
        &program,
        config
            .with_cost_model(CostModel::zero_cpu())
            .with_dynamics(),
        &locations(),
    )
    .unwrap();
    for &(src, dst) in links {
        engine
            .insert_fact(
                str_val(NODES[src]),
                Tuple::new("link", vec![str_val(NODES[src]), str_val(NODES[dst])]),
            )
            .unwrap();
    }
    engine
}

/// The fault counters that must be bit-identical across same-seed runs.
fn fault_counters(m: &RunMetrics) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.frames_dropped,
        m.frames_duplicated,
        m.retransmits,
        m.acks,
        m.backoff_events,
        m.max_retransmit_per_frame,
    )
}

/// Runs one lossy scenario and its reliable from-scratch counterpart and
/// asserts the fixpoints agree; returns the lossy metrics.
fn assert_lossy_matches_reliable(
    config: impl Fn() -> EngineConfig,
    initial: &[(usize, usize)],
    surviving: &[(usize, usize)],
    plan: FaultPlan,
) -> RunMetrics {
    let mut lossy = reach_engine(config().with_fault_plan(plan), initial);
    let metrics = lossy.run_to_fixpoint().unwrap();
    let mut fresh = reach_engine(config(), surviving);
    let fresh_metrics = fresh.run_to_fixpoint().unwrap();
    assert_eq!(fixpoint_of(&lossy, "link"), fixpoint_of(&fresh, "link"));
    assert_eq!(
        fixpoint_of(&lossy, "reachable"),
        fixpoint_of(&fresh, "reachable")
    );
    assert_eq!(metrics.tuples_stored, fresh_metrics.tuples_stored);
    assert_eq!(metrics.verification_failures, 0);
    metrics
}

/// Dense 4-node topology, default lossy plan (6% drop, 2% duplicate, 3%
/// delayed) plus a crash-style link cut: every `says` level × workers
/// {1, 4} re-converges bit-identically to the reliable fixpoint of the
/// surviving topology, with deterministic counters across repeat runs.
#[test]
fn seeded_fault_plan_reconverges_bit_identically() {
    let initial: Vec<(usize, usize)> = vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)];
    let surviving: Vec<(usize, usize)> =
        initial.iter().filter(|&&l| l != (0, 2)).copied().collect();
    for says in 0..3u64 {
        for workers in [1usize, 4] {
            let config = || says_config(says).with_workers(workers);
            let plan = || FaultPlan::new(7).cut_link(5_000_000, 0, 2);
            let first = assert_lossy_matches_reliable(config, &initial, &surviving, plan());
            let second = assert_lossy_matches_reliable(config, &initial, &surviving, plan());
            assert!(
                first.frames_dropped > 0,
                "plan never dropped a frame (says {says} workers {workers})"
            );
            assert!(
                first.retransmits > 0,
                "drops without retransmissions (says {says} workers {workers})"
            );
            // The retry budget bounds the worst per-frame retransmit count.
            assert!(first.max_retransmit_per_frame < u64::from(pasn_engine::DEFAULT_RETRY_BUDGET));
            assert_eq!(
                fault_counters(&first),
                fault_counters(&second),
                "same-seed counters diverged (says {says} workers {workers})"
            );
        }
    }
}

/// A crash that takes a whole node down (discarding everything in flight
/// to and from it) re-converges to the reliable fixpoint without the
/// node's base tuples.
#[test]
fn node_crash_without_drain_reconverges() {
    let initial: Vec<(usize, usize)> = vec![(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)];
    // Node b (index 1) crashes: its own link tuples die with it.
    let surviving: Vec<(usize, usize)> =
        initial.iter().filter(|&&(s, _)| s != 1).copied().collect();
    for says in 0..3u64 {
        let config = || says_config(says);
        let plan = FaultPlan::new(11).crash_node(5_000_000, 1);
        let mut lossy = reach_engine(config().with_fault_plan(plan), &initial);
        let metrics = lossy.run_to_fixpoint().unwrap();
        let mut fresh = reach_engine(config(), &surviving);
        fresh.run_to_fixpoint().unwrap();
        assert_eq!(
            fixpoint_of(&lossy, "reachable"),
            fixpoint_of(&fresh, "reachable"),
            "says {says}"
        );
        assert_eq!(metrics.verification_failures, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random topology × seeded fault plan × `says` level × workers ×
    /// batch window: the lossy fixpoint is the reliable fixpoint of the
    /// surviving topology, and same-seed counters are deterministic.
    #[test]
    fn lossy_equivalence_prop(
        words in prop::collection::vec(any::<u64>(), 1..20),
        knobs in any::<u64>(),
    ) {
        // One word per candidate link: endpoints plus a cut flag.
        let mut initial: Vec<(usize, usize)> = Vec::new();
        let mut cut: HashMap<(usize, usize), bool> = HashMap::new();
        for w in words {
            let link = ((w % 4) as usize, ((w >> 8) % 4) as usize);
            if link.0 == link.1 || cut.contains_key(&link) {
                continue;
            }
            initial.push(link);
            cut.insert(link, (w >> 16) & 1 == 1);
        }
        prop_assume!(!initial.is_empty());
        let seed = knobs ^ 0x9e37_79b9_7f4a_7c15;
        let window = knobs % 3_000;
        let workers = if (knobs >> 12) & 1 == 1 { 4 } else { 1 };
        let config = || {
            says_config(knobs >> 24)
                .with_batch_window_us(window)
                .with_workers(workers)
        };
        let plan = || {
            let mut plan = FaultPlan::new(seed);
            for (i, link) in initial.iter().enumerate() {
                if cut[link] {
                    plan = plan.cut_link(
                        5_000_000 + i as u64 * 1_000,
                        link.0 as u32,
                        link.1 as u32,
                    );
                }
            }
            plan
        };
        let surviving: Vec<(usize, usize)> = initial
            .iter()
            .filter(|link| !cut[*link])
            .copied()
            .collect();

        let mut lossy = reach_engine(config().with_fault_plan(plan()), &initial);
        let metrics = lossy.run_to_fixpoint().unwrap();
        let mut fresh = reach_engine(config(), &surviving);
        let fresh_metrics = fresh.run_to_fixpoint().unwrap();

        prop_assert_eq!(fixpoint_of(&lossy, "link"), fixpoint_of(&fresh, "link"));
        prop_assert_eq!(
            fixpoint_of(&lossy, "reachable"),
            fixpoint_of(&fresh, "reachable"),
            "seed {} window {} workers {}",
            seed,
            window,
            workers
        );
        prop_assert_eq!(metrics.tuples_stored, fresh_metrics.tuples_stored);
        prop_assert_eq!(metrics.verification_failures, 0);

        // Same seed, same decisions: counters are bit-identical.
        let mut again = reach_engine(config().with_fault_plan(plan()), &initial);
        let again_metrics = again.run_to_fixpoint().unwrap();
        prop_assert_eq!(fault_counters(&metrics), fault_counters(&again_metrics));
    }
}

/// The stale-best-on-deletion regression: retracting the `link` tuple
/// carrying the current `a_MIN` best path mid-run re-elects the surviving
/// next-best, matching the from-scratch fixpoint of the final topology.
#[test]
fn retracting_the_current_best_reelects_the_next_best() {
    let best_path = "
        sp1 path(@S,D,P,C) :- link(@S,D,C), P := f_init(S,D).
        sp2 path(@S,D,P,C) :- link(@S,Z,C1), bestPathCost(@Z,D,C2), C := C1 + C2, P := f_init(S,D).
        sp3 bestPathCost(@S,D,a_MIN<C>) :- path(@S,D,P,C).
    ";
    let program = pasn_datalog::parse_program(best_path).unwrap();
    // Two routes a→c: direct (cost 1, the best) and via b (cost 2 + 3).
    let links: Vec<(usize, usize, i64)> = vec![(0, 2, 1), (0, 1, 2), (1, 2, 3)];
    let build = |drop_best: bool| {
        let mut engine = DistributedEngine::new(
            &program,
            EngineConfig::ndlog()
                .with_cost_model(CostModel::zero_cpu())
                .with_dynamics(),
            &locations(),
        )
        .unwrap();
        for &(src, dst, cost) in &links {
            if drop_best && (src, dst) == (0, 2) {
                continue;
            }
            engine
                .insert_fact(
                    str_val(NODES[src]),
                    Tuple::new(
                        "link",
                        vec![str_val(NODES[src]), str_val(NODES[dst]), Value::Int(cost)],
                    ),
                )
                .unwrap();
        }
        engine
    };

    // Retract the best route mid-run: the a→c best must fall back to 5.
    let script = ChurnScript::new().at(
        5_000_000,
        pasn_engine::ChurnEvent::Retract {
            location: str_val("a"),
            tuple: Tuple::new("link", vec![str_val("a"), str_val("c"), Value::Int(1)]),
        },
    );
    let mut churned = build(false);
    churned.run_scenario(&script).unwrap();
    let mut fresh = build(true);
    fresh.run_to_fixpoint().unwrap();

    let best_of = |engine: &DistributedEngine| -> Vec<(Value, i64)> {
        let mut rows: Vec<(Value, i64)> = engine
            .query(&str_val("a"), "bestPathCost")
            .into_iter()
            .map(|(t, _)| (t.values[1].clone(), t.values[2].as_int().unwrap()))
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(best_of(&churned), best_of(&fresh));
    assert!(
        best_of(&churned)
            .iter()
            .any(|(d, c)| *d == str_val("c") && *c == 5),
        "a→c best did not fall back to the surviving route: {:?}",
        best_of(&churned)
    );
    assert_eq!(
        fixpoint_of(&churned, "bestPathCost"),
        fixpoint_of(&fresh, "bestPathCost")
    );
}
