//! Property tests for the seq-addressed store layout.
//!
//! Random interleaved insert / remove / expire / register_index sequences
//! are driven against [`NodeStore::check_index_consistency`] (which audits
//! the dedup map, the lazily compacted seq list and every secondary index
//! after each step) and against a naive insertion-ordered model that
//! predicts `scan_ordered` output and expiry results.

use pasn_datalog::Value;
use pasn_engine::{NodeStore, Tuple, TupleMeta};
use pasn_net::SimTime;
use pasn_provenance::ProvTag;
use proptest::prelude::*;

const PREDICATES: [&str; 2] = ["p", "q"];

fn meta(expires: Option<u64>) -> TupleMeta {
    TupleMeta {
        tag: ProvTag::None,
        created_at: SimTime::ZERO,
        expires_at: expires.map(SimTime::from_micros),
        origin: Value::Addr(0),
        asserted_by: None,
    }
}

fn tuple(pred_sel: u32, a: u32, b: u32) -> Tuple {
    Tuple::new(
        PREDICATES[(pred_sel % 2) as usize],
        vec![Value::Addr(a), Value::Addr(b)],
    )
}

/// The naive oracle: live tuples in global insertion order with the store's
/// TTL-refresh semantics (`max` of two TTLs, hard state clears the TTL).
#[derive(Default)]
struct Model {
    rows: Vec<(Tuple, Option<u64>)>,
}

impl Model {
    fn insert(&mut self, t: &Tuple, ttl: Option<u64>) {
        if let Some((_, existing)) = self.rows.iter_mut().find(|(row, _)| row == t) {
            *existing = match (*existing, ttl) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        } else {
            self.rows.push((t.clone(), ttl));
        }
    }

    fn remove(&mut self, t: &Tuple) {
        self.rows.retain(|(row, _)| row != t);
    }

    fn expire(&mut self, now: u64) -> Vec<Tuple> {
        let (gone, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut self.rows)
            .into_iter()
            .partition(|(_, ttl)| ttl.is_some_and(|e| e <= now));
        self.rows = kept;
        gone.into_iter().map(|(t, _)| t).collect()
    }

    fn scan_ordered(&self, predicate: &str) -> Vec<Tuple> {
        self.rows
            .iter()
            .filter(|(t, _)| t.predicate == predicate)
            .map(|(t, _)| t.clone())
            .collect()
    }
}

fn assert_matches_model(store: &NodeStore, model: &Model) {
    store
        .check_index_consistency()
        .expect("seq/index invariants hold after every op");
    for pred in PREDICATES {
        let got: Vec<Tuple> = store
            .scan_ordered(pred)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(got, model.scan_ordered(pred), "scan_ordered({pred})");
    }
}

/// Decodes one packed random word into an op tuple
/// `(op, pred_sel, a, b, t)` — the offline proptest shim has no tuple
/// strategies, so each op travels as a single `u64`.
fn decode_op(word: u64) -> (u8, u32, u32, u32, u64) {
    (
        (word % 6) as u8,
        ((word >> 3) % 2) as u32,
        ((word >> 8) % 3) as u32,
        ((word >> 16) % 3) as u32,
        (word >> 24) % 60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every prefix of a random op sequence leaves the store consistent and
    /// byte-for-byte in sync with the insertion-ordered oracle.
    #[test]
    fn churn_preserves_consistency_and_order(
        ops in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut store = NodeStore::new();
        let mut model = Model::default();
        for (op, pred_sel, a, b, t) in ops.into_iter().map(decode_op) {
            match op {
                // Hard-state insert.
                0 | 1 => {
                    let tup = tuple(pred_sel, a, b);
                    store.insert(&tup, meta(None), |x, _| x.clone());
                    model.insert(&tup, None);
                }
                // Soft-state insert (TTL in the same window as expiry times,
                // so expiry actually bites).
                2 => {
                    let tup = tuple(pred_sel, a, b);
                    store.insert(&tup, meta(Some(t)), |x, _| x.clone());
                    model.insert(&tup, Some(t));
                }
                // Remove (often a miss — must be a clean no-op).
                3 => {
                    let tup = tuple(pred_sel, a, b);
                    let got = store.remove(&tup).is_some();
                    let expected = model.rows.iter().any(|(row, _)| *row == tup);
                    prop_assert!(got == expected, "remove hit/miss diverged");
                    model.remove(&tup);
                }
                // Expire: returned tuples must follow global insertion order.
                4 => {
                    let got = store.expire(SimTime::from_micros(t));
                    prop_assert!(got == model.expire(t), "expire order diverged");
                }
                // Register an index mid-stream (backfill from live rows).
                _ => {
                    let cols: &[usize] = match (a + b) % 3 {
                        0 => &[0],
                        1 => &[1],
                        _ => &[0, 1],
                    };
                    store.register_index(PREDICATES[(pred_sel % 2) as usize], cols);
                }
            }
            assert_matches_model(&store, &model);
        }
        // Byte accounting stays coherent under churn.
        prop_assert!(store.total_tuple_bytes() == store.store_bytes() + store.index_bytes());
    }

    /// Heavy churn specifically: indexes registered up front, then ~2/3 of
    /// all rows removed or expired, exercising lazy seq-list compaction.
    #[test]
    fn heavy_churn_scan_ordered_matches_oracle(
        keys in prop::collection::vec(any::<u64>(), 30..120),
    ) {
        let mut store = NodeStore::new();
        store.register_index("p", &[0]);
        store.register_index("q", &[0, 1]);
        let mut model = Model::default();
        for (i, word) in keys.iter().enumerate() {
            let (_, pred_sel, a, b, _) = decode_op(*word);
            let ttl = (i % 3 == 1).then_some(10u64);
            let tup = tuple(pred_sel, a + b, b);
            store.insert(&tup, meta(ttl), |x, _| x.clone());
            model.insert(&tup, ttl);
            // Remove every third survivor immediately after inserting it.
            if i % 3 == 2 {
                store.remove(&tup);
                model.remove(&tup);
            }
        }
        let got = store.expire(SimTime::from_micros(100));
        prop_assert!(got == model.expire(100));
        assert_matches_model(&store, &model);
    }
}
