//! Property tests: provenance-guided incremental deletion is exact.
//!
//! 1. **Re-convergence** — for random topologies × random churn scripts
//!    (link downs, some coming back up) × random batch knobs × random
//!    `says` levels, the post-churn fixpoint equals a from-scratch
//!    evaluation of the final topology: identical tuple sets (canonically
//!    ordered) at every node and identical totals.  Insertion *order*
//!    necessarily differs — churn is part of the history — so fixpoints
//!    are compared in canonical (sorted) order.
//! 2. **Count exactness** — with `DerivationCount` tags over alternative
//!    derivations, retracting one derivation leaves the survivor with an
//!    exactly decremented tag, matching the from-scratch run.  (Deeper
//!    tag equality is deliberately not claimed: merged-tag snapshots are
//!    schedule-shaped, exactly as documented for batching.)

use pasn_datalog::Value;
use pasn_engine::{ChurnScript, DistributedEngine, EngineConfig, RunMetrics, Tuple};
use pasn_net::CostModel;
use pasn_provenance::ProvenanceKind;
use proptest::prelude::*;
use std::collections::HashMap;

const REACHABLE: &str = "
    r1 reachable(@S,D) :- link(@S,D).
    r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
";

const NODES: [&str; 4] = ["a", "b", "c", "d"];

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn locations() -> Vec<Value> {
    NODES.iter().map(|n| str_val(n)).collect()
}

/// Per-node canonically ordered `(values, tag)` renderings of `pred`.
fn fixpoint_of(engine: &DistributedEngine, pred: &str) -> Vec<Vec<String>> {
    locations()
        .iter()
        .map(|loc| {
            let mut rows: Vec<String> = engine
                .query(loc, pred)
                .into_iter()
                .map(|(t, m)| format!("{:?} {}", t.values, m.tag))
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

fn says_config(pick: u64) -> EngineConfig {
    match pick % 3 {
        0 => EngineConfig::ndlog(),
        1 => EngineConfig::sendlog(),
        _ => EngineConfig::sendlog_session(),
    }
}

fn reach_engine(config: EngineConfig, links: &[(usize, usize)]) -> DistributedEngine {
    let program = pasn_datalog::parse_program(REACHABLE).unwrap();
    let mut engine = DistributedEngine::new(
        &program,
        config
            .with_cost_model(CostModel::zero_cpu())
            .with_dynamics(),
        &locations(),
    )
    .unwrap();
    for &(src, dst) in links {
        engine
            .insert_fact(
                str_val(NODES[src]),
                Tuple::new("link", vec![str_val(NODES[src]), str_val(NODES[dst])]),
            )
            .unwrap();
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random link churn over random topologies: the churned run's
    /// post-churn fixpoint is the from-scratch fixpoint of whatever
    /// topology the script left behind.
    #[test]
    fn churned_runs_reconverge_to_the_final_topology_fixpoint(
        words in prop::collection::vec(any::<u64>(), 1..20),
        knobs in any::<u64>(),
    ) {
        // One word per candidate link: endpoints plus down / re-up flags.
        let mut initial: Vec<(usize, usize)> = Vec::new();
        let mut flags: HashMap<(usize, usize), (bool, bool)> = HashMap::new();
        for w in words {
            let link = ((w % 4) as usize, ((w >> 8) % 4) as usize);
            if link.0 == link.1 || flags.contains_key(&link) {
                continue;
            }
            initial.push(link);
            flags.insert(link, ((w >> 16) & 1 == 1, (w >> 17) & 1 == 1));
        }
        prop_assume!(!initial.is_empty());
        let window = knobs % 3_000;
        let cap = 1 + ((knobs >> 16) % 5) as usize;
        let config = || {
            says_config(knobs >> 24)
                .with_batch_window_us(window)
                .with_max_batch_tuples(cap)
        };

        // The script: flagged links go down well after initial convergence,
        // a sub-subset comes back later.
        let mut script = ChurnScript::new();
        let mut downs = 0u64;
        for (i, link) in initial.iter().enumerate() {
            let (down, up) = flags[link];
            if down {
                downs += 1;
                script = script.link_down(
                    5_000_000 + i as u64 * 1_000,
                    str_val(NODES[link.0]),
                    str_val(NODES[link.1]),
                );
                if up {
                    script = script.link_up(
                        10_000_000 + i as u64 * 1_000,
                        str_val(NODES[link.0]),
                        str_val(NODES[link.1]),
                    );
                }
            }
        }
        let final_links: Vec<(usize, usize)> = initial
            .iter()
            .filter(|link| {
                let (down, up) = flags[link];
                !down || up
            })
            .copied()
            .collect();

        let mut churned = reach_engine(config(), &initial);
        let metrics = churned.run_scenario(&script).unwrap();

        let mut fresh = reach_engine(config(), &final_links);
        let fresh_metrics: RunMetrics = fresh.run_to_fixpoint().unwrap();

        prop_assert_eq!(fixpoint_of(&churned, "link"), fixpoint_of(&fresh, "link"));
        prop_assert_eq!(
            fixpoint_of(&churned, "reachable"),
            fixpoint_of(&fresh, "reachable"),
            "window {} cap {} downs {}",
            window,
            cap,
            downs
        );
        prop_assert_eq!(metrics.tuples_stored, fresh_metrics.tuples_stored);
        prop_assert_eq!(metrics.churn_events, script.len() as u64);
        prop_assert_eq!(metrics.verification_failures, 0);
        if downs > 0 {
            prop_assert!(metrics.retractions > 0);
        }
    }

    /// Alternative derivations under `DerivationCount`: retracting one
    /// leaves the survivor with an exactly decremented tag — the churned
    /// tags equal the from-scratch tags of the final database.
    #[test]
    fn retractions_decrement_derivation_counts_exactly(
        words in prop::collection::vec(any::<u64>(), 1..16),
        knobs in any::<u64>(),
    ) {
        let program = pasn_datalog::parse_program(
            "At S:\n d1 p(X) :- q(X).\n d2 p(X) :- r(X).",
        )
        .unwrap();
        let loc = str_val("a");
        let window = knobs % 2_000;
        let config = || {
            EngineConfig::ndlog()
                .with_cost_model(CostModel::zero_cpu())
                .with_provenance(ProvenanceKind::Count)
                .with_batch_window_us(window)
                .with_dynamics()
        };
        // One word per base fact: relation, value, retract flag.
        let mut facts: Vec<(&str, i64, bool)> = Vec::new();
        let mut seen: HashMap<(u64, i64), ()> = HashMap::new();
        for w in words {
            let rel = if (w >> 8) % 2 == 0 { "q" } else { "r" };
            let x = (w % 8) as i64;
            if seen.insert(((w >> 8) % 2, x), ()).is_some() {
                continue;
            }
            facts.push((rel, x, (w >> 16) & 1 == 1));
        }

        let build = |keep_only: bool| {
            let mut engine = DistributedEngine::new(
                &program,
                config(),
                std::slice::from_ref(&loc),
            )
            .unwrap();
            for (rel, x, retract) in &facts {
                if keep_only && *retract {
                    continue;
                }
                engine
                    .insert_fact(loc.clone(), Tuple::new(*rel, vec![Value::Int(*x)]))
                    .unwrap();
            }
            engine
        };

        let mut script = ChurnScript::new();
        for (i, (rel, x, retract)) in facts.iter().enumerate() {
            if *retract {
                script = script.at(
                    5_000_000 + i as u64 * 1_000,
                    pasn_engine::ChurnEvent::Retract {
                        location: loc.clone(),
                        tuple: Tuple::new(*rel, vec![Value::Int(*x)]),
                    },
                );
            }
        }

        let mut churned = build(false);
        churned.run_scenario(&script).unwrap();
        let mut fresh = build(true);
        fresh.run_to_fixpoint().unwrap();

        for pred in ["p", "q", "r"] {
            prop_assert_eq!(
                fixpoint_of(&churned, pred),
                fixpoint_of(&fresh, pred),
                "{} diverged (window {})",
                pred,
                window
            );
        }
    }
}
