//! Property tests: sharded wave-parallel evaluation is bit-identical to
//! the sequential run.
//!
//! The worker pool is a pure execution strategy — partitioning the nodes,
//! evaluating a conservative same-instant wave concurrently, and replaying
//! the recorded effect logs in sequential order must not change a single
//! observable: not the fixpoint, not the derivation count, not a byte on
//! the wire, not even the simulated completion instant.  These properties
//! drive random topologies × batch knobs × `says` levels × cost models ×
//! churn scripts through worker counts {2, 4, 8} and demand equality with
//! the `workers = 1` baseline on every meaningful counter.
//!
//! Worker-layout telemetry (`worker_threads`, `partitions`,
//! `cross_partition_frames`, `max_partition_queue`) and host wall clocks
//! are deliberately excluded — they describe *how* the run was executed,
//! which is exactly what is allowed to differ.

use pasn_datalog::Value;
use pasn_engine::{ChurnScript, DistributedEngine, EngineConfig, RunMetrics, Tuple};
use pasn_net::{CostModel, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

const REACHABLE: &str = "
    r1 reachable(@S,D) :- link(@S,D).
    r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
";

// Ten nodes so every swept worker count {2, 4, 8} leaves several nodes on
// one partition — the multi-node-per-partition regime is where lane-order
// hazards live, and a deployment small enough to give each node its own
// partition cannot expose them.
const NODES: [&str; 10] = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"];

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn locations() -> Vec<Value> {
    NODES.iter().map(|n| str_val(n)).collect()
}

/// Decodes one packed random word into `(src, dst, at_us)` — the offline
/// proptest shim has no tuple strategies, so each fact travels as one `u64`.
fn decode_fact(word: u64) -> (usize, usize, u64) {
    (
        (word % 10) as usize,
        ((word >> 8) % 10) as usize,
        (word >> 16) % 4_000,
    )
}

fn says_config(pick: u64) -> EngineConfig {
    match pick % 3 {
        0 => EngineConfig::ndlog(),
        1 => EngineConfig::sendlog(),
        _ => EngineConfig::sendlog_session(),
    }
}

/// Every counter the parallel path must reproduce bit for bit.  Names ride
/// along so a proptest failure says *which* counter diverged.
fn counters(m: &RunMetrics) -> Vec<(&'static str, u64)> {
    vec![
        ("completion_us", m.completion.as_micros()),
        ("messages", m.messages),
        ("bytes", m.bytes),
        ("auth_bytes", m.auth_bytes),
        ("provenance_bytes", m.provenance_bytes),
        ("derivations", m.derivations),
        ("tuples_stored", m.tuples_stored),
        ("signatures", m.signatures),
        ("verifications", m.verifications),
        ("verification_failures", m.verification_failures),
        ("provenance_ops", m.provenance_ops),
        ("index_probes", m.index_probes),
        ("index_hits", m.index_hits),
        ("scan_probes", m.scan_probes),
        ("store_bytes", m.store_bytes),
        ("index_bytes", m.index_bytes),
        ("frames", m.frames),
        ("batched_tuples", m.batched_tuples),
        ("rsa_sign_ops", m.rsa_sign_ops),
        ("rsa_verify_ops", m.rsa_verify_ops),
        ("hmac_ops", m.hmac_ops),
        ("handshakes", m.handshakes),
        ("handshake_batches", m.handshake_batches),
        ("churn_events", m.churn_events),
        ("retractions", m.retractions),
        ("rederivations", m.rederivations),
        ("tombstone_frames", m.tombstone_frames),
    ]
}

/// Per-node canonically ordered `(values, tag)` renderings of `pred`.
fn fixpoint_of(engine: &DistributedEngine, pred: &str) -> Vec<Vec<String>> {
    locations()
        .iter()
        .map(|loc| {
            let mut rows: Vec<String> = engine
                .query(loc, pred)
                .into_iter()
                .map(|(t, m)| format!("{:?} {}", t.values, m.tag))
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

/// Per-node *insertion-ordered* fixpoints — the strong form: the parallel
/// run must store every tuple in the same order the sequential run did.
fn ordered_fixpoint_of(engine: &DistributedEngine, pred: &str) -> Vec<Vec<Tuple>> {
    locations()
        .iter()
        .map(|loc| {
            engine
                .query_ordered(loc, pred)
                .into_iter()
                .map(|(t, _)| t)
                .collect()
        })
        .collect()
}

/// Runs the reachability program over the fact stream with `workers`
/// evaluation threads and returns the finished engine plus its metrics.
fn run(
    facts: &[(usize, usize, u64)],
    config: EngineConfig,
    workers: usize,
) -> (DistributedEngine, RunMetrics) {
    let program = pasn_datalog::parse_program(REACHABLE).unwrap();
    let mut engine =
        DistributedEngine::new(&program, config.with_workers(workers), &locations()).unwrap();
    for &(src, dst, at) in facts {
        if src == dst {
            continue; // self-loops add nothing
        }
        engine
            .insert_fact_at(
                str_val(NODES[src]),
                Tuple::new("link", vec![str_val(NODES[src]), str_val(NODES[dst])]),
                SimTime::from_micros(at),
            )
            .unwrap();
    }
    let metrics = engine.run_to_fixpoint().unwrap();
    (engine, metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fact streams × batch knobs × `says` levels × cost models:
    /// every worker count reproduces the sequential run bit for bit —
    /// ordered fixpoint, all counters, and the simulated completion time.
    #[test]
    fn worker_pools_reproduce_the_sequential_run_bit_for_bit(
        words in prop::collection::vec(any::<u64>(), 1..24),
        knobs in any::<u64>(),
    ) {
        let facts: Vec<(usize, usize, u64)> = words.into_iter().map(decode_fact).collect();
        let window = knobs % 3_000;
        let cap = 1 + ((knobs >> 16) % 5) as usize;
        // Half the cases run the paper's CPU/latency model so the claim
        // covers simulated time, not just counts.
        let config = || {
            let base = says_config(knobs >> 24)
                .with_batch_window_us(window)
                .with_max_batch_tuples(cap);
            if (knobs >> 40) & 1 == 1 {
                base.with_cost_model(CostModel::zero_cpu())
            } else {
                base
            }
        };

        let (sequential, baseline) = run(&facts, config(), 1);
        let want_ordered = ordered_fixpoint_of(&sequential, "reachable");
        let want_counters = counters(&baseline);
        prop_assert_eq!(baseline.worker_threads, 1);
        prop_assert_eq!(baseline.partitions, 1);
        prop_assert_eq!(baseline.cross_partition_frames, 0);

        for workers in [2usize, 4, 8] {
            let (parallel, metrics) = run(&facts, config(), workers);
            prop_assert_eq!(
                ordered_fixpoint_of(&parallel, "reachable"),
                want_ordered.clone(),
                "ordered fixpoint diverged at {} workers (window {}, cap {})",
                workers, window, cap
            );
            prop_assert_eq!(
                counters(&metrics),
                want_counters.clone(),
                "counters diverged at {} workers (window {}, cap {})",
                workers, window, cap
            );
            prop_assert_eq!(metrics.worker_threads, workers as u64);
            prop_assert!(metrics.partitions >= 1);
            prop_assert!(metrics.partitions <= workers as u64);
        }
    }

    /// Churn scripts force the scheduler back onto the sequential path
    /// (dynamics work never wave-parallelises), so a worker pool must be
    /// observationally invisible there too: same retractions, same
    /// rederivations, same everything.
    #[test]
    fn churned_runs_are_worker_count_invariant(
        words in prop::collection::vec(any::<u64>(), 1..16),
        knobs in any::<u64>(),
    ) {
        let mut links: Vec<(usize, usize)> = Vec::new();
        let mut down: HashMap<(usize, usize), bool> = HashMap::new();
        for w in words {
            let link = ((w % 10) as usize, ((w >> 8) % 10) as usize);
            if link.0 == link.1 || down.contains_key(&link) {
                continue;
            }
            links.push(link);
            down.insert(link, (w >> 16) & 1 == 1);
        }
        prop_assume!(!links.is_empty());
        let window = knobs % 2_000;
        let config = || {
            says_config(knobs >> 24)
                .with_cost_model(CostModel::zero_cpu())
                .with_batch_window_us(window)
                .with_dynamics()
        };

        let mut script = ChurnScript::new();
        for (i, link) in links.iter().enumerate() {
            if down[link] {
                script = script.link_down(
                    5_000_000 + i as u64 * 1_000,
                    str_val(NODES[link.0]),
                    str_val(NODES[link.1]),
                );
            }
        }

        let build = |workers: usize| {
            let program = pasn_datalog::parse_program(REACHABLE).unwrap();
            let mut engine = DistributedEngine::new(
                &program,
                config().with_workers(workers),
                &locations(),
            )
            .unwrap();
            for &(src, dst) in &links {
                engine
                    .insert_fact(
                        str_val(NODES[src]),
                        Tuple::new("link", vec![str_val(NODES[src]), str_val(NODES[dst])]),
                    )
                    .unwrap();
            }
            let metrics = engine.run_scenario(&script).unwrap();
            (engine, metrics)
        };

        let (sequential, baseline) = build(1);
        let want_link = fixpoint_of(&sequential, "link");
        let want_reach = fixpoint_of(&sequential, "reachable");
        let want_counters = counters(&baseline);

        for workers in [2usize, 4, 8] {
            let (parallel, metrics) = build(workers);
            prop_assert_eq!(fixpoint_of(&parallel, "link"), want_link.clone());
            prop_assert_eq!(
                fixpoint_of(&parallel, "reachable"),
                want_reach.clone(),
                "churned fixpoint diverged at {} workers (window {})",
                workers, window
            );
            prop_assert_eq!(
                counters(&metrics),
                want_counters.clone(),
                "churned counters diverged at {} workers (window {})",
                workers, window
            );
        }
    }
}
