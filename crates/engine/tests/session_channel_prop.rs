//! Property test: session-keyed channels are a pure crypto substitution.
//!
//! A random stream of `link` facts (random edges, random insertion times)
//! is run through the reachability program under a random batching
//! configuration twice — once with per-frame RSA signatures
//! (`SaysLevel::Rsa`) and once over session channels
//! (`SaysLevel::Session`, including a random rebind horizon) — and both
//! runs must reach the identical fixpoint: same tuples in the same
//! insertion order at every node, same derivation counts, and the exact
//! same frame stream.  Only the crypto operation mix may differ: the
//! session run performs exactly `handshakes` RSA signs (one per live
//! directed link per epoch) instead of one per frame.

use pasn_datalog::Value;
use pasn_engine::{DistributedEngine, EngineConfig, Tuple};
use pasn_net::{CostModel, SimTime};
use proptest::prelude::*;

const REACHABLE: &str = "
    r1 reachable(@S,D) :- link(@S,D).
    r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
";

const NODES: [&str; 4] = ["a", "b", "c", "d"];

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

/// Decodes one packed random word into `(src, dst, at_us)` — the offline
/// proptest shim has no tuple strategies, so each fact travels as one `u64`.
fn decode_fact(word: u64) -> (usize, usize, u64) {
    (
        (word % 4) as usize,
        ((word >> 8) % 4) as usize,
        (word >> 16) % 4_000,
    )
}

/// Runs the reachability program over the fact stream with one config and
/// returns (metrics, per-node insertion-ordered reachable sets).
fn run(
    facts: &[(usize, usize, u64)],
    config: EngineConfig,
) -> (pasn_engine::RunMetrics, Vec<Vec<Tuple>>) {
    let program = pasn_datalog::parse_program(REACHABLE).unwrap();
    let locations: Vec<Value> = NODES.iter().map(|n| str_val(n)).collect();
    let mut engine = DistributedEngine::new(
        &program,
        config.with_cost_model(CostModel::zero_cpu()),
        &locations,
    )
    .unwrap();
    for &(src, dst, at) in facts {
        if src == dst {
            continue; // self-loops add nothing
        }
        engine
            .insert_fact_at(
                str_val(NODES[src]),
                Tuple::new("link", vec![str_val(NODES[src]), str_val(NODES[dst])]),
                SimTime::from_micros(at),
            )
            .unwrap();
    }
    let metrics = engine.run_to_fixpoint().unwrap();
    let fixpoint = locations
        .iter()
        .map(|loc| {
            engine
                .query_ordered(loc, "reachable")
                .into_iter()
                .map(|(t, _)| t)
                .collect()
        })
        .collect();
    (metrics, fixpoint)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random topology × random batching knobs × {Rsa, Session}: the same
    /// fixpoint, derivations and frame stream, with RSA amortised to the
    /// handshake count.
    #[test]
    fn session_channels_match_the_rsa_level_bit_for_bit(
        words in prop::collection::vec(any::<u64>(), 1..24),
        knobs in any::<u64>(),
    ) {
        let facts: Vec<(usize, usize, u64)> = words.into_iter().map(decode_fact).collect();
        let window = knobs % 3_000; // 0 = per-tuple frames
        let max_batch = 1 + ((knobs >> 16) % 5) as usize;
        let rebind = 1 + (knobs >> 32) % 64;
        let batching = |config: EngineConfig| {
            config
                .with_batch_window_us(window)
                .with_max_batch_tuples(max_batch)
        };

        let (rsa, want) = run(&facts, batching(EngineConfig::sendlog()));
        let (session, got) = run(
            &facts,
            batching(EngineConfig::sendlog_session()).with_channel_rebind_frames(rebind),
        );

        // Identical evaluation: fixpoint (in insertion order), derivation
        // counts, stored tuples, and the exact same frame stream.
        prop_assert_eq!(got, want, "fixpoint diverged (window {}, cap {}, rebind {})",
            window, max_batch, rebind);
        prop_assert_eq!(session.derivations, rsa.derivations);
        prop_assert_eq!(session.tuples_stored, rsa.tuples_stored);
        prop_assert_eq!(session.frames, rsa.frames);
        prop_assert_eq!(session.batched_tuples, rsa.batched_tuples);

        // Only the crypto mix differs: every frame still carries one proof
        // and passes one verification, but RSA work equals the handshake
        // count (one per live directed link per epoch) instead of the frame
        // count, and frames ride HMACs.
        prop_assert_eq!(session.signatures, session.frames);
        prop_assert_eq!(session.verifications, session.frames);
        prop_assert_eq!(session.verification_failures, 0);
        prop_assert_eq!(session.rsa_sign_ops, session.handshakes);
        prop_assert_eq!(session.rsa_verify_ops, session.handshakes);
        prop_assert_eq!(rsa.rsa_sign_ops, rsa.frames);
        prop_assert_eq!(rsa.handshakes, 0);
        prop_assert!(session.handshakes <= session.frames.max(1));
        if session.frames > 0 {
            prop_assert!(session.handshakes > 0);
            prop_assert!(session.hmac_ops >= 2 * session.frames);
            // Handshake messages ride the same wire, on top of the frames.
            prop_assert_eq!(session.messages, session.frames + session.handshakes);
        }
    }
}
