//! Property test: any batching of a delta stream converges to the
//! tuple-at-a-time fixpoint.
//!
//! A random stream of `link` facts (random edges, random insertion times)
//! is run through the reachability program twice — once per-tuple
//! (`batch_window = 0`, the seed semantics) and once with a random batch
//! window and frame cap — and both runs must reach the identical fixpoint:
//! same tuples at every node, same totals, one signature per frame.

use pasn_datalog::Value;
use pasn_engine::{DistributedEngine, EngineConfig, Tuple};
use pasn_net::{CostModel, SimTime};
use proptest::prelude::*;

const REACHABLE: &str = "
    r1 reachable(@S,D) :- link(@S,D).
    r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
";

const NODES: [&str; 4] = ["a", "b", "c", "d"];

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

/// Decodes one packed random word into `(src, dst, at_us)` — the offline
/// proptest shim has no tuple strategies, so each fact travels as one `u64`.
fn decode_fact(word: u64) -> (usize, usize, u64) {
    (
        (word % 4) as usize,
        ((word >> 8) % 4) as usize,
        (word >> 16) % 4_000,
    )
}

/// Runs the reachability program over the fact stream with one config and
/// returns (metrics, per-node sorted reachable sets).
fn run(
    facts: &[(usize, usize, u64)],
    config: EngineConfig,
) -> (pasn_engine::RunMetrics, Vec<Vec<Tuple>>) {
    let program = pasn_datalog::parse_program(REACHABLE).unwrap();
    let locations: Vec<Value> = NODES.iter().map(|n| str_val(n)).collect();
    let mut engine = DistributedEngine::new(
        &program,
        config.with_cost_model(CostModel::zero_cpu()),
        &locations,
    )
    .unwrap();
    for &(src, dst, at) in facts {
        if src == dst {
            continue; // self-loops add nothing
        }
        engine
            .insert_fact_at(
                str_val(NODES[src]),
                Tuple::new("link", vec![str_val(NODES[src]), str_val(NODES[dst])]),
                SimTime::from_micros(at),
            )
            .unwrap();
    }
    let metrics = engine.run_to_fixpoint().unwrap();
    let fixpoint = locations
        .iter()
        .map(|loc| {
            let mut rows: Vec<Tuple> = engine
                .query_ordered(loc, "reachable")
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            rows.sort_by_key(|t| t.to_string());
            rows
        })
        .collect();
    (metrics, fixpoint)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batch splits of the delta stream — any window, any frame cap —
    /// converge to the per-tuple fixpoint.
    #[test]
    fn random_batch_splits_converge_to_the_per_tuple_fixpoint(
        words in prop::collection::vec(any::<u64>(), 1..24),
        knobs in any::<u64>(),
    ) {
        let facts: Vec<(usize, usize, u64)> = words.into_iter().map(decode_fact).collect();
        let window = 1 + knobs % 3_000;
        let max_batch = 1 + ((knobs >> 16) % 5) as usize;

        let (baseline, want) = run(&facts, EngineConfig::sendlog());
        let (batched, got) = run(
            &facts,
            EngineConfig::sendlog()
                .with_batch_window_us(window)
                .with_max_batch_tuples(max_batch),
        );

        prop_assert_eq!(got, want, "fixpoint diverged (window {}, cap {})", window, max_batch);
        prop_assert_eq!(batched.tuples_stored, baseline.tuples_stored);
        // Seq-capped visibility makes every (rule, partner set) fire exactly
        // once regardless of how the stream is split into batches.
        prop_assert_eq!(batched.derivations, baseline.derivations);
        // Frames are signed and verified once each, and batching never
        // ships more tuples than per-tuple evaluation did.
        prop_assert_eq!(batched.signatures, batched.frames);
        prop_assert_eq!(batched.verifications, batched.frames);
        prop_assert!(batched.frames <= batched.batched_tuples);
        prop_assert!(batched.batched_tuples <= baseline.messages);
        prop_assert_eq!(batched.verification_failures, 0);
    }
}
