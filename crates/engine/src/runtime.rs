//! The distributed SeNDlog evaluator.
//!
//! [`DistributedEngine`] runs a compiled NDlog / SeNDlog program over a set
//! of simulated nodes.  Every node owns a soft-state store and evaluates the
//! per-rule delta plans produced by `pasn-datalog`; tuples whose destination
//! differs from the deriving node are serialised, optionally signed with the
//! deriving principal's `says` mechanism, charged to the bandwidth meter and
//! delivered through the discrete-event transport of `pasn-net`.  The engine
//! reaches the *distributed fixpoint* (the paper's completion criterion) when
//! no work items remain.
//!
//! Provenance hooks fire on every rule evaluation: semiring tags are combined
//! per the configured [`ProvenanceKind`], and derivation graphs / pointer
//! records / offline archive entries are maintained per the configured
//! [`GraphMode`] and maintenance policy.

use crate::config::{EngineConfig, GraphMode};
use crate::dynamics::{AggFiring, BaseRow, ChurnEvent, ChurnScript, FiringRecord, HeadKey, Ledger};
use crate::eval::{eval_expr, eval_filter, Bindings};
use crate::metrics::RunMetrics;
use crate::store::{InsertOutcome, NodeStore, TupleMeta};
use crate::tuple::{self, Tuple};
use pasn_crypto::channel::{ChannelHandshake, ReceiverChannel, SenderChannel};
use pasn_crypto::says::{tombstone_payloads, Authenticator, SaysAssertion, SaysLevel, SaysProof};
use pasn_crypto::{KeyAuthority, Principal, PrincipalId};
use pasn_datalog::plan::{CompiledProgram, DeltaPlan, PlanStep, RulePlan, SlotTerm};
use pasn_datalog::{compile_program, AggFunc, PlanError, PredId, Program, Symbols, Term, Value};
use pasn_net::wire::{Frame, MESSAGE_HEADER_BYTES};
use pasn_net::{FaultEvent, Message, NetworkSim, NodeId, SimTime};
use pasn_provenance::{
    AntecedentRef, ArchiveStore, ArchivedEntry, BaseTupleId, DerivationGraph, DistributedStore,
    LocalStore, MaintenanceMode, PointerDerivation, ProvTag, ProvenanceKind, VarTable,
};
use pasn_trace::{TraceEvent, TraceEventKind, TraceRecorder};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Errors raised while constructing or driving the engine.
#[derive(Debug)]
pub enum EngineError {
    /// The program failed compilation (validation, localization or planning).
    Compile(PlanError),
    /// Key provisioning failed.
    Crypto(pasn_crypto::rsa::RsaError),
    /// A tuple referenced a location that is not part of the deployment.
    UnknownLocation(Value),
    /// A tuple was supplied with a different arity than the compiled program
    /// declares for its predicate.
    ArityMismatch {
        /// The predicate being inserted or joined.
        predicate: String,
        /// Arity declared by the program.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A rule evaluation error (unbound variable, type mismatch, ...).
    Eval(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Compile(e) => write!(f, "compilation failed: {e}"),
            EngineError::Crypto(e) => write!(f, "key provisioning failed: {e}"),
            EngineError::UnknownLocation(v) => write!(f, "unknown location {v}"),
            EngineError::ArityMismatch {
                predicate,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch: predicate `{predicate}` declares {expected} arguments, tuple has {got}"
            ),
            EngineError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Compile(e)
    }
}

impl From<pasn_crypto::rsa::RsaError> for EngineError {
    fn from(e: pasn_crypto::rsa::RsaError) -> Self {
        EngineError::Crypto(e)
    }
}

/// A deferred provenance record, used in reactive maintenance mode.
#[derive(Clone, Debug)]
struct DeferredDerivation {
    head_key: String,
    head_location: String,
    rule: String,
    rule_location: String,
    antecedents: Vec<(String, Value)>,
    asserted_by: Option<PrincipalId>,
    at: SimTime,
}

/// Per-node runtime state.
struct NodeRuntime {
    location: Value,
    node_id: NodeId,
    principal: PrincipalId,
    store: NodeStore,
    /// Aggregate state: (rule label, group key) → best value so far.
    agg_state: HashMap<(String, Vec<Value>), i64>,
    /// `a_MIN`/`a_MAX` candidate multisets (dynamics only): (rule label,
    /// group key) → candidate value → one provenance tag per alive
    /// candidate firing.  The deletion ledger's re-election pool: when the
    /// emitted best dies, the next-best surviving candidate takes over.
    agg_candidates: HashMap<(String, Vec<Value>), BTreeMap<i64, Vec<ProvTag>>>,
    /// The currently emitted best per group (dynamics only): exactly what
    /// the head's node stores, so deletion withdraws precisely that row.
    agg_emitted: HashMap<(String, Vec<Value>), (i64, ProvTag)>,
    local_prov: LocalStore,
    dist_prov: DistributedStore,
    archive: ArchiveStore,
    deferred: Vec<DeferredDerivation>,
    authenticator: Option<Authenticator>,
    /// Session-channel cache, sender side: one open channel per destination
    /// principal this node ships to (`SaysLevel::Session` only).
    send_channels: HashMap<PrincipalId, SenderChannel>,
    /// Session-channel cache, receiver side: one established channel per
    /// source principal whose handshake this node accepted.
    recv_channels: HashMap<PrincipalId, ReceiverChannel>,
    /// Sender-side epoch floor per peer: a channel evicted by churn (link
    /// down, node failure) forces the next binding of the link to a fresh
    /// epoch instead of restarting at 0 under a reused key stream.
    send_epoch_floor: HashMap<PrincipalId, u32>,
    /// Receiver-side epoch floor per peer: a replayed pre-eviction
    /// handshake (validly signed forever) must not reinstall a retired
    /// channel and resurrect its captured frames.
    recv_epoch_floor: HashMap<PrincipalId, u32>,
    /// Deletion ledger: supports per stored row and the firing log.
    /// Populated only while dynamics are enabled.
    ledger: Ledger,
    /// This node's simulated CPU lane: busy until this instant.  Owned by
    /// the node (not a global schedule) so a partition can advance its
    /// nodes' clocks without touching any other partition's state.
    busy_until: SimTime,
    /// Total simulated CPU this node has executed — the modeled work the
    /// host must schedule somewhere.  Summed per partition per wave to
    /// compute the modeled parallel critical path.
    cpu_spent: SimTime,
    /// Latest delivery time per outbound link, keyed by destination node id
    /// (`SaysLevel::Session` and dynamics runs): a session channel's
    /// monotonic frame counter requires in-order delivery per link — as the
    /// real session transport it stands in for would provide — and
    /// retraction streams likewise assume FIFO links (a tombstone must
    /// never overtake the assertion it withdraws).  Keyed by destination
    /// only because this node is always the source, which is what lets a
    /// partition clamp its own outbound links without global state.
    link_horizon: HashMap<u32, SimTime>,
}

impl NodeRuntime {
    /// Runs `work` microseconds of CPU on this node's lane starting no
    /// earlier than `now`; returns (and remembers) when the lane is free
    /// again.
    fn run_cpu(&mut self, now: SimTime, work: SimTime) -> SimTime {
        let done = self.busy_until.max(now) + work;
        self.busy_until = done;
        self.cpu_spent += work;
        done
    }

    /// Clamps `deliver_at` to this node's previous delivery on the link to
    /// `dst` and advances the horizon.  Ties at one timestamp resolve by
    /// work-queue seq, which is send order.
    fn link_deliver(&mut self, dst: NodeId, deliver_at: SimTime) -> SimTime {
        let horizon = self.link_horizon.entry(dst.0).or_insert(SimTime::ZERO);
        let at = deliver_at.max(*horizon);
        *horizon = at;
        at
    }

    /// The link's current delivery horizon towards `dst` (ZERO when the
    /// link never delivered).
    fn link_horizon_to(&self, dst: NodeId) -> SimTime {
        self.link_horizon
            .get(&dst.0)
            .copied()
            .unwrap_or(SimTime::ZERO)
    }
}

/// One tuple contributing to an in-flight join branch.  The row is shared
/// with the store (`Arc` clone, no value copies); its provenance key is
/// rendered lazily — only if the branch survives to a head emission that
/// actually records provenance graphs.
#[derive(Clone)]
struct Contrib {
    pred: PredId,
    values: Arc<[Value]>,
    location: Option<usize>,
    tag: ProvTag,
    origin: Value,
    /// Store insertion seq of the contributing row — the identity the
    /// deletion ledger records firings under.
    seq: u64,
}

impl Contrib {
    /// Renders the contribution's provenance key (display form).
    fn render_key(&self, symbols: &Symbols) -> String {
        let name = symbols.name(self.pred).unwrap_or("?");
        tuple::render_located_parts(name, &self.values, self.location)
    }
}

/// One in-flight join branch: the bindings accumulated so far, the
/// contributing tuples, and the insertion seq of the branch's delta row —
/// the visibility cap that keeps batched joins tuple-at-a-time-exact (a
/// delta never joins rows inserted after it).
type Branch = (Bindings, Vec<Contrib>, u64);

/// A candidate row handed out by the store during a join: the row's
/// insertion seq plus the shared values and tuple metadata, borrowed from
/// the store.
type CandidateRow<'a> = (u64, &'a Arc<[Value]>, &'a TupleMeta);

/// One tuple riding in a delta batch or a pending shipment frame.  The row
/// is an `Arc`-shared slice; frame-level facts (destination, predicate,
/// signature) live on the containing [`DeltaBatch`] / [`ShipFrame`].
struct BatchRow {
    values: Arc<[Value]>,
    tag: ProvTag,
    origin: Value,
    asserted_by: Option<PrincipalId>,
    shipped_graph: Option<DerivationGraph>,
    is_base: bool,
    location_index: Option<usize>,
}

/// Whether a batch/frame asserts its rows or withdraws them.  Retraction
/// batches are processed through the deletion ledger instead of the
/// insert-and-fire path, and retraction frames are signed over
/// polarity-marked payloads so a data frame can never be replayed as a
/// deletion (see `pasn_crypto::says::tombstone_payloads`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Polarity {
    Assert,
    Retract,
}

/// A unit of work at a destination node: a batch of delta tuples of one
/// predicate (base insertions, local derivations, or a delivered shipment
/// frame).  With `batch_window = 0` every batch holds exactly one tuple,
/// reproducing per-tuple evaluation bit for bit.
struct DeltaBatch {
    destination: Value,
    pred: PredId,
    rows: Vec<BatchRow>,
    /// The frame signature covering every row, produced once per shipped
    /// frame over the canonical concatenated payload (remote frames of
    /// authenticated runs only).
    assertion: Option<SaysAssertion>,
    is_remote: bool,
    polarity: Polarity,
}

/// A pending shipment frame accumulating head tuples at the sender until
/// its flush time: one `(source, destination, predicate, due, polarity)`
/// frame is deduplicated (assertions only), signed once and charged one
/// message header when sealed.
struct ShipFrame {
    src: Value,
    dst: Value,
    pred: PredId,
    rows: Vec<BatchRow>,
    polarity: Polarity,
}

/// What the simulated-time work queue holds.
enum QueuedWork {
    /// Deliver a delta batch to its destination node.
    Deliver(DeltaBatch),
    /// Seal a pending shipment frame at the sender: dedup, sign once, ship.
    Ship(ShipFrame),
    /// Deliver a session-channel key-establishment handshake to its
    /// receiver, who verifies the RSA-signed transcript and installs the
    /// channel (`SaysLevel::Session` only).
    Handshake {
        destination: Value,
        handshake: ChannelHandshake,
    },
    /// A coalesced run of same-instant handshake deliveries to one
    /// receiver, processed as a single scheduling event charging one
    /// contiguous CPU window of `k × rsa_verify_us` on the receiver's lane.
    /// Never pushed onto the queue: built at pop time from contiguous
    /// [`QueuedWork::Handshake`] items by both the sequential loop and
    /// [`DistributedEngine::pop_wave`], with the identical grouping, so
    /// every counter — including `handshake_batches` — is worker-count
    /// invariant.
    HandshakeBatch {
        destination: Value,
        handshakes: Vec<ChannelHandshake>,
    },
    /// Apply one scripted network-dynamics event (dynamics runs only).
    Churn(ChurnEvent),
    /// Graceful session-channel teardown for a churned link: executes once
    /// the link's in-flight frames have drained (re-scheduling itself while
    /// the delivery horizon keeps advancing), and only if the channel still
    /// carries the epoch captured at teardown time — a link that already
    /// rebound keeps its fresh channel.
    Evict {
        src: Value,
        dst: Value,
        send_epoch: Option<u32>,
        recv_epoch: Option<u32>,
    },
    /// Sweep a node's store for rows whose TTL has passed and cascade the
    /// deletions through the ledger (dynamics runs only; scheduled at each
    /// distinct expiry instant).
    Expire { node: Value },
    /// One sequenced frame reaching the far end of a faulty link
    /// (fault-plan runs only): resolves to the buffered [`InFlightFrame`]
    /// payload, deduplicates replays, and releases the link's in-order
    /// prefix through normal evaluation.
    FrameArrival {
        /// Sending node id.
        src: u32,
        /// Receiving node id.
        dst: u32,
        /// Per-link frame sequence number.
        frame_seq: u64,
    },
    /// Retransmission timer for one unacknowledged frame on a faulty link:
    /// re-rolls the fault plan with an incremented attempt and exponential
    /// backoff until the frame lands or the retry budget is exhausted.
    Retransmit {
        /// Sending node id.
        src: u32,
        /// Receiving node id.
        dst: u32,
        /// Per-link frame sequence number.
        frame_seq: u64,
    },
    /// A delayed, coalesced cumulative acknowledgement travelling `dst →
    /// src`: prunes every in-flight frame below the receiver's in-order
    /// cursor and charges the ack's wire bytes.
    AckFrame {
        /// The acked link's sending node id (the ack's receiver).
        src: u32,
        /// The acked link's receiving node id (the ack's sender).
        dst: u32,
    },
}

/// One frame in flight on a faulty link: the queued payload (taken when the
/// frame is first delivered, so `None` marks delivered-but-unacked) and how
/// many retransmission attempts it has consumed.
struct InFlightFrame {
    work: Option<QueuedWork>,
    attempt: u8,
}

/// Identity of an open (still appendable) batch *within one flush
/// boundary*: local delta batches are keyed by `(node, predicate,
/// polarity)`, shipment frames additionally by their source.  The flush
/// boundary itself is the bucket key of
/// [`DistributedEngine::open_batches`], so sealed history never lingers —
/// a whole boundary's key map is dropped (and pooled) the moment the clock
/// reaches it.
#[derive(Clone, PartialEq, Eq, Hash)]
enum BatchKey {
    Local {
        destination: Value,
        pred: PredId,
        polarity: Polarity,
    },
    Ship {
        src: Value,
        dst: Value,
        pred: PredId,
        polarity: Polarity,
    },
}

/// An engine-global side effect recorded by a [`PartitionCtx`] while it
/// evaluates one work item.  Partitions never touch the shared work queue,
/// open-batch buffers or traffic meter directly: they record effects in
/// emission order and the engine replays them — immediately on the
/// sequential path, or sorted by the originating event's queue seq when a
/// wave's partitions ran concurrently.  Both replay orders are identical
/// by construction, which is what makes the pool bit-compatible with the
/// sequential schedule.
enum Effect {
    /// Enqueue a locally derived (or base) delta at its home node.
    Local {
        at: SimTime,
        destination: Value,
        pred: PredId,
        row: BatchRow,
        polarity: Polarity,
    },
    /// Append a head tuple to the open shipment frame of a remote link.
    Ship {
        at: SimTime,
        src: Value,
        dst: Value,
        pred: PredId,
        row: BatchRow,
        polarity: Polarity,
    },
    /// Push already-finalized work (a sealed delivery frame, a scheduled
    /// handshake) onto the global queue at `at`.
    Queue { at: SimTime, work: QueuedWork },
    /// Replay a transport send against the engine's traffic meter.  The
    /// delivery time was already computed (and link-clamped) by the owning
    /// partition; only the byte/message accounting is global.
    NetSend {
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        wire_bytes: usize,
    },
    /// Schedule a TTL expiry sweep (deduplicated engine-globally).
    Expiry { node: Value, at: SimTime },
    /// Route one delivered tombstone row into the deletion ledger.  Only
    /// emitted on dynamics runs, which never enter a parallel wave, so the
    /// engine applies it immediately after the event.
    Retract {
        loc: Value,
        pred: PredId,
        values: Arc<[Value]>,
        tag: ProvTag,
        now: SimTime,
    },
}

/// The read-only evaluation environment shared by every partition of a
/// wave (and by the sequential path, which uses the same context type).
struct EvalShared<'a> {
    config: &'a EngineConfig,
    compiled: &'a CompiledProgram,
    symbols: &'a Symbols,
    directory: &'a HashMap<Value, (NodeId, PrincipalId)>,
    dynamics: bool,
    /// Whether the flight recorder is on; contexts record into their
    /// per-event trace buffer only when set, so disabled tracing costs one
    /// branch per hook and never allocates.
    tracing: bool,
}

impl<'a> Clone for EvalShared<'a> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a> Copy for EvalShared<'a> {}

/// Mutable evaluation state for one partition: the node runtimes it owns
/// exclusively, a metrics shard, and the effect log.  On the sequential
/// path the engine lends its full node map, real variable table and real
/// metrics, making the context a zero-cost reorganisation of the old
/// monolithic evaluator; on the parallel path each partition gets a fresh
/// shard and a scratch variable table (never consulted: parallel waves
/// only run under provenance-free configurations).
struct PartitionCtx<'a> {
    shared: EvalShared<'a>,
    nodes: &'a mut HashMap<Value, NodeRuntime>,
    var_table: &'a mut VarTable,
    metrics: &'a mut RunMetrics,
    completion: &'a mut SimTime,
    base_counter: &'a mut u64,
    effects: &'a mut Vec<Effect>,
    /// Trace events recorded while evaluating this event; the engine
    /// flushes them to the recorder in effect-replay order, so the trace is
    /// identical however the wave was partitioned.
    trace: &'a mut Vec<TraceEvent>,
}

/// What one partition hands back after draining its slice of a wave.
struct PartitionOutcome {
    partition: u32,
    nodes: HashMap<Value, NodeRuntime>,
    /// Per-event effect and trace logs, tagged with the event's queue seq.
    events: Vec<(u64, Vec<Effect>, Vec<TraceEvent>)>,
    metrics: RunMetrics,
    completion: SimTime,
    base_counter: u64,
    /// Simulated CPU executed by this partition's nodes during the wave
    /// (the wave charges only the maximum across partitions to the modeled
    /// wall, banking the rest as parallel savings).
    busy: SimTime,
    /// First evaluation error, tagged with its event seq; the merge
    /// surfaces the globally-lowest one.
    error: Option<(u64, EngineError)>,
}

type PartitionBundle = (
    u32,
    Vec<(SimTime, u64, QueuedWork)>,
    HashMap<Value, NodeRuntime>,
);

/// Drains one partition's slice of a wave on the calling thread: every
/// event runs through a [`PartitionCtx`] over the partition's own nodes,
/// metrics shard and effect log.  Stops at the first error (matching the
/// sequential loop, which would have aborted there too).
fn run_partition(
    shared: EvalShared<'_>,
    partition: u32,
    events: Vec<(SimTime, u64, QueuedWork)>,
    mut nodes: HashMap<Value, NodeRuntime>,
) -> PartitionOutcome {
    let mut metrics = RunMetrics::default();
    let mut completion = SimTime::ZERO;
    let mut base_counter = 0u64;
    // Scratch: parallel waves only run under provenance-free configs, so
    // the table is never consulted — the real table stays with the engine.
    let mut var_table = VarTable::new();
    let mut out = Vec::with_capacity(events.len());
    let cpu_before: SimTime = nodes
        .values()
        .map(|n| n.cpu_spent)
        .fold(SimTime::ZERO, |a, b| a + b);
    let mut error = None;
    for (at, seq, work) in events {
        let mut effects = Vec::new();
        let mut trace = Vec::new();
        let result = {
            let mut ctx = PartitionCtx {
                shared,
                nodes: &mut nodes,
                var_table: &mut var_table,
                metrics: &mut metrics,
                completion: &mut completion,
                base_counter: &mut base_counter,
                effects: &mut effects,
                trace: &mut trace,
            };
            ctx.run(at, work)
        };
        out.push((seq, effects, trace));
        if let Err(e) = result {
            error = Some((seq, e));
            break;
        }
    }
    let cpu_after: SimTime = nodes
        .values()
        .map(|n| n.cpu_spent)
        .fold(SimTime::ZERO, |a, b| a + b);
    PartitionOutcome {
        partition,
        nodes,
        events: out,
        metrics,
        completion,
        base_counter,
        busy: SimTime::from_micros(cpu_after.as_micros() - cpu_before.as_micros()),
        error,
    }
}

/// One freshly inserted row of a processed batch, ready to drive delta
/// evaluation.  `seq` is the row's store insertion seq: its branches only
/// join rows with a seq no greater than it, so batch siblings inserted
/// later stay invisible exactly as under per-tuple processing.
struct NewDelta {
    seq: u64,
    values: Arc<[Value]>,
    tag: ProvTag,
    origin: Value,
}

/// The distributed evaluator.
pub struct DistributedEngine {
    config: EngineConfig,
    compiled: Arc<CompiledProgram>,
    /// Runtime predicate interner: seeded from the compiled program's table
    /// (so plan-time [`PredId`]s stay valid) and grown for predicates that
    /// only appear in externally inserted facts.  Node stores mirror it.
    symbols: Symbols,
    nodes: HashMap<Value, NodeRuntime>,
    locations: Vec<Value>,
    /// Immutable deployment directory: location value → (node id,
    /// principal).  Shared read-only with every partition so cross-node
    /// lookups (destination validity, a receiver's principal for channel
    /// setup) never touch another partition's mutable runtime.
    directory: HashMap<Value, (NodeId, PrincipalId)>,
    var_table: VarTable,
    net: NetworkSim<u64>,
    /// Work ordered by `(time, polarity rank, seq)`: at one instant,
    /// retraction batches/frames run after every assertion.  Together with
    /// per-link in-order delivery this makes "a tombstone never precedes
    /// the assertion it withdraws" a hard invariant, so a tombstone whose
    /// row is absent always means the row was force-killed already (expiry,
    /// node failure, sweep) and is safely dropped.
    queue: BinaryHeap<Reverse<(SimTime, u8, u64)>>,
    items: HashMap<u64, QueuedWork>,
    /// Open (still appendable) batches, bucketed by flush boundary:
    /// `due µs → batch key → queue seq`.  Only populated while
    /// `batch_window_us > 0`.  `next_flush` is strictly in the future, so
    /// no tuple can ever append to a boundary the clock has reached —
    /// which makes the whole bucket droppable the moment work at `due`
    /// pops, keeping steady-state memory O(open boundaries × open keys)
    /// instead of O(batch history).
    open_batches: BTreeMap<u64, HashMap<BatchKey, u64>>,
    /// Key maps recycled from flushed boundaries, so sustained batching
    /// reuses a few allocations instead of growing fresh tables per window.
    batch_map_pool: Vec<HashMap<BatchKey, u64>>,
    next_seq: u64,
    /// Simulated CPU banked by wave parallelism: for every wave, the sum of
    /// all partitions' executed CPU minus the slowest partition's — work the
    /// pool absorbed off the critical path.  Subtracted from the nodes'
    /// total executed CPU to report [`RunMetrics::parallel_wall`].
    cpu_saved: SimTime,
    metrics: RunMetrics,
    completion: SimTime,
    base_counter: u64,
    /// True once dynamics are armed (via `EngineConfig::with_dynamics` or
    /// `run_scenario` on a fresh engine): the deletion ledger records every
    /// support and firing, TTL expiry is scheduled as simulator work, and
    /// links deliver in order.
    dynamics: bool,
    /// True once evaluation has processed any work — dynamics can no longer
    /// be armed retroactively (the ledger would be missing history).
    started: bool,
    /// Distinct `(node, instant)` expiry sweeps already scheduled.
    scheduled_expiries: HashSet<(Value, u64)>,
    /// Base tuples withdrawn by `ChurnEvent::NodeFail`, kept for rejoin.
    failed_nodes: HashMap<Value, Vec<BaseRow>>,
    /// Set when any row was removed; cleared by the well-founded sweep that
    /// runs when the queue drains (recursive self-support cleanup).
    needs_sweep: bool,
    /// Reliability layer for fault-plan runs, all keyed by directed link
    /// `(src node id, dst node id)`.  Next frame sequence number to assign
    /// on each link; frames are released to evaluation strictly in this
    /// order at the receiver.
    flink_next_seq: HashMap<(u32, u32), u64>,
    /// Frames sent but not yet cumulatively acked, per link.
    flink_inflight: HashMap<(u32, u32), BTreeMap<u64, InFlightFrame>>,
    /// The receiver's next in-order sequence number, per link.  Everything
    /// below it has been released to evaluation exactly once.
    flink_next_expected: HashMap<(u32, u32), u64>,
    /// Out-of-order frames parked at the receiver until the gap fills.
    flink_holdback: HashMap<(u32, u32), BTreeMap<u64, QueuedWork>>,
    /// Links with a cumulative ack already scheduled: acks are delayed and
    /// coalesced, one covers every delivery up to its fire instant.
    flink_ack_pending: HashSet<(u32, u32)>,
    /// The flight recorder, present only when `EngineConfig::trace` is set.
    /// Every hook is behind an `is_some()` check, so disabled tracing costs
    /// one branch and never allocates or perturbs a counter.
    recorder: Option<TraceRecorder>,
    /// Trace-only per-link ship ordinals for reliable (no fault plan) runs,
    /// where the transport assigns no sequence numbers.  Only populated
    /// while tracing.
    trace_link_seq: HashMap<(u32, u32), u64>,
}

impl DistributedEngine {
    /// Compiles `program` and deploys it over `locations` (one node per
    /// location value).  Facts embedded in the program are scheduled for
    /// insertion at time zero.
    pub fn new(
        program: &Program,
        config: EngineConfig,
        locations: &[Value],
    ) -> Result<Self, EngineError> {
        let compiled = compile_program(program)?;
        let cost = config.cost_model;

        // Key material: one principal per location, provisioned up front
        // (outside the measured run, as in the paper's setup).
        let mut authenticators: HashMap<Value, Authenticator> = HashMap::new();
        if let Some(level) = config.says_level {
            let principals: Vec<Principal> = locations
                .iter()
                .enumerate()
                .map(|(i, loc)| {
                    let level = config
                        .security_levels
                        .get(&(i as u32))
                        .copied()
                        .unwrap_or(1);
                    Principal::new(i as u32, loc.to_string()).with_security_level(level)
                })
                .collect();
            let authority = KeyAuthority::provision_with_modulus(
                &principals,
                config.key_seed,
                config.rsa_modulus_bits,
            )?;
            for (i, loc) in locations.iter().enumerate() {
                let keyring = authority
                    .keyring_for(PrincipalId(i as u32))
                    .expect("principal was provisioned");
                authenticators.insert(loc.clone(), Authenticator::new(keyring, level));
            }
        }

        // Secondary indexes: one per (predicate, key columns) spec inferred
        // by the planner, installed on every node's store up front so they
        // are maintained incrementally from the first insert on.  With
        // indexing disabled nothing is registered and every probe falls
        // back to the ordered scan path.
        let index_specs = if config.use_secondary_indexes {
            compiled.index_specs()
        } else {
            Vec::new()
        };

        let symbols = compiled.symbols.clone();
        let mut nodes = HashMap::new();
        for (i, loc) in locations.iter().enumerate() {
            let mut store = NodeStore::new();
            // Mirror the compiled interner so plan-time PredIds address the
            // store directly, then register the planner's index specs by id.
            store.sync_symbols(&symbols);
            for spec in &index_specs {
                store.register_index_id(spec.pred, &spec.key_columns);
            }
            nodes.insert(
                loc.clone(),
                NodeRuntime {
                    location: loc.clone(),
                    node_id: NodeId(i as u32),
                    principal: PrincipalId(i as u32),
                    store,
                    agg_state: HashMap::new(),
                    agg_candidates: HashMap::new(),
                    agg_emitted: HashMap::new(),
                    local_prov: LocalStore::new(),
                    dist_prov: DistributedStore::new(loc.to_string()),
                    archive: ArchiveStore::new(),
                    deferred: Vec::new(),
                    authenticator: authenticators.get(loc).cloned(),
                    send_channels: HashMap::new(),
                    recv_channels: HashMap::new(),
                    send_epoch_floor: HashMap::new(),
                    recv_epoch_floor: HashMap::new(),
                    ledger: Ledger::default(),
                    busy_until: SimTime::ZERO,
                    cpu_spent: SimTime::ZERO,
                    link_horizon: HashMap::new(),
                },
            );
        }

        let directory: HashMap<Value, (NodeId, PrincipalId)> = nodes
            .values()
            .map(|n| (n.location.clone(), (n.node_id, n.principal)))
            .collect();

        let dynamics = config.dynamics;
        let recorder = config
            .trace
            .clone()
            .map(|t| TraceRecorder::new(t, locations.iter().map(|l| l.to_string()).collect()));
        let mut engine = DistributedEngine {
            config,
            compiled: Arc::new(compiled),
            symbols,
            nodes,
            locations: locations.to_vec(),
            directory,
            var_table: VarTable::new(),
            net: NetworkSim::new(cost),
            queue: BinaryHeap::new(),
            items: HashMap::new(),
            open_batches: BTreeMap::new(),
            batch_map_pool: Vec::new(),
            next_seq: 0,
            cpu_saved: SimTime::ZERO,
            metrics: RunMetrics::default(),
            completion: SimTime::ZERO,
            base_counter: 0,
            dynamics,
            started: false,
            scheduled_expiries: HashSet::new(),
            failed_nodes: HashMap::new(),
            needs_sweep: false,
            flink_next_seq: HashMap::new(),
            flink_inflight: HashMap::new(),
            flink_next_expected: HashMap::new(),
            flink_holdback: HashMap::new(),
            flink_ack_pending: HashSet::new(),
            recorder,
            trace_link_seq: HashMap::new(),
        };

        // Program facts: inserted at their home node at time zero.
        let facts: Vec<(Value, Tuple, Option<usize>)> = engine
            .compiled
            .program
            .facts
            .iter()
            .map(|fact| {
                let values: Vec<Value> = fact
                    .atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Constant(c) => c.clone(),
                        _ => unreachable!("facts are ground"),
                    })
                    .collect();
                let loc_idx = fact.atom.location.unwrap_or(0);
                let loc = values.get(loc_idx).cloned().unwrap_or(Value::Int(0));
                (
                    loc,
                    Tuple::new(fact.atom.predicate.clone(), values),
                    Some(loc_idx),
                )
            })
            .collect();
        for (loc, tuple, loc_idx) in facts {
            engine.insert_fact_located(loc, tuple, loc_idx, SimTime::ZERO)?;
        }

        // A fault plan's scheduled crash events become churn work up front.
        // The env-seed override is re-applied here (idempotent), so plans
        // set directly on the config — not via `with_fault_plan` — honor
        // `PASN_FAULT_SEED` too; and fault runs always arm dynamics, since
        // reconciling dead frames needs the deletion ledger.
        if let Some(plan) = engine.config.fault_plan.take() {
            let plan = plan.with_env_seed();
            engine.dynamics = true;
            engine.config.dynamics = true;
            for &(at_us, event) in &plan.events {
                let churn = match event {
                    FaultEvent::LinkCut { src, dst } => {
                        let (Some(s), Some(d)) =
                            (locations.get(src as usize), locations.get(dst as usize))
                        else {
                            continue;
                        };
                        ChurnEvent::LinkCut {
                            src: s.clone(),
                            dst: d.clone(),
                        }
                    }
                    FaultEvent::NodeCrash { node } => {
                        let Some(n) = locations.get(node as usize) else {
                            continue;
                        };
                        ChurnEvent::NodeCrash { node: n.clone() }
                    }
                };
                engine.push_work(SimTime::from_micros(at_us), QueuedWork::Churn(churn));
            }
            engine.config.fault_plan = Some(plan);
        }
        Ok(engine)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The compiled (localized) program being executed.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The shared provenance variable table (for rendering condensed tags).
    pub fn var_table(&self) -> &VarTable {
        &self.var_table
    }

    /// Locations participating in the deployment.
    pub fn locations(&self) -> &[Value] {
        &self.locations
    }

    /// Security principal of a location.
    pub fn principal_of(&self, location: &Value) -> Option<PrincipalId> {
        self.nodes.get(location).map(|n| n.principal)
    }

    /// Inserts an externally supplied base fact (e.g. a `link` tuple from the
    /// topology) at `location`, scheduled at time zero.
    pub fn insert_fact(&mut self, location: Value, tuple: Tuple) -> Result<(), EngineError> {
        self.insert_fact_at(location, tuple, SimTime::ZERO)
    }

    /// Inserts an externally supplied base fact at a given simulated time
    /// (used by the streaming / diagnostics workloads).
    pub fn insert_fact_at(
        &mut self,
        location: Value,
        tuple: Tuple,
        at: SimTime,
    ) -> Result<(), EngineError> {
        let loc_idx = tuple.values.iter().position(|v| *v == location);
        self.insert_fact_located(location, tuple, loc_idx, at)
    }

    fn insert_fact_located(
        &mut self,
        location: Value,
        tuple: Tuple,
        location_index: Option<usize>,
        at: SimTime,
    ) -> Result<(), EngineError> {
        if !self.nodes.contains_key(&location) {
            return Err(EngineError::UnknownLocation(location));
        }
        // Predicates the program knows about must arrive with the declared
        // arity; a mismatch would otherwise silently fail to join anywhere.
        // (Program predicates resolve to ids below the compiled table's
        // length; ids interned here for unknown predicates fall outside it
        // and are unconstrained, as before.)
        let pred = self.symbols.intern(&tuple.predicate);
        if let Some(expected) = self.compiled.arity_of_pred(pred) {
            if expected != tuple.arity() {
                return Err(EngineError::ArityMismatch {
                    predicate: tuple.predicate.clone(),
                    expected,
                    got: tuple.arity(),
                });
            }
        }
        let principal = self.nodes[&location].principal;
        let row = BatchRow {
            values: Arc::from(tuple.values),
            tag: ProvTag::None, // replaced in process_batch for base facts
            origin: location.clone(),
            asserted_by: Some(principal),
            shipped_graph: None,
            is_base: true,
            location_index,
        };
        self.enqueue_local(at, location, pred, row, Polarity::Assert);
        Ok(())
    }

    /// Schedules the withdrawal of one assertion of a base fact at `at`
    /// (simulated time).  Requires dynamics: the retraction is applied
    /// through the deletion ledger and cascades through everything the
    /// fact's derivations supported.
    pub fn retract_fact_at(
        &mut self,
        location: Value,
        tuple: Tuple,
        at: SimTime,
    ) -> Result<(), EngineError> {
        if !self.nodes.contains_key(&location) {
            return Err(EngineError::UnknownLocation(location));
        }
        if !self.dynamics {
            return Err(EngineError::Eval(
                "retractions need the dynamics machinery: build with \
                 EngineConfig::with_dynamics() or use run_scenario"
                    .to_string(),
            ));
        }
        self.push_work(
            at,
            QueuedWork::Churn(ChurnEvent::Retract { location, tuple }),
        );
        Ok(())
    }

    /// Same-instant ordering rank: retraction work runs after assertion
    /// work so a tombstone is never applied before the assertion it
    /// withdraws (see the `queue` field docs), and channel evictions run
    /// last of all so a frame delivered at exactly the teardown horizon is
    /// still verified against the channel it was MAC'd under.
    fn work_rank(work: &QueuedWork) -> u8 {
        match work {
            QueuedWork::Deliver(batch) if batch.polarity == Polarity::Retract => 1,
            QueuedWork::Ship(frame) if frame.polarity == Polarity::Retract => 1,
            QueuedWork::Evict { .. } => 2,
            _ => 0,
        }
    }

    fn push_work(&mut self, at: SimTime, work: QueuedWork) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let rank = Self::work_rank(&work);
        self.items.insert(seq, work);
        self.queue.push(Reverse((at, rank, seq)));
        seq
    }

    /// The first window boundary strictly after `at` — when tuples produced
    /// at `at` flush (`window > 0`).
    fn next_flush(at: SimTime, window: u64) -> u64 {
        (at.as_micros() / window + 1) * window
    }

    /// Appends `row` to the window's open batch under `key`, or opens (and
    /// schedules at `due`) a new one via `open`.  A batch that reaches
    /// `max_batch_tuples` — whether on creation or on append — is sealed:
    /// it leaves the open-batch map, and later tuples of the same window
    /// start a fresh batch flushed at the same boundary (after the full
    /// one, by queue seq).  `rows_mut` projects the queued work item back
    /// to its row buffer; both the local delta and shipment-frame paths
    /// share this one copy of the seal logic.
    fn buffer_batch(
        &mut self,
        due: u64,
        key: BatchKey,
        row: BatchRow,
        rows_mut: fn(&mut QueuedWork) -> &mut Vec<BatchRow>,
        open: impl FnOnce(Vec<BatchRow>) -> QueuedWork,
    ) {
        let cap = self.config.max_batch_tuples.max(1);
        if let Some(&seq) = self
            .open_batches
            .get(&due)
            .and_then(|bucket| bucket.get(&key))
        {
            let work = self
                .items
                .get_mut(&seq)
                .expect("open-batch key points at queued work");
            let rows = rows_mut(work);
            rows.push(row);
            if rows.len() >= cap {
                self.open_batches
                    .get_mut(&due)
                    .expect("bucket holds the key")
                    .remove(&key);
            }
        } else {
            let seq = self.push_work(SimTime::from_micros(due), open(vec![row]));
            // A cap of 1 is already met on creation: never left open, so
            // no batch ever exceeds the cap.
            if cap > 1 {
                let pool = &mut self.batch_map_pool;
                self.open_batches
                    .entry(due)
                    .or_insert_with(|| pool.pop().unwrap_or_default())
                    .insert(key, seq);
            }
        }
    }

    /// Routes a tuple to its destination node's delta queue: immediately
    /// (`batch_window = 0`, one batch per tuple as before) or appended to
    /// the open `(node, predicate, due, polarity)` batch, creating and
    /// scheduling it at the window boundary if absent.
    fn enqueue_local(
        &mut self,
        at: SimTime,
        destination: Value,
        pred: PredId,
        row: BatchRow,
        polarity: Polarity,
    ) {
        let window = self.config.batch_window_us;
        if window == 0 {
            self.push_work(
                at,
                QueuedWork::Deliver(DeltaBatch {
                    destination,
                    pred,
                    rows: vec![row],
                    assertion: None,
                    is_remote: false,
                    polarity,
                }),
            );
            return;
        }
        let due = Self::next_flush(at, window);
        let key = BatchKey::Local {
            destination: destination.clone(),
            pred,
            polarity,
        };
        self.buffer_batch(
            due,
            key,
            row,
            |work| match work {
                QueuedWork::Deliver(batch) => &mut batch.rows,
                _ => unreachable!("pending key points at a queued local delta batch"),
            },
            move |rows| {
                QueuedWork::Deliver(DeltaBatch {
                    destination,
                    pred,
                    rows,
                    assertion: None,
                    is_remote: false,
                    polarity,
                })
            },
        );
    }

    /// Routes a head tuple bound for another node: sealed and shipped
    /// immediately (`batch_window = 0`) or appended to the open
    /// `(source, destination, predicate, due, polarity)` shipment frame.
    fn buffer_ship(
        &mut self,
        at: SimTime,
        src: &Value,
        dst: &Value,
        pred: PredId,
        row: BatchRow,
        polarity: Polarity,
    ) {
        let window = self.config.batch_window_us;
        if window == 0 {
            self.seal_and_ship_now(
                at,
                ShipFrame {
                    src: src.clone(),
                    dst: dst.clone(),
                    pred,
                    rows: vec![row],
                    polarity,
                },
            );
            return;
        }
        let due = Self::next_flush(at, window);
        let key = BatchKey::Ship {
            src: src.clone(),
            dst: dst.clone(),
            pred,
            polarity,
        };
        let (src, dst) = (src.clone(), dst.clone());
        self.buffer_batch(
            due,
            key,
            row,
            |work| match work {
                QueuedWork::Ship(frame) => &mut frame.rows,
                _ => unreachable!("pending key points at a queued shipment frame"),
            },
            move |rows| {
                QueuedWork::Ship(ShipFrame {
                    src,
                    dst,
                    pred,
                    rows,
                    polarity,
                })
            },
        );
    }

    /// Seals one shipment frame right now on the engine (the
    /// `batch_window = 0` fast path, where every head tuple ships as its
    /// own frame): drives the same context sealing code the queue path
    /// uses and replays its transport effects immediately.
    fn seal_and_ship_now(&mut self, at: SimTime, frame: ShipFrame) {
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut effects = Vec::new();
        let mut trace = Vec::new();
        {
            let mut ctx = PartitionCtx {
                shared: EvalShared {
                    config: &self.config,
                    compiled: &self.compiled,
                    symbols: &self.symbols,
                    directory: &self.directory,
                    dynamics: self.dynamics,
                    tracing: self.recorder.is_some(),
                },
                nodes: &mut nodes,
                var_table: &mut self.var_table,
                metrics: &mut self.metrics,
                completion: &mut self.completion,
                base_counter: &mut self.base_counter,
                effects: &mut effects,
                trace: &mut trace,
            };
            ctx.seal_and_ship(at, frame);
        }
        self.nodes = nodes;
        if let Some(rec) = self.recorder.as_mut() {
            for event in trace.drain(..) {
                rec.push(event);
            }
        }
        self.apply_effects(effects);
    }

    /// Drops every open-batch bucket whose flush boundary the clock has
    /// reached: their queue items are popping (or have popped), and no
    /// future tuple can append to them — `next_flush` is strictly in the
    /// future.  Emptied key maps are recycled through a small pool.  This
    /// replaces the old per-item `close_pending` bookkeeping, which
    /// reconstructed (and cloned the `Value`s of) a batch key on every
    /// single dispatch just to unlink one entry.
    fn release_flushed_batches(&mut self, now: SimTime) {
        let now_us = now.as_micros();
        while self
            .open_batches
            .first_key_value()
            .is_some_and(|(&due, _)| due <= now_us)
        {
            let (_, mut bucket) = self.open_batches.pop_first().expect("peeked boundary");
            bucket.clear();
            if self.batch_map_pool.len() < 8 {
                self.batch_map_pool.push(bucket);
            }
        }
    }

    /// Runs until no work items remain (the distributed fixpoint) and returns
    /// the run metrics.  On dynamics runs, a retraction wave that drains the
    /// queue is followed by the well-founded reconciliation sweep (recursive
    /// self-support cleanup); the fixpoint is reached when both the queue
    /// and the sweep are quiescent.
    pub fn run_to_fixpoint(&mut self) -> Result<RunMetrics, EngineError> {
        let started = Instant::now();
        self.started = true;
        let workers = self.config.workers.max(1);
        self.metrics.worker_threads = workers as u64;
        self.metrics.partitions = if workers > 1 {
            workers.min(self.locations.len().max(1)) as u64
        } else {
            1
        };
        let parallel = workers > 1 && self.wave_parallel_eligible();
        let mut last_at = SimTime::ZERO;
        loop {
            self.drain_queue(None, parallel, &mut last_at)?;
            if self.dynamics && self.needs_sweep {
                self.needs_sweep = false;
                self.well_founded_sweep(last_at);
                if !self.queue.is_empty() {
                    continue;
                }
            }
            break;
        }
        self.metrics.wall_clock = started.elapsed();
        let cpu_total: SimTime = self
            .nodes
            .values()
            .map(|n| n.cpu_spent)
            .fold(SimTime::ZERO, |a, b| a + b);
        self.metrics.parallel_wall =
            Duration::from_micros(cpu_total.as_micros() - self.cpu_saved.as_micros());
        self.metrics.completion = self.completion;
        self.metrics.messages = self.net.stats().messages;
        self.metrics.bytes = self.net.stats().bytes;
        self.metrics.tuples_stored = self
            .nodes
            .values()
            .map(|n| n.store.total_tuples() as u64)
            .sum();
        self.metrics.store_bytes = self.store_bytes();
        self.metrics.index_bytes = self.index_bytes();
        // The fixpoint footprint is itself a peak sample, so plain runs
        // report honest (final) peaks and streaming runs keep their
        // mid-run high-water marks.
        self.metrics.peak_store_bytes = self.metrics.peak_store_bytes.max(self.metrics.store_bytes);
        self.metrics.peak_index_bytes = self.metrics.peak_index_bytes.max(self.metrics.index_bytes);
        self.metrics.peak_tuples = self.metrics.peak_tuples.max(self.metrics.tuples_stored);
        if let Some(rec) = self.recorder.as_mut() {
            rec.finish();
        }
        Ok(self.metrics.clone())
    }

    /// The flight recorder, when tracing was enabled via
    /// [`EngineConfig::with_tracing`].  Read it after a run for the event
    /// stream, the hot-rule profile, per-link frame lifecycles, and the
    /// Chrome/Perfetto export.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.recorder.as_ref()
    }

    /// Record one engine-side trace event (no-op when tracing is off).
    fn trace_event(&mut self, at: SimTime, kind: TraceEventKind) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(TraceEvent {
                at_us: at.as_micros(),
                kind,
            });
        }
    }

    /// Emit any due gauge samples before the queue head is processed.  The
    /// head instant is the same whatever the worker count (all earlier work
    /// has fully drained by the time the head crosses a sample boundary),
    /// so the samples — and the queue/store state they observe — are
    /// deterministic.
    fn trace_sample_gauges(&mut self) {
        let Some(&Reverse((head_at, _, _))) = self.queue.peek() else {
            return;
        };
        let head_us = head_at.as_micros();
        loop {
            let due = match self
                .recorder
                .as_ref()
                .and_then(|r| r.pending_gauge(head_us))
            {
                Some(due) => due,
                None => return,
            };
            let queue_depth = self.items.len() as u64;
            let inflight_frames: u64 = self.flink_inflight.values().map(|m| m.len() as u64).sum();
            let store_bytes = self.store_bytes();
            let index_bytes = self.index_bytes();
            let rec = self
                .recorder
                .as_mut()
                .expect("pending gauge implies recorder");
            rec.flush_wave();
            rec.push(TraceEvent {
                at_us: due,
                kind: TraceEventKind::Gauge {
                    queue_depth,
                    inflight_frames,
                    store_bytes,
                    index_bytes,
                },
            });
            rec.advance_gauge();
        }
    }

    /// Drains queued work in `(time, rank, seq)` order until the queue is
    /// empty or its head reaches `bound` — the streaming driver's exclusive
    /// cut `(event time, rank 0, pre-run seq horizon)`, which is exactly
    /// where a scripted event's own queue item would sort.  `last_at`
    /// tracks the latest instant processed (the well-founded sweep's
    /// reference point).  Open-batch boundary buckets are released as the
    /// clock passes them.
    fn drain_queue(
        &mut self,
        bound: Option<(SimTime, u64)>,
        parallel: bool,
        last_at: &mut SimTime,
    ) -> Result<(), EngineError> {
        loop {
            if self.recorder.is_some() {
                self.trace_sample_gauges();
            }
            if parallel {
                if let Some(wave) = self.pop_wave(bound) {
                    let wave_at = wave.last().expect("wave is non-empty").0;
                    *last_at = (*last_at).max(wave_at);
                    self.release_flushed_batches(wave_at);
                    self.process_wave(wave)?;
                    continue;
                }
            }
            let Some(&Reverse((at, rank, seq))) = self.queue.peek() else {
                break;
            };
            if !Self::within_bound(at, rank, seq, bound) {
                break;
            }
            self.queue.pop();
            *last_at = (*last_at).max(at);
            self.release_flushed_batches(at);
            let work = self.items.remove(&seq).expect("queued item exists");
            if matches!(work, QueuedWork::Handshake { .. }) {
                // Coalesce every handshake delivery in the remaining
                // same-instant safe prefix into per-receiver batches —
                // the same grouping `pop_wave` applies on the parallel
                // path — and dispatch the prefix in seq order.
                for (bseq, batch) in self.pop_handshake_prefix(at, rank, seq, work, bound) {
                    self.dispatch_one(at, bseq, batch)?;
                }
                continue;
            }
            self.dispatch_one(at, seq, work)?;
        }
        Ok(())
    }

    /// True when a queue triple sorts strictly below the streaming cut.
    fn within_bound(at: SimTime, rank: u8, seq: u64, bound: Option<(SimTime, u64)>) -> bool {
        match bound {
            None => true,
            Some((cut_at, cut_seq)) => (at, rank, seq) < (cut_at, 0, cut_seq),
        }
    }

    /// Folds the current store/index footprint into the run's high-water
    /// marks.  The streaming driver samples at quiescence points between
    /// events; plain runs sample once at fixpoint.
    fn sample_memory_peak(&mut self) {
        let store = self.store_bytes();
        let index = self.index_bytes();
        let tuples: u64 = self
            .nodes
            .values()
            .map(|n| n.store.total_tuples() as u64)
            .sum();
        self.metrics.peak_store_bytes = self.metrics.peak_store_bytes.max(store);
        self.metrics.peak_index_bytes = self.metrics.peak_index_bytes.max(index);
        self.metrics.peak_tuples = self.metrics.peak_tuples.max(tuples);
    }

    /// Whether this configuration can run same-instant waves on the worker
    /// pool at all.  The shared provenance variable table is the one piece
    /// of order-sensitive cross-node mutable state, so any configuration
    /// that writes it (semiring tags, derivation graphs, offline archives)
    /// stays on the sequential path; dynamics work items (churn, expiry,
    /// eviction, retraction) are engine-global and are kept sequential by
    /// the wave-safety check itself.
    ///
    /// Unbatched runs (`batch_window_us == 0`) also stay sequential: without
    /// a window, shipment frames seal *inline* while effects apply
    /// (`seal_and_ship_now`), charging the sender's CPU lane at replay time
    /// — but the sequential schedule interleaves those seals between events,
    /// so replaying them after the wave would order a node's lane
    /// differently and shift every downstream send time.  With a window the
    /// hazard is gone by construction: ship effects only buffer rows, and
    /// sealing is first-class queued work owned by the sender, processed in
    /// queue-seq order like everything else.
    fn wave_parallel_eligible(&self) -> bool {
        self.config.provenance == ProvenanceKind::None
            && self.config.graph_mode == GraphMode::None
            && !self.config.archive_offline
            && self.config.batch_window_us > 0
    }

    /// The node whose partition must process a wave-safe work item:
    /// deliveries and handshakes run at their destination, frame sealing at
    /// the sender (signing/MAC cost lands on the sender's CPU lane).
    fn wave_owner(work: &QueuedWork) -> &Value {
        match work {
            QueuedWork::Deliver(batch) => &batch.destination,
            QueuedWork::Ship(frame) => &frame.src,
            QueuedWork::Handshake { destination, .. } => destination,
            QueuedWork::HandshakeBatch { destination, .. } => destination,
            _ => unreachable!("only deliveries, ships and handshakes join waves"),
        }
    }

    /// Whether a queued item may join a parallel wave (and, equivalently,
    /// whether a same-instant handshake extraction may scan across it).
    /// Retractions, churn, eviction, expiry and deliveries to unknown
    /// locations are unsafe: their effects (or errors) must surface in
    /// strict sequential order.
    fn wave_safe(&self, work: &QueuedWork) -> bool {
        match work {
            QueuedWork::Deliver(batch) => {
                batch.polarity == Polarity::Assert
                    && self.directory.contains_key(&batch.destination)
            }
            QueuedWork::Ship(frame) => frame.polarity == Polarity::Assert,
            QueuedWork::Handshake { .. } => true,
            _ => false,
        }
    }

    /// Pops the rest of the same-`(time, rank)` *wave-safe* queue prefix
    /// the sequential loop just hit a [`QueuedWork::Handshake`] in,
    /// coalesces every handshake in it (`first` included) into
    /// per-receiver batches, and returns batches plus the skipped-over
    /// non-handshake items merged back in ascending seq order.  The
    /// prefix ends at the first wave-unsafe item or at the instant
    /// boundary — exactly where [`DistributedEngine::pop_wave`] would cut
    /// a wave, so batch composition never depends on the worker count.
    /// Each batch carries its first member's seq, so a frame delivery
    /// queued between two handshakes for one receiver still charges that
    /// receiver's lane *after* the batch on both paths.
    fn pop_handshake_prefix(
        &mut self,
        at: SimTime,
        rank: u8,
        seq: u64,
        first: QueuedWork,
        bound: Option<(SimTime, u64)>,
    ) -> Vec<(u64, QueuedWork)> {
        let mut run = vec![(seq, first)];
        let mut rest: Vec<(u64, QueuedWork)> = Vec::new();
        while let Some(&Reverse((a, r, s))) = self.queue.peek() {
            if a != at || r != rank || !Self::within_bound(a, r, s, bound) {
                break;
            }
            let item = self.items.get(&s).expect("queued item exists");
            let is_handshake = matches!(item, QueuedWork::Handshake { .. });
            if !is_handshake && !self.wave_safe(item) {
                break;
            }
            self.queue.pop();
            let work = self.items.remove(&s).expect("queued item exists");
            if is_handshake {
                run.push((s, work));
            } else {
                rest.push((s, work));
            }
        }
        let mut out = Self::coalesce_handshake_run(run);
        out.extend(rest);
        out.sort_unstable_by_key(|&(s, _)| s);
        out
    }

    /// Groups a seq-ordered run of handshake deliveries by receiver,
    /// preserving arrival order within each receiver; each group becomes
    /// one [`QueuedWork::HandshakeBatch`] carrying its first member's seq.
    /// Handshake processing emits no effects and different receivers
    /// charge disjoint CPU lanes, so replacing the run with its batches
    /// leaves every simulated time and counter of the run untouched —
    /// only the number of scheduling events shrinks.
    fn coalesce_handshake_run(run: Vec<(u64, QueuedWork)>) -> Vec<(u64, QueuedWork)> {
        let mut batches: Vec<(u64, Value, Vec<ChannelHandshake>)> = Vec::new();
        for (seq, work) in run {
            let QueuedWork::Handshake {
                destination,
                handshake,
            } = work
            else {
                unreachable!("handshake runs hold only handshakes");
            };
            match batches.iter_mut().find(|(_, dst, _)| *dst == destination) {
                Some((_, _, list)) => list.push(handshake),
                None => batches.push((seq, destination, vec![handshake])),
            }
        }
        batches
            .into_iter()
            .map(|(seq, destination, handshakes)| {
                (
                    seq,
                    QueuedWork::HandshakeBatch {
                        destination,
                        handshakes,
                    },
                )
            })
            .collect()
    }

    /// Pops the maximal runnable prefix of same-instant, same-rank
    /// assertion work (deliveries, frame sealings, handshakes) for
    /// wave-parallel dispatch.  Returns `None` when the queue is empty or
    /// its head is engine-global work — churn, eviction, expiry, retraction
    /// batches, or a delivery to an unknown location (its error must
    /// surface in sequential order) — which processes one item at a time on
    /// the sequential path.  The conservative lookahead is the wave
    /// boundary itself: everything inside a wave is due at one simulated
    /// instant, and per-link delivery horizons guarantee nothing queued
    /// later can be due earlier.
    fn pop_wave(
        &mut self,
        bound: Option<(SimTime, u64)>,
    ) -> Option<Vec<(SimTime, u64, QueuedWork)>> {
        let &Reverse((wave_at, wave_rank, _)) = self.queue.peek()?;
        let mut wave = Vec::new();
        while let Some(&Reverse((at, rank, seq))) = self.queue.peek() {
            if at != wave_at || rank != wave_rank || !Self::within_bound(at, rank, seq, bound) {
                break;
            }
            match self.items.get(&seq) {
                Some(work) if self.wave_safe(work) => {}
                _ => break,
            }
            self.queue.pop();
            let work = self.items.remove(&seq).expect("queued item exists");
            wave.push((at, seq, work));
        }
        if wave.is_empty() {
            return None;
        }
        // Coalesce every handshake delivery in the wave into per-receiver
        // batches — the identical grouping the sequential loop applies via
        // `pop_handshake_prefix`, so batch composition (and the
        // `handshake_batches` counter) never depends on the worker count.
        // Each batch keeps its first member's seq; merging the batches
        // back among the wave's other items in seq order preserves the
        // per-lane charge order the sequential path produces.
        let mut run: Vec<(u64, QueuedWork)> = Vec::new();
        let mut out = Vec::with_capacity(wave.len());
        for (at, seq, work) in wave {
            if matches!(work, QueuedWork::Handshake { .. }) {
                run.push((seq, work));
            } else {
                out.push((at, seq, work));
            }
        }
        for (bseq, batch) in Self::coalesce_handshake_run(run) {
            out.push((wave_at, bseq, batch));
        }
        out.sort_unstable_by_key(|&(_, seq, _)| seq);
        Some(out)
    }

    /// Dispatches one popped work item on the sequential path — the
    /// `workers = 1` schedule, and the fallback for wave-unsafe work.
    fn dispatch_one(
        &mut self,
        at: SimTime,
        _seq: u64,
        work: QueuedWork,
    ) -> Result<(), EngineError> {
        // Engine-global work can never join a wave: close any open wave
        // span before its events interleave into the trace.
        if let Some(rec) = self.recorder.as_mut() {
            if !matches!(
                work,
                QueuedWork::Deliver(_)
                    | QueuedWork::Ship(_)
                    | QueuedWork::Handshake { .. }
                    | QueuedWork::HandshakeBatch { .. }
            ) {
                rec.flush_wave();
            }
        }
        match work {
            QueuedWork::Deliver(_)
            | QueuedWork::Ship(_)
            | QueuedWork::Handshake { .. }
            | QueuedWork::HandshakeBatch { .. } => self.eval_event(at, work),
            QueuedWork::Churn(event) => self.process_churn(at, event),
            QueuedWork::Evict {
                src,
                dst,
                send_epoch,
                recv_epoch,
            } => {
                self.process_eviction(at, src, dst, send_epoch, recv_epoch);
                Ok(())
            }
            QueuedWork::Expire { node } => {
                self.process_expiry(at, node);
                Ok(())
            }
            QueuedWork::FrameArrival {
                src,
                dst,
                frame_seq,
            } => self.process_frame_arrival(at, src, dst, frame_seq),
            QueuedWork::Retransmit {
                src,
                dst,
                frame_seq,
            } => {
                self.process_retransmit(at, src, dst, frame_seq);
                Ok(())
            }
            QueuedWork::AckFrame { src, dst } => {
                self.process_ack(at, src, dst);
                Ok(())
            }
        }
    }

    /// Runs one Deliver/Ship/Handshake event through an evaluation context
    /// on the calling thread and applies its effects immediately — this IS
    /// the sequential schedule, byte for byte: the context machinery is the
    /// same one the worker pool uses, but with the engine's real variable
    /// table and metrics, and with effects applied in emission order.
    fn eval_event(&mut self, at: SimTime, work: QueuedWork) -> Result<(), EngineError> {
        // Wave-span feed info, captured before `work` moves into the
        // context.  `owner: None` (wave-unsafe work, e.g. a retraction
        // batch) closes the open span, exactly as the parallel driver's
        // wave boundary would.
        let feed = if self.recorder.is_some() {
            let rank = Self::work_rank(&work);
            let owner = match &work {
                QueuedWork::HandshakeBatch { destination, .. } => {
                    Some(self.directory[destination].0 .0)
                }
                w if self.wave_safe(w) => Some(self.directory[Self::wave_owner(w)].0 .0),
                _ => None,
            };
            Some((rank, owner))
        } else {
            None
        };
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut effects = Vec::new();
        let mut trace = Vec::new();
        let result = {
            let mut ctx = PartitionCtx {
                shared: EvalShared {
                    config: &self.config,
                    compiled: &self.compiled,
                    symbols: &self.symbols,
                    directory: &self.directory,
                    dynamics: self.dynamics,
                    tracing: self.recorder.is_some(),
                },
                nodes: &mut nodes,
                var_table: &mut self.var_table,
                metrics: &mut self.metrics,
                completion: &mut self.completion,
                base_counter: &mut self.base_counter,
                effects: &mut effects,
                trace: &mut trace,
            };
            ctx.run(at, work)
        };
        self.nodes = nodes;
        if let Some(rec) = self.recorder.as_mut() {
            if let Some((rank, owner)) = feed {
                rec.feed_item(at.as_micros(), rank, owner, effects.len() as u32);
            }
            for event in trace.drain(..) {
                rec.push(event);
            }
        }
        self.apply_effects(effects);
        result
    }

    /// Replays a context's recorded effects against the engine-global
    /// state: the work queue (seq assignment), open-batch buffers, the
    /// traffic meter, scheduled expiries and retraction entry points.
    /// Applying effects in emission order (sequential path) or in queue-seq
    /// order across a wave (parallel path) yields the identical queue.
    fn apply_effects(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Local {
                    at,
                    destination,
                    pred,
                    row,
                    polarity,
                } => self.enqueue_local(at, destination, pred, row, polarity),
                Effect::Ship {
                    at,
                    src,
                    dst,
                    pred,
                    row,
                    polarity,
                } => self.buffer_ship(at, &src, &dst, pred, row, polarity),
                Effect::Queue { at, work } => self.queue_transport(at, work),
                Effect::NetSend {
                    at,
                    src,
                    dst,
                    wire_bytes,
                } => {
                    self.net.send(
                        at,
                        Message {
                            src,
                            dst,
                            payload: 0,
                            wire_bytes,
                        },
                    );
                }
                Effect::Expiry { node, at } => self.schedule_expiry(node, at),
                Effect::Retract {
                    loc,
                    pred,
                    values,
                    tag,
                    now,
                } => self.retract_row(&loc, pred, &values, Some(&tag), false, "retracted", now),
            }
        }
    }

    /// Processes one wave: groups members by owning partition
    /// (`node_id % workers`), lends each partition its owner runtimes, fans
    /// the groups out over scoped worker threads, then merges
    /// deterministically — runtimes and metric shards fold in partition
    /// order, and every event's effects replay in queue-seq order, the
    /// exact order the sequential loop would have applied them.  (Open
    /// batch entries need no per-member unlinking: the caller released the
    /// wave instant's whole boundary bucket before dispatch.)
    fn process_wave(&mut self, wave: Vec<(SimTime, u64, QueuedWork)>) -> Result<(), EngineError> {
        let workers = self.config.workers.max(1) as u32;
        // Wave-span feed info, captured before the items move into their
        // partition groups: the replay loop feeds (seq → owner) in queue-seq
        // order, which is the sequential path's emission order — so the
        // spans come out identical whatever the worker count.
        let wave_at = wave.first().map(|&(at, _, _)| at).unwrap_or(SimTime::ZERO);
        let wave_rank = wave
            .first()
            .map(|(_, _, work)| Self::work_rank(work))
            .unwrap_or(0);
        let feeds: BTreeMap<u64, u32> = if self.recorder.is_some() {
            wave.iter()
                .map(|(_, seq, work)| (*seq, self.directory[Self::wave_owner(work)].0 .0))
                .collect()
        } else {
            BTreeMap::new()
        };
        let mut groups: BTreeMap<u32, Vec<(SimTime, u64, QueuedWork)>> = BTreeMap::new();
        for (at, seq, work) in wave {
            let (node_id, _) = self.directory[Self::wave_owner(&work)];
            groups
                .entry(node_id.0 % workers)
                .or_default()
                .push((at, seq, work));
        }
        let largest = groups.values().map(|g| g.len()).max().unwrap_or(0) as u64;
        self.metrics.max_partition_queue = self.metrics.max_partition_queue.max(largest);

        // Move each partition's owner runtimes out of the engine: a
        // partition owns its nodes exclusively for the duration of the wave.
        let mut bundles: Vec<PartitionBundle> = Vec::with_capacity(groups.len());
        for (partition, events) in groups {
            let mut owned: HashMap<Value, NodeRuntime> = HashMap::new();
            for (_, _, work) in &events {
                let owner = Self::wave_owner(work);
                if !owned.contains_key(owner) {
                    let runtime = self
                        .nodes
                        .remove(owner)
                        .expect("wave owners are deployed nodes");
                    owned.insert(owner.clone(), runtime);
                }
            }
            bundles.push((partition, events, owned));
        }

        let shared = EvalShared {
            config: &self.config,
            compiled: &self.compiled,
            symbols: &self.symbols,
            directory: &self.directory,
            dynamics: self.dynamics,
            tracing: self.recorder.is_some(),
        };
        let mut outcomes: Vec<PartitionOutcome> = Vec::with_capacity(bundles.len());
        if bundles.len() == 1 {
            let (partition, events, owned) = bundles.pop().expect("one bundle");
            outcomes.push(run_partition(shared, partition, events, owned));
        } else {
            // One mailbox collects finished partitions; the first group runs
            // on the coordinating thread while the rest fan out.
            let (tx, rx) = mpsc::channel::<PartitionOutcome>();
            let mut bundle_iter = bundles.into_iter();
            let first = bundle_iter.next().expect("wave is non-empty");
            thread::scope(|scope| {
                let mut spawned = 0usize;
                for (partition, events, owned) in bundle_iter {
                    let tx = tx.clone();
                    spawned += 1;
                    scope.spawn(move || {
                        let _ = tx.send(run_partition(shared, partition, events, owned));
                    });
                }
                let (partition, events, owned) = first;
                outcomes.push(run_partition(shared, partition, events, owned));
                for _ in 0..spawned {
                    outcomes.push(rx.recv().expect("worker delivers its outcome"));
                }
            });
        }

        outcomes.sort_by_key(|o| o.partition);
        let wave_total = outcomes
            .iter()
            .map(|o| o.busy)
            .fold(SimTime::ZERO, |a, b| a + b);
        let wave_max = outcomes
            .iter()
            .map(|o| o.busy)
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut events: Vec<(u64, Vec<Effect>, Vec<TraceEvent>)> = Vec::new();
        let mut first_error: Option<(u64, EngineError)> = None;
        for outcome in outcomes {
            self.nodes.extend(outcome.nodes);
            self.metrics.absorb(&outcome.metrics);
            self.completion = self.completion.max(outcome.completion);
            self.base_counter += outcome.base_counter;
            events.extend(outcome.events);
            if let Some((seq, error)) = outcome.error {
                if first_error.as_ref().is_none_or(|(s, _)| seq < *s) {
                    first_error = Some((seq, error));
                }
            }
        }
        events.sort_unstable_by_key(|(seq, _, _)| *seq);
        for (seq, effects, trace) in events {
            if let Some(rec) = self.recorder.as_mut() {
                if let Some(&owner) = feeds.get(&seq) {
                    rec.feed_item(
                        wave_at.as_micros(),
                        wave_rank,
                        Some(owner),
                        effects.len() as u32,
                    );
                }
                for event in trace {
                    rec.push(event);
                }
            }
            self.apply_effects(effects);
        }
        // Only the slowest partition gates the wave: everything the other
        // partitions executed concurrently comes off the modeled host wall.
        self.cpu_saved += SimTime::from_micros(wave_total.as_micros() - wave_max.as_micros());
        match first_error {
            Some((_, error)) => Err(error),
            None => Ok(()),
        }
    }

    /// Runs a churn scenario to its post-churn fixpoint: arms the dynamics
    /// machinery (deletion ledger, scheduled TTL expiry, FIFO links),
    /// schedules every scripted event through the discrete-event simulator
    /// as first-class work, and drives evaluation until queue and
    /// reconciliation sweep are both quiescent.
    ///
    /// Must be called before any evaluation has run (or on an engine built
    /// with [`EngineConfig::with_dynamics`]): the ledger has to observe
    /// every derivation event from time zero for deletion to be
    /// provenance-exact.
    pub fn run_scenario(&mut self, script: &ChurnScript) -> Result<RunMetrics, EngineError> {
        if !self.dynamics {
            if self.started {
                return Err(EngineError::Eval(
                    "dynamics must be armed before the first evaluation: build with \
                     EngineConfig::with_dynamics() or call run_scenario on a fresh engine"
                        .to_string(),
                ));
            }
            self.dynamics = true;
        }
        for (at, event) in script.events() {
            self.push_work(*at, QueuedWork::Churn(event.clone()));
        }
        self.run_to_fixpoint()
    }

    /// Runs a churn workload in streaming mode: events are pulled from the
    /// iterator one at a time (never materialised in the work queue), the
    /// queue is drained to quiescence-before-the-event between consecutive
    /// events, and the store/index footprint is sampled at those quiescence
    /// points into `peak_store_bytes` / `peak_index_bytes`.
    ///
    /// The schedule — and therefore every counter — is bit-identical to
    /// [`DistributedEngine::run_scenario`] on the same event sequence: a
    /// scenario's scripted events occupy the seq block right below any work
    /// created during the run, so injecting event `i` once the queue head
    /// reaches the cut `(eventᵢ time, rank 0, pre-run seq horizon)`
    /// dispatches it at exactly the position its queue item would have
    /// popped.  What changes is memory: the driver holds O(in-flight work)
    /// instead of O(script), which lets generational workloads whose
    /// soft-state TTLs retire old state mid-run keep a bounded footprint at
    /// 10k nodes.
    ///
    /// Events must arrive in nondecreasing time order.  Like
    /// `run_scenario`, this must be the first evaluation on the engine
    /// unless dynamics were armed at construction.
    pub fn run_streaming<I>(&mut self, events: I) -> Result<RunMetrics, EngineError>
    where
        I: IntoIterator<Item = (SimTime, ChurnEvent)>,
    {
        let started = Instant::now();
        if !self.dynamics {
            if self.started {
                return Err(EngineError::Eval(
                    "dynamics must be armed before the first evaluation: build with \
                     EngineConfig::with_dynamics() or call run_streaming on a fresh engine"
                        .to_string(),
                ));
            }
            self.dynamics = true;
        }
        self.started = true;
        let workers = self.config.workers.max(1);
        self.metrics.worker_threads = workers as u64;
        self.metrics.partitions = if workers > 1 {
            workers.min(self.locations.len().max(1)) as u64
        } else {
            1
        };
        let parallel = workers > 1 && self.wave_parallel_eligible();
        let horizon_seq = self.next_seq;
        let mut last_at = SimTime::ZERO;
        let mut last_event = SimTime::ZERO;
        // Footprint sampling is O(stored rows), so rate-limit it to a few
        // simulated windows; the sampling cadence only affects the peak
        // gauges, never the schedule or any counter.
        let sample_gap_us = self.config.batch_window_us.max(250) * 4;
        let mut next_sample_us = 0u64;
        for (at, event) in events {
            if at < last_event {
                return Err(EngineError::Eval(format!(
                    "streaming events must be time-ordered: got {}µs after {}µs",
                    at.as_micros(),
                    last_event.as_micros()
                )));
            }
            last_event = at;
            self.drain_queue(Some((at, horizon_seq)), parallel, &mut last_at)?;
            if at.as_micros() >= next_sample_us {
                self.sample_memory_peak();
                next_sample_us = at.as_micros() + sample_gap_us;
            }
            self.release_flushed_batches(at);
            last_at = last_at.max(at);
            self.process_churn(at, event)?;
        }
        let mut metrics = self.run_to_fixpoint()?;
        self.metrics.wall_clock = started.elapsed();
        metrics.wall_clock = self.metrics.wall_clock;
        Ok(metrics)
    }

    /// Bytes of tuple data currently stored across all nodes (rows charged
    /// once plus seq-list overhead; see `NodeStore::store_bytes`).
    pub fn store_bytes(&self) -> u64 {
        self.nodes
            .values()
            .map(|n| n.store.store_bytes() as u64)
            .sum()
    }

    /// Bytes of secondary-index overhead currently held across all nodes
    /// (bucket keys plus seq ids; see `NodeStore::index_bytes`).
    pub fn index_bytes(&self) -> u64 {
        self.nodes
            .values()
            .map(|n| n.store.index_bytes() as u64)
            .sum()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// All tuples of `predicate` stored at `location`.
    pub fn query(&self, location: &Value, predicate: &str) -> Vec<(Tuple, TupleMeta)> {
        self.nodes
            .get(location)
            .map(|n| {
                n.store
                    .scan(predicate)
                    .map(|(t, m)| (t, m.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All tuples of `predicate` stored at `location`, in insertion order —
    /// the deterministic ordering tests use to compare evaluation modes
    /// ([`DistributedEngine::query`] iterates in arbitrary hash order).
    pub fn query_ordered(&self, location: &Value, predicate: &str) -> Vec<(Tuple, TupleMeta)> {
        self.nodes
            .get(location)
            .map(|n| {
                n.store
                    .scan_ordered(predicate)
                    .into_iter()
                    .map(|(t, m)| (t, m.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All tuples of `predicate` across every node, with their storage
    /// location.
    pub fn query_all(&self, predicate: &str) -> Vec<(Value, Tuple, TupleMeta)> {
        let mut out = Vec::new();
        for loc in &self.locations {
            for (t, m) in self.query(loc, predicate) {
                out.push((loc.clone(), t, m));
            }
        }
        out
    }

    /// The provenance graph maintained at `location` (graph modes only).
    pub fn provenance_graph(&self, location: &Value) -> Option<&DerivationGraph> {
        self.nodes.get(location).map(|n| n.local_prov.graph())
    }

    /// The per-node distributed provenance stores, keyed by location name
    /// (ready to feed [`pasn_provenance::traceback`]).
    pub fn distributed_stores(&self) -> HashMap<String, DistributedStore> {
        self.nodes
            .values()
            .map(|n| (n.location.to_string(), n.dist_prov.clone()))
            .collect()
    }

    /// The offline provenance archive of `location`.
    pub fn archive(&self, location: &Value) -> Option<&ArchiveStore> {
        self.nodes.get(location).map(|n| &n.archive)
    }

    /// Bytes sent by each node so far, keyed by location — the raw material
    /// for per-principal accountability reports (the PlanetFlow use case of
    /// Section 3).
    pub fn bytes_sent_per_node(&self) -> HashMap<Value, u64> {
        let per_id = &self.net.stats().bytes_per_node;
        self.nodes
            .values()
            .map(|n| {
                (
                    n.location.clone(),
                    per_id.get(&n.node_id.0).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    /// Renders the condensed / semiring provenance annotation of an exact
    /// tuple stored at `location`.
    pub fn render_provenance(&self, location: &Value, tuple: &Tuple) -> Option<String> {
        let node = self.nodes.get(location)?;
        let meta = node.store.get(tuple)?;
        Some(meta.tag.render(&self.var_table))
    }

    /// Expires soft-state tuples and online provenance older than `now` on
    /// every node; returns the number of tuples dropped.
    pub fn expire_all(&mut self, now: SimTime) -> usize {
        let mut dropped = 0;
        for node in self.nodes.values_mut() {
            dropped += node.store.expire(now).len();
            node.local_prov.expire(now.as_micros());
        }
        dropped
    }

    /// Reactive maintenance: materialises all deferred provenance records
    /// into the per-node graph / pointer / archive stores.  Returns how many
    /// records were materialised.
    pub fn materialize_provenance(&mut self) -> usize {
        let mut total = 0;
        let locations: Vec<Value> = self.locations.clone();
        for loc in locations {
            let deferred = {
                let node = self.nodes.get_mut(&loc).expect("known location");
                std::mem::take(&mut node.deferred)
            };
            total += deferred.len();
            let node = self.nodes.get_mut(&loc).expect("known location");
            for record in deferred {
                record_provenance_graphs(
                    &self.config,
                    node,
                    &loc,
                    &record.head_key,
                    &record.head_location,
                    &record.rule,
                    &record.rule_location,
                    &record.antecedents,
                    record.asserted_by,
                    record.at,
                );
            }
        }
        total
    }
}

// ---- evaluation context ---------------------------------------------------
//
// Everything below runs *inside* a partition: it may mutate only the node
// runtimes the partition owns (plus its metrics shard and effect log) and
// read the shared immutable environment.  The sequential path drives the
// same context with the engine's full state, so one code path serves both
// schedules.
impl<'a> PartitionCtx<'a> {
    /// Dispatches one wave-safe work item.
    fn run(&mut self, at: SimTime, work: QueuedWork) -> Result<(), EngineError> {
        match work {
            QueuedWork::Deliver(batch) => self.process_batch(at, batch),
            QueuedWork::Ship(frame) => {
                self.seal_and_ship(at, frame);
                Ok(())
            }
            QueuedWork::Handshake {
                destination,
                handshake,
            } => {
                // A lone handshake (one not coalesced at pop time, e.g. the
                // retained-work drain on shutdown) is a batch of one.
                self.process_handshake_batch(at, destination, vec![handshake]);
                Ok(())
            }
            QueuedWork::HandshakeBatch {
                destination,
                handshakes,
            } => {
                self.process_handshake_batch(at, destination, handshakes);
                Ok(())
            }
            QueuedWork::Churn(_)
            | QueuedWork::Evict { .. }
            | QueuedWork::Expire { .. }
            | QueuedWork::FrameArrival { .. }
            | QueuedWork::Retransmit { .. }
            | QueuedWork::AckFrame { .. } => {
                unreachable!("engine-global work never enters a partition context")
            }
        }
    }

    fn principal_level(&self, principal: PrincipalId) -> u8 {
        self.shared
            .config
            .security_levels
            .get(&principal.0)
            .copied()
            .unwrap_or(1)
    }

    fn process_batch(&mut self, at: SimTime, batch: DeltaBatch) -> Result<(), EngineError> {
        let DeltaBatch {
            destination,
            pred,
            rows,
            assertion,
            is_remote,
            polarity,
        } = batch;
        if !self.shared.directory.contains_key(&destination) {
            return Err(EngineError::UnknownLocation(destination));
        }
        let cost_model = self.shared.config.cost_model;
        // Keep the node store's predicate mirror current (O(1) when in sync)
        // and resolve the batch's predicate name once, as a shared `Arc`.
        {
            let node = self.nodes.get_mut(&destination).expect("known location");
            node.store.sync_symbols(self.shared.symbols);
        }
        let pred_name: Arc<str> = self
            .shared
            .symbols
            .name_arc(pred)
            .cloned()
            .expect("interned predicate");

        // 1. Verification of imported frames: one `says` check over the
        // canonical concatenated payload covers every tuple in the frame.
        let mut cpu_cost = rows.len() as u64 * cost_model.tuple_process_us;
        if is_remote {
            if let (Some(assertion), true) = (&assertion, self.shared.config.verify_imports) {
                let verifier = self.nodes[&destination]
                    .authenticator
                    .clone()
                    .expect("authentication configured");
                let raw: Vec<Vec<u8>> = rows
                    .iter()
                    .map(|row| tuple::encode_parts(&pred_name, &row.values))
                    .collect();
                // Tombstone frames are proved over polarity-marked payloads,
                // so a data frame can never pass as a deletion of the same
                // tuples (and vice versa).
                let payloads = match polarity {
                    Polarity::Assert => raw,
                    Polarity::Retract => tombstone_payloads(&raw),
                };
                let ok = if let SaysProof::Session(_) = &assertion.proof {
                    // Channel MAC: check against the per-link replay state
                    // installed by the handshake.  No channel (dropped or
                    // rejected handshake) → the frame is refused outright,
                    // no MAC computed, no crypto charged.
                    let required = verifier.level();
                    let node = self.nodes.get_mut(&destination).expect("known location");
                    match node.recv_channels.get_mut(&assertion.principal) {
                        Some(channel) => {
                            // `ReceiverChannel::verify_frame` computes
                            // exactly one HMAC, accept or reject.
                            self.metrics.hmac_ops += 1;
                            cpu_cost += cost_model.hmac_us;
                            verifier
                                .verify_frame_on(channel, &payloads, assertion, required)
                                .is_ok()
                        }
                        None => false,
                    }
                } else {
                    cpu_cost += match assertion.proof.level() {
                        SaysLevel::Rsa => {
                            self.metrics.rsa_verify_ops += 1;
                            cost_model.rsa_verify_us
                        }
                        SaysLevel::Hmac => {
                            self.metrics.hmac_ops += 1;
                            cost_model.hmac_us
                        }
                        SaysLevel::Cleartext | SaysLevel::Session => 0,
                    };
                    verifier.verify_frame(&payloads, assertion).is_ok()
                };
                self.metrics.verifications += 1;
                if !ok {
                    // The whole frame is rejected: a forged proof vouches
                    // for none of the tuples it claims to cover.
                    self.metrics.verification_failures += 1;
                    let done = self
                        .nodes
                        .get_mut(&destination)
                        .expect("known location")
                        .run_cpu(at, SimTime::from_micros(cpu_cost));
                    *self.completion = (*self.completion).max(done);
                    return Ok(());
                }
            }
        }
        if self.shared.config.tracks_provenance() {
            cpu_cost += rows.len() as u64 * cost_model.provenance_op_us;
            self.metrics.provenance_ops += rows.len() as u64;
        }
        let done = self
            .nodes
            .get_mut(&destination)
            .expect("known location")
            .run_cpu(at, SimTime::from_micros(cpu_cost));
        *self.completion = (*self.completion).max(done);

        // Retraction batches settle against the deletion ledger instead of
        // the insert-and-fire path: each row withdraws one recorded
        // contribution, and a tuple whose supports are exhausted is removed
        // and cascades.
        if polarity == Polarity::Retract {
            for row in rows {
                self.effects.push(Effect::Retract {
                    loc: destination.clone(),
                    pred,
                    values: row.values,
                    tag: row.tag,
                    now: done,
                });
            }
            return Ok(());
        }

        // 2. Tags and metadata for every row, then one batch insert that
        // dedups against the row→seq map before any further provenance
        // work.  Provenance keys (display strings) are rendered only when a
        // tag will actually hold them.
        let expires_at = self
            .shared
            .config
            .default_ttl_us
            .map(|ttl| SimTime::from_micros(done.as_micros() + ttl));
        let mut tags: Vec<ProvTag> = Vec::with_capacity(rows.len());
        for row in &rows {
            let tag = if row.is_base {
                *self.base_counter += 1;
                if self.shared.config.provenance == ProvenanceKind::None {
                    ProvTag::None
                } else {
                    let principal = row.asserted_by.unwrap_or(PrincipalId(0));
                    let origin_principal = self.shared.config.granularity.origin_of(principal);
                    let level = self.principal_level(principal);
                    let key =
                        tuple::render_located_parts(&pred_name, &row.values, row.location_index);
                    ProvTag::base(
                        self.shared.config.provenance,
                        &mut *self.var_table,
                        BaseTupleId(tuple::key_hash_parts(&pred_name, &row.values)),
                        &key,
                        origin_principal,
                        level,
                    )
                }
            } else {
                row.tag.clone()
            };
            tags.push(tag);
        }
        let insert_rows: Vec<(Arc<[Value]>, TupleMeta)> = rows
            .iter()
            .zip(&tags)
            .map(|(row, tag)| {
                (
                    row.values.clone(),
                    TupleMeta {
                        tag: tag.clone(),
                        created_at: done,
                        expires_at: if row.is_base { None } else { expires_at },
                        origin: row.origin.clone(),
                        asserted_by: row.asserted_by.map(|p| p.0),
                    },
                )
            })
            .collect();
        let outcomes = {
            let var_table = &mut *self.var_table;
            let node = self.nodes.get_mut(&destination).expect("known location");
            node.store
                .insert_rows(pred, insert_rows, |a, b| a.plus(b, var_table))
        };

        // Deletion ledger: every arriving row is one support of the live
        // row now holding its values — new, duplicate or tag-merged alike —
        // carrying the tag it contributed so deletion can withdraw exactly
        // it.  Soft-state rows get their expiry scheduled as simulator work.
        if self.shared.dynamics {
            let node = self.nodes.get_mut(&destination).expect("known location");
            for ((row, tag), (outcome, seq)) in rows.iter().zip(&tags).zip(&outcomes) {
                node.ledger.record_arrival(
                    *seq,
                    pred,
                    row.is_base,
                    tag.clone(),
                    row.location_index,
                );
                if row.is_base {
                    node.ledger
                        .base_rows
                        .insert(*seq, (pred, row.values.clone()));
                }
                if *outcome == InsertOutcome::New
                    && node.ledger.retracted.contains(&(pred, row.values.clone()))
                {
                    self.metrics.rederivations += 1;
                }
            }
            if let Some(expiry) = expires_at {
                if rows.iter().any(|row| !row.is_base) {
                    self.effects.push(Effect::Expiry {
                        node: destination.clone(),
                        at: expiry,
                    });
                }
            }
        }

        // 3. Per-row provenance bookkeeping for base facts and shipped
        // graphs (unchanged per-tuple semantics).  The rendered tuple key is
        // computed only on the branches that store it.
        for row in &rows {
            if row.is_base && self.shared.config.graph_mode != GraphMode::None {
                let tuple_key =
                    tuple::render_located_parts(&pred_name, &row.values, row.location_index);
                let base_id = BaseTupleId(tuple::key_hash_parts(&pred_name, &row.values));
                let node = self.nodes.get_mut(&destination).expect("known location");
                node.local_prov.graph_mut().add_base(
                    &tuple_key,
                    &destination.to_string(),
                    base_id,
                    row.asserted_by,
                    done.as_micros(),
                    None,
                );
                node.dist_prov.record_base(&tuple_key, base_id);
            }
            if let Some(shipped) = &row.shipped_graph {
                let node = self.nodes.get_mut(&destination).expect("known location");
                node.local_prov.graph_mut().merge(shipped);
            }
            // Distributed provenance: a tuple received from another node
            // keeps a pointer back to the deriving node, where its
            // provenance lives.
            if is_remote
                && !row.is_base
                && self.shared.config.graph_mode == GraphMode::Distributed
                && row.origin != destination
            {
                let tuple_key =
                    tuple::render_located_parts(&pred_name, &row.values, row.location_index);
                if self.shared.config.maintenance == MaintenanceMode::Reactive {
                    let node = self.nodes.get_mut(&destination).expect("known location");
                    node.deferred.push(DeferredDerivation {
                        head_key: tuple_key.clone(),
                        head_location: destination.to_string(),
                        rule: "recv".to_string(),
                        rule_location: destination.to_string(),
                        antecedents: vec![(tuple_key.clone(), row.origin.clone())],
                        asserted_by: row.asserted_by,
                        at: done,
                    });
                } else {
                    let pointer = PointerDerivation {
                        rule: "recv".to_string(),
                        antecedents: vec![AntecedentRef::Remote {
                            location: row.origin.to_string(),
                            key: tuple_key.clone(),
                        }],
                    };
                    let node = self.nodes.get_mut(&destination).expect("known location");
                    node.dist_prov.record_derivation(&tuple_key, pointer);
                }
            }
        }

        // 4. Delta evaluation over the genuinely new rows, one pass per
        // (rule, batch): plan dispatch, slot setup and the unindexed scan
        // cache are shared by every row in the batch.
        let new_deltas: Vec<NewDelta> = rows
            .into_iter()
            .zip(tags)
            .zip(&outcomes)
            .filter(|(_, (outcome, _))| *outcome == InsertOutcome::New)
            .map(|((row, tag), (_, seq))| NewDelta {
                seq: *seq,
                values: row.values,
                tag,
                origin: row.origin,
            })
            .collect();
        if new_deltas.is_empty() {
            return Ok(());
        }
        let plans: Vec<(RulePlan, DeltaPlan)> = self
            .shared
            .compiled
            .plans_for_pred(pred)
            .map(|(rp, dp)| (rp.clone(), dp.clone()))
            .collect();
        for (rule_plan, delta_plan) in plans {
            self.fire_rule(
                &destination,
                &rule_plan,
                &delta_plan,
                pred,
                &new_deltas,
                done,
            )?;
        }
        Ok(())
    }

    /// Evaluates one delta plan against a batch of arriving tuples and emits
    /// head tuples.  Plan dispatch, the slot-table template and the
    /// unindexed scan cache are set up once per `(rule, batch)`; each row
    /// contributes its own seed branch.
    ///
    /// Joins with bound key columns render the key from the current bindings
    /// and probe the store's secondary index; only unifying tuples have their
    /// provenance tags and origins cloned.  Joins with no bound columns fall
    /// back to a full scan in insertion order.
    #[allow(clippy::too_many_arguments)]
    fn fire_rule(
        &mut self,
        local: &Value,
        rule_plan: &RulePlan,
        delta_plan: &DeltaPlan,
        pred: PredId,
        deltas: &[NewDelta],
        now: SimTime,
    ) -> Result<(), EngineError> {
        // The slot template is built once per (rule, batch) and cloned per
        // row.
        let mut template = Bindings::with_slots(rule_plan.slots.clone());
        if let Some(slot) = rule_plan.context_slot {
            template.bind_slot(slot, local.clone());
        }

        // Seed one branch per delta row that unifies with the delta atom:
        // (bindings, contributing rows shared with the store, the delta's
        // insertion seq).  The seq caps what each branch may join — only
        // rows inserted no later than the branch's delta — so a batched run
        // fires exactly the (rule, partner-set) instantiations that
        // tuple-at-a-time processing of the same stream would (no
        // double-derivation through batch siblings, even for self-joins).
        // Two schedule-shaped quantities still follow the coarser batch
        // interleaving rather than the per-tuple one: pipelined Min/Max
        // aggregates may skip intermediate improvements (they converge to
        // the same final value), and a joined row's semiring tag is read
        // after any in-batch duplicate merges (set semantics never
        // re-propagates merged tags in either mode — see the crate docs).
        // Arity conflicts are caught at validate time and on fact
        // insertion, so a mismatch here is an engine invariant violation,
        // not a tuple to skip silently.
        let mut branches: Vec<Branch> = Vec::new();
        for delta in deltas {
            if delta_plan.delta_args.len() != delta.values.len() {
                return Err(EngineError::ArityMismatch {
                    predicate: self
                        .shared
                        .symbols
                        .name(pred)
                        .expect("interned predicate")
                        .to_string(),
                    expected: delta_plan.delta_args.len(),
                    got: delta.values.len(),
                });
            }
            let mut bindings = template.clone();
            let mut ok = true;
            for (term, value) in delta_plan.delta_args.iter().zip(delta.values.iter()) {
                if !bindings.unify_slot_term(term, value) {
                    ok = false;
                    break;
                }
            }
            if ok {
                if let Some(says) = &delta_plan.delta_says {
                    ok = bindings.unify_slot_term(says, &delta.origin);
                }
            }
            if !ok {
                continue;
            }
            branches.push((
                bindings,
                vec![Contrib {
                    pred,
                    values: delta.values.clone(),
                    location: delta_plan.delta.location,
                    tag: delta.tag.clone(),
                    origin: delta.origin.clone(),
                    seq: delta.seq,
                }],
                delta.seq,
            ));
        }
        if branches.is_empty() {
            return Ok(());
        }
        // Candidate tuples examined while evaluating this delta; charged to
        // the node's CPU below.  Index probes keep this close to the true
        // match count instead of the full relation size.
        let mut probes = 0usize;

        for step in &delta_plan.steps {
            let mut next: Vec<Branch> = Vec::new();
            match step {
                PlanStep::Join(join) => {
                    let store = &self.nodes[local].store;
                    // Unindexed fallback, shared across branches: all stored
                    // rows in insertion order (the seq list — no sorting,
                    // and only `Arc` clones, never value copies).
                    let mut scan_cache: Option<Vec<CandidateRow>> = None;
                    let mut index_probes = 0u64;
                    let mut index_hits = 0u64;
                    let mut scan_probes = 0u64;
                    for (bind, contribs, delta_seq) in &branches {
                        // Render the key from the bound columns.  The planner
                        // guarantees they are bound; an unexpectedly missing
                        // slot degrades to the scan path.
                        let key: Option<Vec<Value>> = if join.key_columns.is_empty() {
                            None
                        } else {
                            join.key_columns
                                .iter()
                                .map(|&c| match &join.args[c] {
                                    SlotTerm::Const(v) => Some(v.clone()),
                                    SlotTerm::Slot(s) => bind.get_slot(*s).cloned(),
                                    SlotTerm::Wildcard => None,
                                })
                                .collect()
                        };
                        let probed: Vec<CandidateRow>;
                        let (candidates, used_index): (&[CandidateRow], bool) = match key.map(|k| {
                            store
                                .probe_seq_id(join.pred, &join.key_columns, &k)
                                .map(|it| it.collect())
                        }) {
                            Some(Some(rows)) => {
                                index_probes += 1;
                                probed = rows;
                                (&probed, true)
                            }
                            // No key columns, or (defensively) no index.
                            _ => {
                                let cache = scan_cache.get_or_insert_with(|| {
                                    store.scan_ordered_seq_rows(join.pred).collect()
                                });
                                (cache.as_slice(), false)
                            }
                        };
                        // Rows inserted after this branch's delta (batch
                        // siblings) are invisible to it, exactly as they
                        // were under per-tuple processing — and uncounted,
                        // so the probe/hit/scan counters stay identical too.
                        let mut examined = 0usize;
                        for (stored_seq, stored_values, meta) in candidates {
                            if *stored_seq > *delta_seq {
                                continue;
                            }
                            examined += 1;
                            if stored_values.len() != join.args.len() {
                                return Err(EngineError::ArityMismatch {
                                    predicate: join.atom.predicate.clone(),
                                    expected: join.args.len(),
                                    got: stored_values.len(),
                                });
                            }
                            let mut candidate = bind.clone();
                            let mut ok = true;
                            for (term, value) in join.args.iter().zip(stored_values.iter()) {
                                if !candidate.unify_slot_term(term, value) {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                if let Some(says) = &join.says {
                                    ok = candidate.unify_slot_term(says, &meta.origin);
                                }
                            }
                            if ok {
                                // Tags and origins are cloned only for rows
                                // that actually unified; the row itself is
                                // an `Arc` clone of the stored copy.
                                let mut contribs = contribs.clone();
                                contribs.push(Contrib {
                                    pred: join.pred,
                                    values: Arc::clone(stored_values),
                                    location: join.atom.location,
                                    tag: meta.tag.clone(),
                                    origin: meta.origin.clone(),
                                    seq: *stored_seq,
                                });
                                next.push((candidate, contribs, *delta_seq));
                            }
                        }
                        if used_index {
                            index_hits += examined as u64;
                        } else {
                            scan_probes += examined as u64;
                        }
                        probes += examined.max(1);
                    }
                    self.metrics.index_probes += index_probes;
                    self.metrics.index_hits += index_hits;
                    self.metrics.scan_probes += scan_probes;
                }
                PlanStep::Filter(expr) => {
                    for (bind, contribs, delta_seq) in branches.into_iter() {
                        match eval_filter(expr, &bind) {
                            Ok(true) => next.push((bind, contribs, delta_seq)),
                            Ok(false) => {}
                            Err(e) => return Err(EngineError::Eval(e.to_string())),
                        }
                    }
                    branches = next;
                    continue;
                }
                PlanStep::Assign { slot, expr, .. } => {
                    for (mut bind, contribs, delta_seq) in branches.into_iter() {
                        let value =
                            eval_expr(expr, &bind).map_err(|e| EngineError::Eval(e.to_string()))?;
                        bind.bind_slot(*slot, value);
                        next.push((bind, contribs, delta_seq));
                    }
                    branches = next;
                    continue;
                }
            }
            branches = next;
            if branches.is_empty() {
                break;
            }
        }

        // Charge the join-probing work to this node's CPU, then emit heads at
        // the resulting completion time.
        let probe_cost =
            (probes as f64 * self.shared.config.cost_model.join_probe_us).round() as u64;
        let now = if probe_cost > 0 {
            let done = self
                .nodes
                .get_mut(local)
                .expect("known location")
                .run_cpu(now, SimTime::from_micros(probe_cost));
            *self.completion = (*self.completion).max(done);
            done
        } else {
            now
        };

        if self.shared.tracing {
            self.trace.push(TraceEvent {
                at_us: now.as_micros(),
                kind: TraceEventKind::RuleFire {
                    node: self.shared.directory[local].0 .0,
                    rule: rule_plan.rule.label.clone(),
                    cpu_us: probe_cost,
                    derived: branches.len() as u32,
                },
            });
        }

        for (bind, contribs, _) in branches {
            self.emit_head(local, rule_plan, &bind, &contribs, now)?;
        }
        Ok(())
    }

    /// Builds and routes the head tuple for one satisfied rule body.
    fn emit_head(
        &mut self,
        local: &Value,
        rule_plan: &RulePlan,
        bindings: &Bindings,
        contribs: &[Contrib],
        now: SimTime,
    ) -> Result<(), EngineError> {
        let rule = &rule_plan.rule;
        self.metrics.derivations += 1;

        // Resolve head arguments; handle at most one aggregate.
        let mut values = Vec::with_capacity(rule.head.args.len());
        let mut aggregate: Option<(AggFunc, usize, i64)> = None;
        for (i, arg) in rule.head.args.iter().enumerate() {
            match arg {
                Term::Aggregate(func, var) => {
                    let value = bindings.get(var).and_then(Value::as_int).ok_or_else(|| {
                        EngineError::Eval(format!("aggregate variable `{var}` is not an integer"))
                    })?;
                    aggregate = Some((*func, i, value));
                    values.push(Value::Int(value));
                }
                other => {
                    let v = bindings
                        .resolve_term(other)
                        .map_err(|e| EngineError::Eval(e.to_string()))?;
                    values.push(v);
                }
            }
        }

        // Aggregate handling.  Without dynamics (and for the running
        // Count/Sum totals) only an improvement emits, and nothing is ever
        // withdrawn.  With dynamics, `a_MIN`/`a_MAX` become a candidate
        // competition instead: *every* candidate is recorded in the ledger
        // (with its own value in the head row), and the election below
        // decides what the destination actually stores — so deleting the
        // current best re-elects the next-best survivor instead of leaving
        // a stale winner behind.
        let mut agg_candidate: Option<AggFiring> = None;
        if let Some((func, agg_index, value)) = aggregate {
            let group: Vec<Value> = values
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != agg_index)
                .map(|(_, v)| v.clone())
                .collect();
            if self.shared.dynamics && matches!(func, AggFunc::Min | AggFunc::Max) {
                agg_candidate = Some(AggFiring {
                    label: rule.label.clone(),
                    group,
                    value,
                    agg_index,
                    func,
                });
            } else {
                let key = (rule.label.clone(), group);
                let node = self.nodes.get_mut(local).expect("known location");
                let entry = node.agg_state.get(&key).copied();
                let improved = match (func, entry) {
                    (AggFunc::Min, Some(best)) => value < best,
                    (AggFunc::Max, Some(best)) => value > best,
                    (AggFunc::Min | AggFunc::Max, None) => true,
                    (AggFunc::Count | AggFunc::Sum, _) => true,
                };
                if !improved {
                    return Ok(());
                }
                let new_value = match func {
                    AggFunc::Min | AggFunc::Max => value,
                    AggFunc::Count => entry.unwrap_or(0) + 1,
                    AggFunc::Sum => entry.unwrap_or(0) + value,
                };
                node.agg_state.insert(key, new_value);
                values[agg_index] = Value::Int(new_value);
            }
        }

        // Materialise the head row once, as the shared representation every
        // consumer (store, provenance, wire) will reference.
        let head_pred = rule_plan.head_pred;
        let head_name: Arc<str> = self
            .shared
            .symbols
            .name_arc(head_pred)
            .cloned()
            .expect("head predicate interned at plan time");
        let head_values: Arc<[Value]> = Arc::from(values);

        // Provenance tag: product of the contributing tuples' tags.
        let tag = if self.shared.config.provenance == ProvenanceKind::None {
            ProvTag::None
        } else {
            let mut acc = ProvTag::one(self.shared.config.provenance, &mut *self.var_table);
            for c in contribs {
                acc = acc.times(&c.tag, &mut *self.var_table);
                self.metrics.provenance_ops += 1;
            }
            acc
        };

        // Destination.
        let destination = if let Some(term) = &rule.head.export_to {
            bindings
                .resolve_term(term)
                .map_err(|e| EngineError::Eval(e.to_string()))?
        } else if let Some(idx) = rule.head.location {
            head_values[idx].clone()
        } else {
            local.clone()
        };

        let principal = self.nodes[local].principal;

        // Deletion ledger: record the firing — the head it produced, the
        // tag it contributed, and the antecedent rows by seq — so deletion
        // can replay it with opposite polarity.  `a_MIN`/`a_MAX` candidates
        // are recorded with their own candidate value in the head row (and
        // the aggregate identity attached), so killing one feeds the
        // group's re-election instead of routing a withdrawal.
        if self.shared.dynamics {
            let node = self.nodes.get_mut(local).expect("known location");
            let idx = node.ledger.firings.len() as u32;
            node.ledger.firings.push(FiringRecord {
                alive: true,
                dest: destination.clone(),
                pred: head_pred,
                values: head_values.clone(),
                tag: tag.clone(),
                location_index: rule.head.location,
                antecedents: contribs.iter().map(|c| c.seq).collect(),
                agg: agg_candidate.clone(),
            });
            for c in contribs {
                node.ledger
                    .by_antecedent
                    .entry(c.seq)
                    .or_default()
                    .push(idx);
            }
            node.ledger
                .by_head
                .entry((destination.clone(), head_pred, head_values.clone()))
                .or_default()
                .push(idx);
        }

        // `a_MIN`/`a_MAX` candidates under dynamics: the ledger record
        // above is the candidate's identity; emission is decided by the
        // per-group election.  (Provenance graphs are not recorded for
        // candidate firings — graph-recording configs run the non-dynamics
        // aggregate path.)
        if let Some(agg) = agg_candidate {
            if destination != *local && !self.shared.directory.contains_key(&destination) {
                return Err(EngineError::UnknownLocation(destination));
            }
            self.elect_aggregate(
                local,
                destination,
                head_pred,
                head_values,
                tag,
                agg,
                now,
                principal,
                rule.head.location,
            );
            return Ok(());
        }

        // Provenance graphs (sampled; deferred in reactive mode).  The
        // rendered display keys are derived from the shared rows here, only
        // when something will actually be recorded.
        if self.shared.config.graph_mode != GraphMode::None || self.shared.config.archive_offline {
            if self
                .shared
                .config
                .sampling
                .records(tuple::key_hash_parts(&head_name, &head_values))
            {
                let head_key =
                    tuple::render_located_parts(&head_name, &head_values, rule.head.location);
                let antecedents: Vec<(String, Value)> = contribs
                    .iter()
                    .map(|c| (c.render_key(self.shared.symbols), c.origin.clone()))
                    .collect();
                if self.shared.config.maintenance == MaintenanceMode::Reactive {
                    let node = self.nodes.get_mut(local).expect("known location");
                    node.deferred.push(DeferredDerivation {
                        head_key: head_key.clone(),
                        head_location: destination.to_string(),
                        rule: rule.label.clone(),
                        rule_location: local.to_string(),
                        antecedents,
                        asserted_by: Some(principal),
                        at: now,
                    });
                } else {
                    let config = self.shared.config;
                    let node = self.nodes.get_mut(local).expect("known location");
                    record_provenance_graphs(
                        config,
                        node,
                        local,
                        &head_key,
                        &destination.to_string(),
                        &rule.label,
                        &local.to_string(),
                        &antecedents,
                        Some(principal),
                        now,
                    );
                }
            } else {
                self.metrics.sampled_out += 1;
            }
        }

        if destination == *local {
            let row = BatchRow {
                values: head_values,
                tag,
                origin: local.clone(),
                asserted_by: Some(principal),
                shipped_graph: None,
                is_base: false,
                location_index: rule.head.location,
            };
            self.effects.push(Effect::Local {
                at: now,
                destination,
                pred: head_pred,
                row,
                polarity: Polarity::Assert,
            });
            return Ok(());
        }

        if !self.shared.directory.contains_key(&destination) {
            return Err(EngineError::UnknownLocation(destination));
        }

        // Local-provenance mode piggybacks the derivation subtree as it
        // exists at emission time; its wire bytes are charged when the frame
        // seals.
        let mut shipped_graph = None;
        if self.shared.config.graph_mode == GraphMode::Local {
            let head_key =
                tuple::render_located_parts(&head_name, &head_values, rule.head.location);
            let node = &self.nodes[local];
            if let Some(root) = node.local_prov.graph().find(&head_key) {
                shipped_graph = Some(node.local_prov.graph().subtree(root));
            }
        }
        let row = BatchRow {
            values: head_values,
            tag,
            origin: local.clone(),
            asserted_by: Some(principal),
            shipped_graph,
            is_base: false,
            location_index: rule.head.location,
        };
        self.effects.push(Effect::Ship {
            at: now,
            src: local.clone(),
            dst: destination,
            pred: head_pred,
            row,
            polarity: Polarity::Assert,
        });
        Ok(())
    }

    /// Enters one `a_MIN`/`a_MAX` candidate into its group's competition
    /// (dynamics only) and emits the head row only when the candidate beats
    /// the currently emitted best — withdrawing the dethroned row first, so
    /// the destination never holds two rows of one group.  Candidates that
    /// do not win stay in the multiset; `settle_agg_kill` re-elects from
    /// them when the winner dies.
    #[allow(clippy::too_many_arguments)]
    fn elect_aggregate(
        &mut self,
        local: &Value,
        destination: Value,
        pred: PredId,
        head_values: Arc<[Value]>,
        tag: ProvTag,
        agg: AggFiring,
        now: SimTime,
        principal: PrincipalId,
        location_index: Option<usize>,
    ) {
        let key = (agg.label, agg.group);
        let node = self.nodes.get_mut(local).expect("known location");
        node.agg_candidates
            .entry(key.clone())
            .or_default()
            .entry(agg.value)
            .or_default()
            .push(tag.clone());
        let current = node.agg_emitted.get(&key).cloned();
        let improves = match (agg.func, &current) {
            (_, None) => true,
            (AggFunc::Min, Some((best, _))) => agg.value < *best,
            (AggFunc::Max, Some((best, _))) => agg.value > *best,
            (AggFunc::Count | AggFunc::Sum, Some(_)) => {
                unreachable!("only Min/Max enter candidate competitions")
            }
        };
        if !improves {
            return;
        }
        if let Some((old_value, old_tag)) = current {
            // Withdraw the dethroned best before asserting its successor.
            let mut old_values = head_values.to_vec();
            old_values[agg.agg_index] = Value::Int(old_value);
            self.push_agg_row(
                now,
                local,
                destination.clone(),
                pred,
                Arc::from(old_values),
                old_tag,
                Polarity::Retract,
                principal,
                location_index,
            );
        }
        let node = self.nodes.get_mut(local).expect("known location");
        node.agg_state.insert(key.clone(), agg.value);
        node.agg_emitted.insert(key, (agg.value, tag.clone()));
        self.push_agg_row(
            now,
            local,
            destination,
            pred,
            head_values,
            tag,
            Polarity::Assert,
            principal,
            location_index,
        );
    }

    /// Routes one aggregate assertion or withdrawal row: a local delta for
    /// same-node heads, a shipment-frame append otherwise.
    #[allow(clippy::too_many_arguments)]
    fn push_agg_row(
        &mut self,
        now: SimTime,
        local: &Value,
        destination: Value,
        pred: PredId,
        values: Arc<[Value]>,
        tag: ProvTag,
        polarity: Polarity,
        principal: PrincipalId,
        location_index: Option<usize>,
    ) {
        let row = BatchRow {
            values,
            tag,
            origin: local.clone(),
            asserted_by: Some(principal),
            shipped_graph: None,
            is_base: false,
            location_index,
        };
        if destination == *local {
            self.effects.push(Effect::Local {
                at: now,
                destination,
                pred,
                row,
                polarity,
            });
        } else {
            self.effects.push(Effect::Ship {
                at: now,
                src: local.clone(),
                dst: destination,
                pred,
                row,
                polarity,
            });
        }
    }

    /// Seals one shipment frame: dedups identical rows, signs the canonical
    /// concatenated payload once, charges one message header plus every
    /// tuple's honest payload bytes, and schedules delivery as a single
    /// remote delta batch.
    fn seal_and_ship(&mut self, at: SimTime, frame: ShipFrame) {
        let ShipFrame {
            src,
            dst,
            pred,
            mut rows,
            polarity,
        } = frame;

        // Dedup identical rows before signing: a duplicate would be signed
        // and shipped only to be absorbed by the receiver's row→seq dedup
        // map.  Tags merge with the semiring `+` and piggybacked graphs
        // merge structurally, so no provenance is lost.  Retraction frames
        // are NOT deduplicated — two identical tombstones withdraw two
        // distinct supports — and neither are dynamics-run data frames: the
        // deletion ledger counts one support per arriving contribution, so
        // merging two firings' rows into one would leave a tombstone
        // unmatched later (deletion would over-withdraw).
        let deduped: Vec<BatchRow> = if polarity == Polarity::Retract || self.shared.dynamics {
            rows
        } else {
            let mut seen: HashMap<Arc<[Value]>, usize> = HashMap::with_capacity(rows.len());
            let mut deduped: Vec<BatchRow> = Vec::with_capacity(rows.len());
            for row in rows.drain(..) {
                match seen.get(&row.values) {
                    Some(&at) => {
                        let existing = &mut deduped[at];
                        existing.tag = existing.tag.plus(&row.tag, &mut *self.var_table);
                        match (&mut existing.shipped_graph, row.shipped_graph) {
                            (Some(g), Some(h)) => g.merge(&h),
                            (slot @ None, h @ Some(_)) => *slot = h,
                            _ => {}
                        }
                    }
                    None => {
                        seen.insert(row.values.clone(), deduped.len());
                        deduped.push(row);
                    }
                }
            }
            deduped
        };

        let pred_name: Arc<str> = self
            .shared
            .symbols
            .name_arc(pred)
            .cloned()
            .expect("interned predicate");
        let raw: Vec<Vec<u8>> = deduped
            .iter()
            .map(|row| tuple::encode_parts(&pred_name, &row.values))
            .collect();
        // Tombstones are proved over polarity-marked payloads (see
        // `pasn_crypto::says::tombstone_payloads`).
        let payloads = match polarity {
            Polarity::Assert => raw,
            Polarity::Retract => tombstone_payloads(&raw),
        };

        // One signature covers the whole frame; `signatures` scales with
        // frames shipped, not tuples.  At the `Session` level the per-frame
        // proof is a channel MAC, with the RSA work paid once per link by
        // the key-establishment handshake (`ensure_channel`).
        let mut wire = match polarity {
            Polarity::Assert => Frame::new(),
            Polarity::Retract => Frame::tombstone(),
        };
        let mut assertion = None;
        let mut sign_cost = 0u64;
        if self.shared.config.authenticated() {
            let authenticator = self.nodes[&src]
                .authenticator
                .clone()
                .expect("authentication configured");
            let a = match authenticator.level() {
                SaysLevel::Session => {
                    self.ensure_channel(at, &src, &dst);
                    let (_, dst_principal) = self.shared.directory[&dst];
                    let node = self.nodes.get_mut(&src).expect("known location");
                    let channel = node
                        .send_channels
                        .get_mut(&dst_principal)
                        .expect("ensure_channel opened the link");
                    self.metrics.hmac_ops += 1;
                    sign_cost = self.shared.config.cost_model.hmac_us;
                    authenticator.assert_frame_on(channel, &payloads)
                }
                level => {
                    sign_cost = match level {
                        SaysLevel::Rsa => {
                            self.metrics.rsa_sign_ops += 1;
                            self.shared.config.cost_model.rsa_sign_us
                        }
                        SaysLevel::Hmac => {
                            self.metrics.hmac_ops += 1;
                            self.shared.config.cost_model.hmac_us
                        }
                        SaysLevel::Cleartext => 0,
                        SaysLevel::Session => unreachable!("handled above"),
                    };
                    authenticator.assert_frame(&payloads)
                }
            };
            self.metrics.signatures += 1;
            let proof_bytes = a.wire_len();
            self.metrics.auth_bytes += proof_bytes as u64;
            wire.set_frame_overhead(proof_bytes);
            assertion = Some(a);
        }
        // Per-tuple payload: the canonical encoding plus the provenance
        // shipping cost (tag, and any piggybacked derivation subtree).
        for (row, payload) in deduped.iter().zip(&payloads) {
            let mut tuple_bytes = payload.len();
            let tag_bytes = row.tag.wire_size(&*self.var_table);
            self.metrics.provenance_bytes += tag_bytes as u64;
            tuple_bytes += tag_bytes;
            if let Some(graph) = &row.shipped_graph {
                let graph_bytes = graph.estimated_wire_size();
                self.metrics.provenance_bytes += graph_bytes as u64;
                tuple_bytes += graph_bytes;
            }
            wire.push_tuple(tuple_bytes);
        }

        let node_id = self.nodes[&src].node_id;
        let (dst_id, _) = self.shared.directory[&dst];
        let send_at = self
            .nodes
            .get_mut(&src)
            .expect("known location")
            .run_cpu(at, SimTime::from_micros(sign_cost));
        *self.completion = (*self.completion).max(send_at);
        let wire_bytes = wire.wire_bytes();
        let mut deliver_at = send_at + self.shared.config.cost_model.message_latency(wire_bytes);
        self.effects.push(Effect::NetSend {
            at: send_at,
            src: node_id,
            dst: dst_id,
            wire_bytes,
        });
        if self.shared.config.says_level == Some(SaysLevel::Session) || self.shared.dynamics {
            deliver_at = self
                .nodes
                .get_mut(&src)
                .expect("known location")
                .link_deliver(dst_id, deliver_at);
        }
        self.metrics.frames += 1;
        self.metrics.batched_tuples += deduped.len() as u64;
        if polarity == Polarity::Retract {
            self.metrics.tombstone_frames += 1;
        }
        // Partition accounting: a frame whose receiver lives on a different
        // partition crosses a mailbox boundary on parallel runs.
        let workers = self.shared.config.workers;
        if workers > 1 && node_id.0 % workers as u32 != dst_id.0 % workers as u32 {
            self.metrics.cross_partition_frames += 1;
        }
        self.effects.push(Effect::Queue {
            at: deliver_at,
            work: QueuedWork::Deliver(DeltaBatch {
                destination: dst,
                pred,
                rows: deduped,
                assertion,
                is_remote: true,
                polarity,
            }),
        });
    }

    /// Ensures an open (unexpired) sender channel for the directed link
    /// `src → dst`, performing the RSA-signed key-establishment handshake
    /// when the link is unbound or its channel has exhausted
    /// `channel_rebind_frames` frames.  The handshake is real simulated
    /// traffic: its RSA signature is charged to the sender's CPU — the once
    /// per link (per epoch) exponentiation the session level amortises RSA
    /// down to — and the transcript + signature bytes travel as their own
    /// wire message ahead of the data frames they key.
    fn ensure_channel(&mut self, at: SimTime, src: &Value, dst: &Value) {
        let (dst_id, dst_principal) = self.shared.directory[dst];
        let epoch = match self.nodes[src].send_channels.get(&dst_principal) {
            Some(channel) if !channel.expired() => return,
            Some(channel) => channel.epoch() + 1,
            // A link (re)binding after a churn eviction starts at the
            // retired channel's successor epoch, never back at a key
            // stream that already ran.
            None => self.nodes[src]
                .send_epoch_floor
                .get(&dst_principal)
                .copied()
                .unwrap_or(0),
        };
        let authenticator = self.nodes[src]
            .authenticator
            .clone()
            .expect("authentication configured");
        let (handshake, channel) = authenticator.open_channel(
            dst_principal,
            epoch,
            self.shared.config.channel_rebind_frames,
        );
        self.metrics.handshakes += 1;
        self.metrics.rsa_sign_ops += 1;
        // Sender-side session-key derivation.
        self.metrics.hmac_ops += 1;

        let node_id = self.nodes[src].node_id;
        if self.shared.tracing {
            self.trace.push(TraceEvent {
                at_us: at.as_micros(),
                kind: TraceEventKind::Handshake {
                    src: node_id.0,
                    dst: dst_id.0,
                    epoch,
                },
            });
        }
        let send_at = self.nodes.get_mut(src).expect("known location").run_cpu(
            at,
            SimTime::from_micros(self.shared.config.cost_model.rsa_sign_us),
        );
        *self.completion = (*self.completion).max(send_at);
        let wire = Frame::handshake(handshake.transcript.wire_len(), handshake.signature.len());
        self.metrics.auth_bytes += wire.payload_bytes() as u64;
        let wire_bytes = wire.wire_bytes();
        let deliver_at = send_at + self.shared.config.cost_model.message_latency(wire_bytes);
        self.effects.push(Effect::NetSend {
            at: send_at,
            src: node_id,
            dst: dst_id,
            wire_bytes,
        });
        let sender = self.nodes.get_mut(src).expect("known location");
        let deliver_at = sender.link_deliver(dst_id, deliver_at);
        sender.send_channels.insert(dst_principal, channel);
        self.effects.push(Effect::Queue {
            at: deliver_at,
            work: QueuedWork::Handshake {
                destination: dst.clone(),
                handshake,
            },
        });
    }

    /// Receiver side of channel establishment for a coalesced batch of
    /// same-instant handshakes: one CPU charge window covers every
    /// transcript verification (the once-per-link public-key
    /// exponentiations), then each handshake is verified and installed
    /// individually.  The charge is `k × rsa_verify_us` in one `run_cpu`
    /// call — identical total lane occupancy to `k` back-to-back charges at
    /// the same instant, so batching moves no completion time; it only
    /// collapses `k` scheduling round-trips into one.  A handshake that
    /// fails validation installs nothing — subsequent frames on the link
    /// then fail verification for lack of a channel.
    fn process_handshake_batch(
        &mut self,
        at: SimTime,
        destination: Value,
        handshakes: Vec<ChannelHandshake>,
    ) {
        if !self.shared.config.verify_imports {
            // The receiver checks no proofs, so it needs no channel state.
            return;
        }
        self.metrics.handshake_batches += 1;
        let cost = self.shared.config.cost_model.rsa_verify_us * handshakes.len() as u64;
        let done = self
            .nodes
            .get_mut(&destination)
            .expect("known location")
            .run_cpu(at, SimTime::from_micros(cost));
        *self.completion = (*self.completion).max(done);
        for handshake in handshakes {
            self.verify_handshake(&destination, handshake);
        }
    }

    /// Verifies one handshake transcript and installs the resulting session
    /// channel (CPU time is charged by the caller, per batch).
    fn verify_handshake(&mut self, destination: &Value, handshake: ChannelHandshake) {
        let verifier = self.nodes[destination]
            .authenticator
            .clone()
            .expect("authentication configured");
        self.metrics.rsa_verify_ops += 1;
        // A handshake below the receiver's epoch floor is a replay of a
        // channel churn already retired (the live-channel case is handled
        // by accept_rebind below): reject before any state is installed.
        // Crash-style evictions raise the floor past the dead channel, so
        // a rebinding sender must supersede it to be heard.
        let floor = self.nodes[destination]
            .recv_epoch_floor
            .get(&handshake.transcript.src)
            .copied()
            .unwrap_or(0);
        if !handshake.supersedes(floor) {
            self.metrics.verification_failures += 1;
            return;
        }
        // Rebinds must supersede the installed channel's epoch, so a
        // replayed old handshake can never roll the replay counter back.
        let accepted = match self.nodes[destination]
            .recv_channels
            .get(&handshake.transcript.src)
        {
            Some(current) => verifier.accept_rebind(&handshake, current),
            None => verifier.accept_channel(&handshake),
        };
        match accepted {
            Ok(channel) => {
                // Receiver-side session-key derivation.
                self.metrics.hmac_ops += 1;
                self.nodes
                    .get_mut(destination)
                    .expect("known location")
                    .recv_channels
                    .insert(handshake.transcript.src, channel);
            }
            Err(_) => {
                self.metrics.verification_failures += 1;
            }
        }
    }
}

// ---- network dynamics and provenance-guided deletion -----------------------
//
// Dynamics work (churn, TTL expiry, channel eviction, retraction cascades)
// stays on the engine: it is inherently engine-global (it walks multiple
// nodes, reschedules queue work and touches the shared ledger-driven sweep
// flag) and never enters a parallel wave.
impl DistributedEngine {
    /// Schedules one TTL expiry sweep of `node` at `at` (deduplicated per
    /// distinct instant, so a thousand tuples expiring together cost one
    /// queue entry).
    fn schedule_expiry(&mut self, node: Value, at: SimTime) {
        if self
            .scheduled_expiries
            .insert((node.clone(), at.as_micros()))
        {
            self.push_work(at, QueuedWork::Expire { node });
        }
    }

    /// Scheduled TTL expiry: every row at `loc` whose lifetime has passed
    /// dies *now*, mid-run — removed from the store and cascaded through
    /// the deletion ledger exactly like a retraction (rows whose TTL was
    /// refreshed since scheduling are naturally skipped).
    fn process_expiry(&mut self, at: SimTime, loc: Value) {
        self.scheduled_expiries
            .remove(&(loc.clone(), at.as_micros()));
        let expired = {
            let node = self.nodes.get_mut(&loc).expect("known location");
            node.store.take_expired(at)
        };
        if expired.is_empty() {
            return;
        }
        if self.recorder.is_some() {
            let node_id = self.directory[&loc].0 .0;
            self.trace_event(
                at,
                TraceEventKind::Expiry {
                    node: node_id,
                    rows: expired.len() as u32,
                },
            );
        }
        let cost = expired.len() as u64 * self.config.cost_model.tuple_process_us;
        let done = self
            .nodes
            .get_mut(&loc)
            .expect("known location")
            .run_cpu(at, SimTime::from_micros(cost));
        self.completion = self.completion.max(done);
        for (pred, seq, values, meta) in expired {
            // Expiry wipes the row outright (force): upstream contributions
            // die with it rather than decrementing one by one.
            self.settle_removed(
                &loc,
                pred,
                seq,
                values,
                meta.created_at,
                "expired",
                done,
                true,
                None,
            );
        }
    }

    /// Applies one scripted churn event at its scheduled time.
    fn process_churn(&mut self, at: SimTime, event: ChurnEvent) -> Result<(), EngineError> {
        self.metrics.churn_events += 1;
        if self.recorder.is_some() {
            let (kind, subject) = match &event {
                ChurnEvent::LinkUp { src, dst, .. } => ("link-up", format!("{src}->{dst}")),
                ChurnEvent::LinkDown { src, dst } => ("link-down", format!("{src}->{dst}")),
                ChurnEvent::LinkCut { src, dst } => ("link-cut", format!("{src}->{dst}")),
                ChurnEvent::NodeCrash { node } => ("node-crash", node.to_string()),
                ChurnEvent::NodeFail { node } => ("node-fail", node.to_string()),
                ChurnEvent::NodeRejoin { node } => ("node-rejoin", node.to_string()),
                ChurnEvent::Insert { location, tuple } => {
                    ("insert", format!("{location} {}", tuple.predicate))
                }
                ChurnEvent::Retract { location, tuple } => {
                    ("retract", format!("{location} {}", tuple.predicate))
                }
                ChurnEvent::Refresh { location, tuple } => {
                    ("refresh", format!("{location} {}", tuple.predicate))
                }
            };
            self.trace_event(
                at,
                TraceEventKind::Churn {
                    kind: kind.to_string(),
                    subject,
                },
            );
        }
        match event {
            ChurnEvent::Insert { location, tuple } => {
                self.insert_fact_at(location, tuple, at)?;
            }
            ChurnEvent::LinkUp { src, dst, cost } => {
                let mut values = vec![src.clone(), dst];
                if let Some(c) = cost {
                    values.push(Value::Int(c));
                }
                self.insert_fact_at(src, Tuple::new("link", values), at)?;
            }
            ChurnEvent::LinkDown { src, dst } => {
                if !self.nodes.contains_key(&src) {
                    return Err(EngineError::UnknownLocation(src));
                }
                // Channel teardown is scheduled (graceful): it lands after
                // the link's in-flight frames — including this retraction's
                // own tombstones — have drained.
                self.schedule_channel_eviction(at, &src, &dst);
                if let Some(pred) = self.nodes[&src].store.pred_id("link") {
                    let victims: Vec<Arc<[Value]>> = self.nodes[&src]
                        .store
                        .scan_ordered_rows(pred)
                        .filter(|(v, _)| v.first() == Some(&src) && v.get(1) == Some(&dst))
                        .map(|(v, _)| v.clone())
                        .collect();
                    for values in victims {
                        self.retract_row(&src, pred, &values, None, false, "retracted", at);
                    }
                }
            }
            ChurnEvent::NodeFail { node } => {
                if !self.nodes.contains_key(&node) {
                    return Err(EngineError::UnknownLocation(node));
                }
                let mut base: Vec<(u64, PredId, Arc<[Value]>)> = self.nodes[&node]
                    .ledger
                    .base_rows
                    .iter()
                    .map(|(seq, (pred, values))| (*seq, *pred, values.clone()))
                    .collect();
                base.sort_unstable_by_key(|(seq, _, _)| *seq);
                self.failed_nodes.insert(
                    node.clone(),
                    base.iter()
                        .map(|(_, pred, values)| (*pred, values.clone()))
                        .collect(),
                );
                for peer in self.locations.clone() {
                    if peer != node {
                        self.schedule_channel_eviction(at, &node, &peer);
                        self.schedule_channel_eviction(at, &peer, &node);
                    }
                }
                for (_, pred, values) in base {
                    self.retract_row(&node, pred, &values, None, true, "node-failed", at);
                }
            }
            ChurnEvent::LinkCut { src, dst } => {
                if !self.nodes.contains_key(&src) {
                    return Err(EngineError::UnknownLocation(src));
                }
                // Crash-style cut: in-flight frames die *now* (reconciled
                // against the ledger) and the channel is evicted without
                // drain — unlike LinkDown's graceful teardown above.
                self.cut_link_transport(at, &src, &dst);
                if let Some(pred) = self.nodes[&src].store.pred_id("link") {
                    let victims: Vec<Arc<[Value]>> = self.nodes[&src]
                        .store
                        .scan_ordered_rows(pred)
                        .filter(|(v, _)| v.first() == Some(&src) && v.get(1) == Some(&dst))
                        .map(|(v, _)| v.clone())
                        .collect();
                    for values in victims {
                        self.retract_row(&src, pred, &values, None, false, "link-cut", at);
                    }
                }
            }
            ChurnEvent::NodeCrash { node } => {
                if !self.nodes.contains_key(&node) {
                    return Err(EngineError::UnknownLocation(node));
                }
                // Crash without drain: every frame in the air to or from the
                // node dies and is reconciled, every adjacent channel is
                // evicted immediately, then the node's base tuples are
                // force-retracted exactly like NodeFail (so NodeRejoin can
                // restore them).
                for peer in self.locations.clone() {
                    if peer != node {
                        self.cut_link_transport(at, &node, &peer);
                        self.cut_link_transport(at, &peer, &node);
                    }
                }
                let mut base: Vec<(u64, PredId, Arc<[Value]>)> = self.nodes[&node]
                    .ledger
                    .base_rows
                    .iter()
                    .map(|(seq, (pred, values))| (*seq, *pred, values.clone()))
                    .collect();
                base.sort_unstable_by_key(|(seq, _, _)| *seq);
                self.failed_nodes.insert(
                    node.clone(),
                    base.iter()
                        .map(|(_, pred, values)| (*pred, values.clone()))
                        .collect(),
                );
                for (_, pred, values) in base {
                    self.retract_row(&node, pred, &values, None, true, "node-crashed", at);
                }
            }
            ChurnEvent::NodeRejoin { node } => {
                if !self.nodes.contains_key(&node) {
                    return Err(EngineError::UnknownLocation(node));
                }
                if let Some(rows) = self.failed_nodes.remove(&node) {
                    let principal = self.nodes[&node].principal;
                    for (pred, values) in rows {
                        let location_index = values.iter().position(|v| *v == node);
                        let row = BatchRow {
                            values,
                            tag: ProvTag::None, // replaced in process_batch for base facts
                            origin: node.clone(),
                            asserted_by: Some(principal),
                            shipped_graph: None,
                            is_base: true,
                            location_index,
                        };
                        self.enqueue_local(at, node.clone(), pred, row, Polarity::Assert);
                    }
                }
            }
            ChurnEvent::Retract { location, tuple } => {
                if !self.nodes.contains_key(&location) {
                    return Err(EngineError::UnknownLocation(location));
                }
                let pred = self.symbols.intern(&tuple.predicate);
                let values: Arc<[Value]> = Arc::from(tuple.values.as_slice());
                self.retract_row(&location, pred, &values, None, false, "retracted", at);
            }
            ChurnEvent::Refresh { location, tuple } => {
                if !self.nodes.contains_key(&location) {
                    return Err(EngineError::UnknownLocation(location));
                }
                if let Some(ttl) = self.config.default_ttl_us {
                    let expires = SimTime::from_micros(at.as_micros() + ttl);
                    let node = self.nodes.get_mut(&location).expect("known location");
                    let refreshed = node.store.pred_id(&tuple.predicate).is_some_and(|pred| {
                        node.store
                            .refresh_row_ttl(pred, &tuple.values, Some(expires))
                    });
                    if refreshed {
                        self.schedule_expiry(location, expires);
                    }
                }
            }
        }
        Ok(())
    }

    /// Schedules eviction of the session channel bound to the directed
    /// link `src → dst`, if any: the teardown is *graceful* — it executes
    /// only once the link's in-flight frames (including the retraction
    /// wave's own tombstones) have drained, and it captures the channel
    /// epochs so a link that already rebound is left alone.  The `link`
    /// tuple models routing adjacency; the session transport underneath
    /// tears down without dropping frames, as its TCP-like real-world
    /// counterpart would.
    fn schedule_channel_eviction(&mut self, at: SimTime, src: &Value, dst: &Value) {
        let (Some(src_node), Some(dst_node)) = (self.nodes.get(src), self.nodes.get(dst)) else {
            return;
        };
        let send_epoch = src_node
            .send_channels
            .get(&dst_node.principal)
            .map(|c| c.epoch());
        let recv_epoch = dst_node
            .recv_channels
            .get(&src_node.principal)
            .map(|c| c.epoch());
        if send_epoch.is_none() && recv_epoch.is_none() {
            return;
        }
        let horizon = src_node.link_horizon_to(dst_node.node_id);
        let (src, dst) = (src.clone(), dst.clone());
        self.push_work(
            at.max(horizon),
            QueuedWork::Evict {
                src,
                dst,
                send_epoch,
                recv_epoch,
            },
        );
    }

    /// Executes a scheduled channel eviction: re-defers while the link's
    /// delivery horizon is still ahead (frames sealed under the old epoch
    /// remain in flight), then removes whichever channel halves still carry
    /// the captured epochs and raises both ends' epoch floors, so the link
    /// — should it return — rebinds at a fresh epoch: the retired key
    /// stream and its replay counter can never be resumed or replayed.
    fn process_eviction(
        &mut self,
        at: SimTime,
        src: Value,
        dst: Value,
        send_epoch: Option<u32>,
        recv_epoch: Option<u32>,
    ) {
        let (Some(src_node), Some(dst_node)) = (self.nodes.get(&src), self.nodes.get(&dst)) else {
            return;
        };
        let (src_principal, dst_principal) = (src_node.principal, dst_node.principal);
        let (src_id, dst_id) = (src_node.node_id.0, dst_node.node_id.0);
        let horizon = src_node.link_horizon_to(dst_node.node_id);
        if horizon > at {
            self.push_work(
                horizon,
                QueuedWork::Evict {
                    src,
                    dst,
                    send_epoch,
                    recv_epoch,
                },
            );
            return;
        }
        // Under a fault plan, "drained" additionally means no sequenced
        // frame is still undelivered on the link: a graceful teardown must
        // not retire the channel that frames awaiting retransmission were
        // MAC'd under.  (Bounded loss bursts guarantee every live link
        // drains, so the re-deferral terminates.)
        if self.config.fault_plan.is_some()
            && self
                .flink_inflight
                .get(&(src_id, dst_id))
                .is_some_and(|frames| frames.values().any(|f| f.work.is_some()))
        {
            self.push_work(
                at + SimTime::from_micros(self.config.retransmit_rto_us),
                QueuedWork::Evict {
                    src,
                    dst,
                    send_epoch,
                    recv_epoch,
                },
            );
            return;
        }
        let mut evicted = false;
        let src_node = self.nodes.get_mut(&src).expect("checked above");
        if let Some(epoch) = send_epoch {
            if src_node
                .send_channels
                .get(&dst_principal)
                .is_some_and(|c| c.epoch() == epoch)
            {
                src_node.send_channels.remove(&dst_principal);
                let floor = src_node.send_epoch_floor.entry(dst_principal).or_insert(0);
                *floor = (*floor).max(epoch + 1);
                evicted = true;
            }
        }
        let dst_node = self.nodes.get_mut(&dst).expect("checked above");
        if let Some(epoch) = recv_epoch {
            if dst_node
                .recv_channels
                .get(&src_principal)
                .is_some_and(|c| c.epoch() == epoch)
            {
                dst_node.recv_channels.remove(&src_principal);
                let floor = dst_node.recv_epoch_floor.entry(src_principal).or_insert(0);
                *floor = (*floor).max(epoch + 1);
                evicted = true;
            }
        }
        if evicted {
            self.trace_event(
                at,
                TraceEventKind::ChannelEvicted {
                    src: src_id,
                    dst: dst_id,
                },
            );
        }
    }

    // ---- unreliable transport (fault-plan runs) ----------------------------

    /// Routes finalized queue work (a sealed remote frame, a scheduled
    /// handshake) through the unreliable transport when a fault plan is
    /// installed.  Reliable runs — and work that never crosses a link —
    /// push straight onto the queue, so the fault machinery costs nothing
    /// when disabled.
    /// Records the ship event for a remote frame on the reliable (no fault
    /// plan) transport, where no per-link sequence numbers exist: the
    /// recorder assigns a trace-only per-link ship ordinal.  Delivery is
    /// implicit (reliable, in order), so no matching deliver event is
    /// emitted; handshakes are covered by their own handshake event.
    fn trace_reliable_ship(&mut self, at: SimTime, work: &QueuedWork) {
        let QueuedWork::Deliver(batch) = work else {
            return;
        };
        if !batch.is_remote {
            return;
        }
        let Some(src) = batch
            .rows
            .first()
            .and_then(|row| self.directory.get(&row.origin))
            .map(|&(id, _)| id.0)
        else {
            return;
        };
        let Some(&(dst_id, _)) = self.directory.get(&batch.destination) else {
            return;
        };
        let dst = dst_id.0;
        let counter = self.trace_link_seq.entry((src, dst)).or_insert(0);
        let seq = *counter;
        *counter += 1;
        let tuples = batch.rows.len() as u32;
        self.trace_event(
            at,
            TraceEventKind::FrameShipped {
                src,
                dst,
                seq,
                tuples,
            },
        );
    }

    fn queue_transport(&mut self, at: SimTime, work: QueuedWork) {
        if self.config.fault_plan.is_none() {
            if self.recorder.is_some() {
                self.trace_reliable_ship(at, &work);
            }
            self.push_work(at, work);
            return;
        }
        let link = match &work {
            QueuedWork::Deliver(batch) if batch.is_remote => {
                let src = batch
                    .rows
                    .first()
                    .map(|row| self.directory[&row.origin].0 .0)
                    .expect("sealed frames carry rows");
                Some((src, self.directory[&batch.destination].0 .0, true))
            }
            QueuedWork::Handshake {
                destination,
                handshake,
            } => Some((
                // Node ids and principal ids share one index by
                // construction (see `DistributedEngine::new`).
                handshake.transcript.src.0,
                self.directory[destination].0 .0,
                false,
            )),
            _ => None,
        };
        let Some((src, dst, is_data)) = link else {
            self.push_work(at, work);
            return;
        };
        let frame_tuples = match (&self.recorder, &work) {
            (Some(_), QueuedWork::Deliver(batch)) => batch.rows.len() as u32,
            _ => 0,
        };
        let seq = {
            let counter = self.flink_next_seq.entry((src, dst)).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        if self.recorder.is_some() && is_data {
            self.trace_event(
                at,
                TraceEventKind::FrameShipped {
                    src,
                    dst,
                    seq,
                    tuples: frame_tuples,
                },
            );
        }
        self.flink_inflight.entry((src, dst)).or_default().insert(
            seq,
            InFlightFrame {
                work: Some(work),
                attempt: 0,
            },
        );
        let plan = self.config.fault_plan.clone().expect("checked above");
        if !is_data {
            // Handshakes are sequenced with the data frames they key (they
            // must neither overtake nor be overtaken on the link) but
            // modeled reliable: channel setup is the control plane, and a
            // lost handshake would only re-run the identical signed
            // transcript below the simulation's cost granularity.
            self.push_work(
                at,
                QueuedWork::FrameArrival {
                    src,
                    dst,
                    frame_seq: seq,
                },
            );
            return;
        }
        let deliver_at = at + SimTime::from_micros(plan.extra_delay_us(src, dst, seq));
        if plan.drops(src, dst, seq, 0) {
            self.metrics.frames_dropped += 1;
            self.trace_event(
                deliver_at,
                TraceEventKind::FrameDropped {
                    src,
                    dst,
                    seq,
                    attempt: 0,
                },
            );
            let rto = SimTime::from_micros(self.config.retransmit_rto_us);
            self.push_work(
                deliver_at + rto,
                QueuedWork::Retransmit {
                    src,
                    dst,
                    frame_seq: seq,
                },
            );
            return;
        }
        if plan.duplicates(src, dst, seq) {
            self.metrics.frames_duplicated += 1;
            self.trace_event(
                deliver_at,
                TraceEventKind::FrameDuplicated { src, dst, seq },
            );
            self.push_work(
                deliver_at,
                QueuedWork::FrameArrival {
                    src,
                    dst,
                    frame_seq: seq,
                },
            );
        }
        self.push_work(
            deliver_at,
            QueuedWork::FrameArrival {
                src,
                dst,
                frame_seq: seq,
            },
        );
    }

    /// Lands one frame at the receiving end of a faulty link: replays of
    /// already-released sequence numbers are deduplicated (and re-acked, so
    /// the sender stops retransmitting), fresh frames park in the link's
    /// holdback buffer, and the in-order prefix is released through normal
    /// evaluation — which is what keeps session-channel replay counters
    /// strictly monotonic even though the transport reorders, drops and
    /// duplicates frames underneath them.
    fn process_frame_arrival(
        &mut self,
        at: SimTime,
        src: u32,
        dst: u32,
        frame_seq: u64,
    ) -> Result<(), EngineError> {
        let link = (src, dst);
        if frame_seq < self.flink_next_expected.get(&link).copied().unwrap_or(0) {
            // A duplicate (or a retransmission that raced its own ack) of a
            // frame already released.
            self.schedule_ack(at, link);
            return Ok(());
        }
        let work = self
            .flink_inflight
            .get_mut(&link)
            .and_then(|frames| frames.get_mut(&frame_seq))
            .and_then(|frame| frame.work.take());
        let Some(work) = work else {
            // The twin of a duplicated frame already parked in holdback, or
            // a frame whose link was cut while it flew: nothing to deliver.
            return Ok(());
        };
        self.flink_holdback
            .entry(link)
            .or_default()
            .insert(frame_seq, work);
        let mut progressed = false;
        loop {
            let expected = self.flink_next_expected.get(&link).copied().unwrap_or(0);
            let Some(work) = self
                .flink_holdback
                .get_mut(&link)
                .and_then(|held| held.remove(&expected))
            else {
                break;
            };
            self.flink_next_expected.insert(link, expected + 1);
            progressed = true;
            if self.recorder.is_some() && matches!(work, QueuedWork::Deliver(_)) {
                self.trace_event(
                    at,
                    TraceEventKind::FrameDelivered {
                        src,
                        dst,
                        seq: expected,
                    },
                );
            }
            // Released frames evaluate at the arrival instant that filled
            // the gap — the earliest an in-order transport could have
            // delivered them.
            self.eval_event(at, work)?;
        }
        if progressed {
            self.schedule_ack(at, link);
        }
        Ok(())
    }

    /// Schedules one delayed cumulative ack from the receiving end of
    /// `link` back to its sender, coalescing: while an ack is pending on
    /// the link, further deliveries ride the same one (its cumulative
    /// cursor is read when it fires).
    fn schedule_ack(&mut self, at: SimTime, link: (u32, u32)) {
        if !self.flink_ack_pending.insert(link) {
            return;
        }
        let latency = self
            .config
            .cost_model
            .message_latency(Frame::ack().wire_bytes());
        self.push_work(
            at + latency,
            QueuedWork::AckFrame {
                src: link.0,
                dst: link.1,
            },
        );
    }

    /// Fires one cumulative ack: every in-flight frame below the
    /// receiver's in-order cursor is settled (its retransmission timers
    /// die with it), and the ack's own wire bytes are charged dst → src.
    fn process_ack(&mut self, at: SimTime, src: u32, dst: u32) {
        let link = (src, dst);
        self.flink_ack_pending.remove(&link);
        self.metrics.acks += 1;
        self.net.send(
            at,
            Message {
                src: NodeId(dst),
                dst: NodeId(src),
                payload: 0,
                wire_bytes: Frame::ack().wire_bytes(),
            },
        );
        let upto = self.flink_next_expected.get(&link).copied().unwrap_or(0);
        self.trace_event(at, TraceEventKind::FrameAcked { src, dst, upto });
        if let Some(frames) = self.flink_inflight.get_mut(&link) {
            while frames.first_key_value().is_some_and(|(&seq, _)| seq < upto) {
                frames.pop_first();
            }
        }
    }

    /// Fires one retransmission timer: if the frame is still undelivered
    /// and unacknowledged, re-roll the fault plan with the next attempt
    /// number and either deliver it or back off exponentially.  The retry
    /// budget is a hard stop (unreachable while the plan's loss-burst bound
    /// stays below it): an exhausted frame is reconciled exactly like one
    /// that died with a cut link.
    fn process_retransmit(&mut self, at: SimTime, src: u32, dst: u32, frame_seq: u64) {
        let link = (src, dst);
        let Some(plan) = self.config.fault_plan.clone() else {
            return;
        };
        let attempt = {
            let Some(frame) = self
                .flink_inflight
                .get_mut(&link)
                .and_then(|frames| frames.get_mut(&frame_seq))
            else {
                return; // acked, or died with a cut link
            };
            if frame.work.is_none() {
                return; // delivered; the cumulative ack has not pruned it yet
            }
            frame.attempt = frame.attempt.saturating_add(1);
            frame.attempt
        };
        self.metrics.retransmits += 1;
        self.trace_event(
            at,
            TraceEventKind::FrameRetransmit {
                src,
                dst,
                seq: frame_seq,
                attempt: u32::from(attempt),
            },
        );
        if attempt > 1 {
            self.metrics.backoff_events += 1;
        }
        self.metrics.max_retransmit_per_frame = self
            .metrics
            .max_retransmit_per_frame
            .max(u64::from(attempt));
        if u32::from(attempt) >= self.config.retry_budget {
            let work = self
                .flink_inflight
                .get_mut(&link)
                .and_then(|frames| frames.remove(&frame_seq))
                .and_then(|frame| frame.work);
            if let Some(work) = work {
                self.trace_event(
                    at,
                    TraceEventKind::FrameDead {
                        src,
                        dst,
                        seq: frame_seq,
                    },
                );
                self.reconcile_dead_frame(at, work);
            }
            return;
        }
        if plan.drops(src, dst, frame_seq, attempt) {
            self.metrics.frames_dropped += 1;
            self.trace_event(
                at,
                TraceEventKind::FrameDropped {
                    src,
                    dst,
                    seq: frame_seq,
                    attempt: u32::from(attempt),
                },
            );
            let backoff = self.config.retransmit_rto_us << attempt.min(6);
            self.push_work(
                at + SimTime::from_micros(backoff),
                QueuedWork::Retransmit {
                    src,
                    dst,
                    frame_seq,
                },
            );
            return;
        }
        // The retransmitted copy lands after one header-sized transport
        // hop.  Its payload bytes were charged when the original sealed;
        // retransmission bandwidth rides outside the paper's figures (which
        // measure a reliable transport) and is tracked by the
        // `retransmits` counter instead.
        let latency = self.config.cost_model.message_latency(MESSAGE_HEADER_BYTES);
        self.push_work(
            at + latency,
            QueuedWork::FrameArrival {
                src,
                dst,
                frame_seq,
            },
        );
    }

    /// Ledger reconciliation for one frame that died with a cut link (or an
    /// exhausted retry budget): an assert frame's rows never created their
    /// supports, so the sender-side firings are silenced — their later
    /// death must not withdraw what never arrived.  A tombstone frame's
    /// withdrawals are applied directly at the destination: the fixpoint
    /// would otherwise wait forever for a retraction the link already ate.
    fn reconcile_dead_frame(&mut self, at: SimTime, work: QueuedWork) {
        // A dead handshake needs no ledger work: the sender rebinds at a
        // fresh epoch on its next shipment.
        let QueuedWork::Deliver(batch) = work else {
            return;
        };
        match batch.polarity {
            Polarity::Assert => {
                for row in &batch.rows {
                    self.silence_dead_row(
                        &row.origin,
                        &batch.destination,
                        batch.pred,
                        &row.values,
                        &row.tag,
                        at,
                    );
                }
            }
            Polarity::Retract => {
                for row in &batch.rows {
                    self.retract_row(
                        &batch.destination,
                        batch.pred,
                        &row.values,
                        Some(&row.tag),
                        false,
                        "reconciled",
                        at,
                    );
                }
            }
        }
    }

    /// Silences the sender-side firing that produced one row of a dead
    /// assert frame (preferring an exact tag match among the alive firings
    /// of that head).  Dynamics runs never dedup shipment rows, so rows and
    /// firings correspond one to one.  A dead aggregate candidate
    /// additionally leaves its group's competition and triggers a
    /// re-election — the surviving topology's best must still reach the
    /// destination.
    fn silence_dead_row(
        &mut self,
        src: &Value,
        dest: &Value,
        pred: PredId,
        values: &Arc<[Value]>,
        tag: &ProvTag,
        now: SimTime,
    ) {
        let Some(node) = self.nodes.get_mut(src) else {
            return;
        };
        let key = (dest.clone(), pred, values.clone());
        let Some(ids) = node.ledger.by_head.get(&key) else {
            return;
        };
        let pick = ids
            .iter()
            .copied()
            .find(|&i| {
                let f = &node.ledger.firings[i as usize];
                f.alive && f.tag == *tag
            })
            .or_else(|| {
                ids.iter()
                    .copied()
                    .find(|&i| node.ledger.firings[i as usize].alive)
            });
        let Some(idx) = pick else {
            return;
        };
        node.ledger.firings[idx as usize].alive = false;
        if node.ledger.firings[idx as usize].agg.is_some() {
            self.settle_agg_kill(src, idx, now, false, true, None);
        }
    }

    /// Crash-without-drain teardown of the directed transport `src → dst`:
    /// every in-flight frame (sent but undelivered, or parked out-of-order
    /// in the receiver's holdback) dies on the spot and is reconciled in
    /// send order; the receive cursor fast-forwards so late replays and
    /// retransmission timers of the dead frames fall into the duplicate
    /// path; and the link's session channel is evicted immediately.  Future
    /// sends on the pair still work — only what was in the air is lost —
    /// which is what lets the cut's own retraction cascade ship its
    /// tombstones.
    fn cut_link_transport(&mut self, at: SimTime, src: &Value, dst: &Value) {
        let (Some(&(src_id, _)), Some(&(dst_id, _))) =
            (self.directory.get(src), self.directory.get(dst))
        else {
            return;
        };
        let link = (src_id.0, dst_id.0);
        let mut dead: Vec<(u64, QueuedWork)> = Vec::new();
        if let Some(frames) = self.flink_inflight.remove(&link) {
            for (seq, frame) in frames {
                if let Some(work) = frame.work {
                    dead.push((seq, work));
                }
            }
        }
        if let Some(held) = self.flink_holdback.remove(&link) {
            dead.extend(held);
        }
        dead.sort_unstable_by_key(|&(seq, _)| seq);
        let sent = self.flink_next_seq.get(&link).copied().unwrap_or(0);
        self.flink_next_expected.insert(link, sent);
        for (seq, work) in dead {
            self.trace_event(
                at,
                TraceEventKind::FrameDead {
                    src: link.0,
                    dst: link.1,
                    seq,
                },
            );
            self.reconcile_dead_frame(at, work);
        }
        if self.recorder.is_some() && self.channel_installed(src, dst) {
            self.trace_event(
                at,
                TraceEventKind::ChannelEvicted {
                    src: link.0,
                    dst: link.1,
                },
            );
        }
        self.evict_channel_now(src, dst);
    }

    /// Whether either half of the directed link's session channel is
    /// currently installed (trace helper for the eviction events).
    fn channel_installed(&self, src: &Value, dst: &Value) -> bool {
        let (Some(src_node), Some(dst_node)) = (self.nodes.get(src), self.nodes.get(dst)) else {
            return false;
        };
        src_node.send_channels.contains_key(&dst_node.principal)
            || dst_node.recv_channels.contains_key(&src_node.principal)
    }

    /// Evicts the session channel of the directed link immediately — no
    /// drain, no epoch capture: whatever is installed dies and both epoch
    /// floors rise past it, so the link rebinds at a fresh epoch.  The
    /// graceful path is `schedule_channel_eviction`; this one serves
    /// crash-style cuts, where waiting for in-flight frames would wait on
    /// frames that no longer exist.
    fn evict_channel_now(&mut self, src: &Value, dst: &Value) {
        let (Some(src_node), Some(dst_node)) = (self.nodes.get(src), self.nodes.get(dst)) else {
            return;
        };
        let (src_principal, dst_principal) = (src_node.principal, dst_node.principal);
        let src_node = self.nodes.get_mut(src).expect("checked above");
        if let Some(channel) = src_node.send_channels.remove(&dst_principal) {
            let floor = src_node.send_epoch_floor.entry(dst_principal).or_insert(0);
            *floor = (*floor).max(channel.epoch() + 1);
        }
        let dst_node = self.nodes.get_mut(dst).expect("checked above");
        if let Some(channel) = dst_node.recv_channels.remove(&src_principal) {
            let floor = dst_node.recv_epoch_floor.entry(src_principal).or_insert(0);
            *floor = (*floor).max(channel.epoch() + 1);
        }
    }

    /// Withdraws one contribution of the row holding `values` at `loc` (or,
    /// with `force`, wipes the row outright).  A tuple with remaining
    /// alternative derivations survives with its tag recomputed as the
    /// semiring sum of the surviving contributions; an unsupported tuple is
    /// removed and its recorded firings cascade as deletions.  A retraction
    /// whose row is absent is a no-op: per-link FIFO delivery plus the
    /// queue's polarity rank guarantee a tombstone never precedes its
    /// assertion, so an absent row was force-killed (expiry, node failure,
    /// sweep) and the withdrawn contribution already died with it.
    #[allow(clippy::too_many_arguments)]
    fn retract_row(
        &mut self,
        loc: &Value,
        pred: PredId,
        values: &Arc<[Value]>,
        tag: Option<&ProvTag>,
        force: bool,
        reason: &str,
        now: SimTime,
    ) {
        let node = self.nodes.get_mut(loc).expect("known location");
        let Some(seq) = node.store.seq_of(pred, values) else {
            return;
        };
        let entry = node
            .ledger
            .supports
            .get_mut(&seq)
            .expect("dynamics records every live row");
        if !force && entry.count > 1 {
            // Alternative derivations survive: consume the withdrawn
            // contribution and recompute the tag from the remainder —
            // exactly what the semiring sum of the surviving derivation
            // events yields (a DerivationCount tag literally decrements).
            // A tombstone (tag supplied) always withdraws a *firing*
            // contribution, never a base assertion — matching the tag
            // alone could hit a base entry with an equal tag (all tags are
            // `ProvTag::None` without semiring provenance) and silently
            // destroy base support.  Tag-less (scripted) retractions
            // conversely prefer base contributions.
            entry.count -= 1;
            let pos = match tag {
                Some(tag) => entry
                    .tags
                    .iter()
                    .position(|(is_base, t)| !*is_base && t == tag)
                    .or_else(|| entry.tags.iter().rposition(|(is_base, _)| !*is_base))
                    .unwrap_or(entry.tags.len() - 1),
                None => entry
                    .tags
                    .iter()
                    .position(|(is_base, _)| *is_base)
                    .unwrap_or(entry.tags.len() - 1),
            };
            let (was_base, _) = entry.tags.remove(pos);
            if was_base {
                entry.base_count -= 1;
                if entry.base_count == 0 {
                    node.ledger.base_rows.remove(&seq);
                }
                // Withdrawing base support without removing the row can
                // strand a recursion island (the tuple now rests purely on
                // firings that may form a cycle): the well-founded sweep
                // must check once the wave drains.
                self.needs_sweep = true;
            }
            if self.config.provenance != ProvenanceKind::None && !entry.tags.is_empty() {
                let mut merged = entry.tags[0].1.clone();
                for (_, t) in &entry.tags[1..] {
                    merged = merged.plus(t, &mut self.var_table);
                    self.metrics.provenance_ops += 1;
                }
                node.store.set_tag(pred, seq, merged);
            }
            return;
        }
        let Some((values, meta)) = node.store.remove_by_seq(pred, seq) else {
            return;
        };
        self.settle_removed(
            loc,
            pred,
            seq,
            values,
            meta.created_at,
            reason,
            now,
            force,
            None,
        );
    }

    /// Bookkeeping shared by every removal path (retraction, expiry, node
    /// failure, sweep): settle the ledger, prune the online provenance
    /// graph, stamp the offline archive, and withdraw the dead row's
    /// recorded firings — locally or as tombstone frames.  `suppress` drops
    /// routes into heads the caller is deleting itself (the sweep's
    /// zombie-to-zombie edges).
    #[allow(clippy::too_many_arguments)]
    fn settle_removed(
        &mut self,
        loc: &Value,
        pred: PredId,
        seq: u64,
        values: Arc<[Value]>,
        created_at: SimTime,
        reason: &str,
        now: SimTime,
        force: bool,
        suppress: Option<&HashSet<HeadKey>>,
    ) {
        let graph_mode = self.config.graph_mode;
        let archive_offline = self.config.archive_offline;
        let pred_name = self.symbols.name(pred).unwrap_or("?").to_string();
        if self.recorder.is_some() {
            let node_id = self.directory[loc].0 .0;
            self.trace_event(
                now,
                TraceEventKind::Retraction {
                    node: node_id,
                    pred: pred_name.clone(),
                    reason: reason.to_string(),
                },
            );
        }
        let mut routes = Vec::new();
        let mut agg_kills: Vec<u32> = Vec::new();
        {
            let node = self.nodes.get_mut(loc).expect("known location");
            let entry = node.ledger.supports.remove(&seq);
            node.ledger.base_rows.remove(&seq);
            node.ledger.retracted.insert((pred, values.clone()));
            if graph_mode != GraphMode::None || archive_offline {
                let loc_idx = entry.as_ref().and_then(|e| e.location_index);
                let key = tuple::render_located_parts(&pred_name, &values, loc_idx);
                if graph_mode != GraphMode::None {
                    node.local_prov.graph_mut().retract(&key);
                }
                if archive_offline {
                    node.archive.record_expiry(
                        &key,
                        &loc.to_string(),
                        reason,
                        created_at.as_micros(),
                        now.as_micros(),
                    );
                }
            }
            if let Some(firing_ids) = node.ledger.by_antecedent.remove(&seq) {
                for idx in firing_ids {
                    let firing = &mut node.ledger.firings[idx as usize];
                    if firing.alive {
                        firing.alive = false;
                        if firing.agg.is_some() {
                            // Aggregate candidates withdraw through group
                            // re-election, not directly: only the emitted
                            // best was ever visible downstream.
                            agg_kills.push(idx);
                        } else {
                            routes.push((
                                firing.dest.clone(),
                                firing.pred,
                                firing.values.clone(),
                                firing.tag.clone(),
                                firing.location_index,
                            ));
                        }
                    }
                }
            }
        }
        self.metrics.retractions += 1;
        self.needs_sweep = true;
        self.charge_compaction(loc, now);
        if force {
            // The row was wiped, not decremented to zero: alive upstream
            // firings whose contribution died with it must fall silent, or
            // their own later death would send a tombstone cancelling a
            // future legitimate re-derivation.
            self.silence_upstream(loc, pred, &values, now);
        }
        for idx in agg_kills {
            self.settle_agg_kill(loc, idx, now, true, true, suppress);
        }
        for (dest, rpred, rvalues, rtag, ridx) in routes {
            if suppress.is_some_and(|s| s.contains(&(dest.clone(), rpred, rvalues.clone()))) {
                continue;
            }
            self.route_retraction(loc, dest, rpred, rvalues, rtag, ridx, now);
        }
    }

    /// Charges any lazy-compaction debt the node's store accumulated while
    /// removing rows to the *owning node's* CPU lane (not the global
    /// clock): the walked seq-list entries are that node's housekeeping,
    /// and on parallel runs they must delay only its own partition.
    fn charge_compaction(&mut self, loc: &Value, now: SimTime) {
        let node = self.nodes.get_mut(loc).expect("known location");
        let walked = node.store.take_compaction_debt();
        if walked == 0 {
            return;
        }
        self.metrics.compaction_walked += walked;
        let cost = (walked as f64 * self.config.cost_model.compact_entry_us).round() as u64;
        if cost == 0 {
            return;
        }
        let done = node.run_cpu(now, SimTime::from_micros(cost));
        self.completion = self.completion.max(done);
    }

    /// Marks every alive firing (at any node) whose head is the force-killed
    /// row as dead, without withdrawing anything — its contribution was
    /// wiped together with the row.  Dead aggregate candidates still leave
    /// their group's competition (no withdrawal, no re-election: the head
    /// was wiped with its store, and a later re-derivation re-opens the
    /// group from scratch).
    fn silence_upstream(
        &mut self,
        dest: &Value,
        pred: PredId,
        values: &Arc<[Value]>,
        now: SimTime,
    ) {
        let key = (dest.clone(), pred, values.clone());
        for loc in self.locations.clone() {
            let mut agg_kills: Vec<u32> = Vec::new();
            let node = self.nodes.get_mut(&loc).expect("known location");
            if let Some(ids) = node.ledger.by_head.remove(&key) {
                for idx in ids {
                    let firing = &mut node.ledger.firings[idx as usize];
                    if firing.alive && firing.agg.is_some() {
                        agg_kills.push(idx);
                    }
                    firing.alive = false;
                }
            }
            for idx in agg_kills {
                self.settle_agg_kill(&loc, idx, now, false, false, None);
            }
        }
    }

    /// Settles the death of one aggregate-candidate firing at `loc`: the
    /// candidate leaves its group's multiset, and — only if it was the
    /// emitted best, with no tied twin left defending the value — the stale
    /// best is withdrawn downstream (`route_withdrawal`) and the surviving
    /// next-best, if any, is re-elected and re-emitted (`reelect`).  This
    /// is the fix for the stale-best-on-deletion bug: retracting the tuple
    /// that carried the current `a_MIN`/`a_MAX` winner now converges to the
    /// surviving candidates' best instead of freezing the dead one.
    /// `suppress` drops the withdrawal into heads the caller is deleting
    /// itself (the sweep's zombie-to-zombie edges).
    fn settle_agg_kill(
        &mut self,
        loc: &Value,
        idx: u32,
        now: SimTime,
        route_withdrawal: bool,
        reelect: bool,
        suppress: Option<&HashSet<HeadKey>>,
    ) {
        let (dest, pred, values, tag, location_index, agg) = {
            let node = self.nodes.get(loc).expect("known location");
            let firing = &node.ledger.firings[idx as usize];
            (
                firing.dest.clone(),
                firing.pred,
                firing.values.clone(),
                firing.tag.clone(),
                firing.location_index,
                firing.agg.clone().expect("aggregate firing"),
            )
        };
        let key = (agg.label.clone(), agg.group.clone());
        let node = self.nodes.get_mut(loc).expect("known location");
        let mut value_emptied = false;
        if let Some(groups) = node.agg_candidates.get_mut(&key) {
            if let Some(tags) = groups.get_mut(&agg.value) {
                if let Some(pos) = tags.iter().position(|t| *t == tag) {
                    tags.remove(pos);
                } else {
                    tags.pop();
                }
                if tags.is_empty() {
                    groups.remove(&agg.value);
                    value_emptied = true;
                }
            }
            if groups.is_empty() {
                node.agg_candidates.remove(&key);
            }
        }
        let Some((emitted_value, emitted_tag)) = node.agg_emitted.get(&key).cloned() else {
            return;
        };
        if agg.value != emitted_value || !value_emptied {
            // A losing candidate died, or a tied twin of the emitted best
            // still defends the value: the visible row stands.
            return;
        }
        node.agg_emitted.remove(&key);
        node.agg_state.remove(&key);
        let next_best = node.agg_candidates.get(&key).and_then(|groups| {
            let entry = match agg.func {
                AggFunc::Min => groups.first_key_value(),
                AggFunc::Max => groups.last_key_value(),
                AggFunc::Count | AggFunc::Sum => {
                    unreachable!("only Min/Max enter candidate competitions")
                }
            };
            entry.map(|(value, tags)| (*value, tags[0].clone()))
        });
        if route_withdrawal {
            let mut old_values = values.to_vec();
            old_values[agg.agg_index] = Value::Int(emitted_value);
            let old_values: Arc<[Value]> = Arc::from(old_values);
            if !suppress.is_some_and(|s| s.contains(&(dest.clone(), pred, old_values.clone()))) {
                self.route_retraction(
                    loc,
                    dest.clone(),
                    pred,
                    old_values,
                    emitted_tag,
                    location_index,
                    now,
                );
            }
        }
        if !reelect {
            return;
        }
        if let Some((best_value, best_tag)) = next_best {
            let principal = self.nodes[loc].principal;
            let node = self.nodes.get_mut(loc).expect("known location");
            node.agg_state.insert(key.clone(), best_value);
            node.agg_emitted.insert(key, (best_value, best_tag.clone()));
            let mut new_values = values.to_vec();
            new_values[agg.agg_index] = Value::Int(best_value);
            let row = BatchRow {
                values: Arc::from(new_values),
                tag: best_tag,
                origin: loc.clone(),
                asserted_by: Some(principal),
                shipped_graph: None,
                is_base: false,
                location_index,
            };
            if dest == *loc {
                self.enqueue_local(now, dest, pred, row, Polarity::Assert);
            } else {
                self.buffer_ship(now, loc, &dest, pred, row, Polarity::Assert);
            }
        }
    }

    /// Routes one withdrawn firing's deletion to its head's node: appended
    /// to the open local retraction batch, or to the open tombstone frame
    /// for remote heads (signed once per frame over polarity-marked
    /// payloads, honest wire accounting).
    #[allow(clippy::too_many_arguments)]
    fn route_retraction(
        &mut self,
        src: &Value,
        dest: Value,
        pred: PredId,
        values: Arc<[Value]>,
        tag: ProvTag,
        location_index: Option<usize>,
        now: SimTime,
    ) {
        let principal = self.nodes[src].principal;
        let row = BatchRow {
            values,
            tag,
            origin: src.clone(),
            asserted_by: Some(principal),
            shipped_graph: None,
            is_base: false,
            location_index,
        };
        if dest == *src {
            self.enqueue_local(now, dest, pred, row, Polarity::Retract);
        } else {
            self.buffer_ship(now, src, &dest, pred, row, Polarity::Retract);
        }
    }

    /// The reconciliation pass that closes support counting's recursion
    /// hole: two tuples can keep each other alive through a cycle of
    /// firings with no base support left (the classic counting-algorithm
    /// limitation; cf. log-based reconciliation of replicated state).  Once
    /// a retraction wave drains the queue, mark every row reachable from
    /// base support through alive firings; unsupported survivors are
    /// garbage-collected, with their alive firings' contributions withdrawn
    /// from supported heads (zombie-to-zombie edges die silently, since
    /// both ends are deleted here).
    fn well_founded_sweep(&mut self, now: SimTime) {
        let locs = self.locations.clone();
        let index_of: HashMap<&Value, usize> =
            locs.iter().enumerate().map(|(i, l)| (l, i)).collect();
        // Mark: seed with live rows holding base support, then propagate
        // through alive firings whose antecedents are all supported.
        let mut supported: Vec<HashSet<u64>> = vec![HashSet::new(); locs.len()];
        let mut work: VecDeque<(usize, u64)> = VecDeque::new();
        for (i, loc) in locs.iter().enumerate() {
            let node = &self.nodes[loc];
            let mut seeds: Vec<u64> = node
                .ledger
                .supports
                .iter()
                .filter(|(seq, entry)| {
                    entry.base_count > 0 && node.store.row_by_seq(entry.pred, **seq).is_some()
                })
                .map(|(seq, _)| *seq)
                .collect();
            seeds.sort_unstable();
            for seq in seeds {
                supported[i].insert(seq);
                work.push_back((i, seq));
            }
        }
        while let Some((i, seq)) = work.pop_front() {
            let node = &self.nodes[&locs[i]];
            let Some(ids) = node.ledger.by_antecedent.get(&seq) else {
                continue;
            };
            for &idx in ids {
                let firing = &node.ledger.firings[idx as usize];
                if !firing.alive {
                    continue;
                }
                if !firing.antecedents.iter().all(|a| supported[i].contains(a)) {
                    continue;
                }
                let Some(&j) = index_of.get(&firing.dest) else {
                    continue;
                };
                let head_node = &self.nodes[&locs[j]];
                if let Some(head_seq) = head_node.store.seq_of(firing.pred, &firing.values) {
                    if supported[j].insert(head_seq) {
                        work.push_back((j, head_seq));
                    }
                }
            }
        }
        // Sweep: collect the unsupported survivors, deterministically.
        // One zombie: (node index, seq, pred, values, created_at).
        type Zombie = (usize, u64, PredId, Arc<[Value]>, SimTime);
        let mut zombies: Vec<Zombie> = Vec::new();
        let mut zombie_heads: HashSet<HeadKey> = HashSet::new();
        for (i, loc) in locs.iter().enumerate() {
            let node = &self.nodes[loc];
            let mut dead: Vec<u64> = node
                .ledger
                .supports
                .keys()
                .copied()
                .filter(|seq| !supported[i].contains(seq))
                .collect();
            dead.sort_unstable();
            for seq in dead {
                let entry = &node.ledger.supports[&seq];
                if let Some((values, meta)) = node.store.row_by_seq(entry.pred, seq) {
                    zombies.push((i, seq, entry.pred, values.clone(), meta.created_at));
                    zombie_heads.insert((loc.clone(), entry.pred, values.clone()));
                }
            }
        }
        for (i, seq, pred, values, created_at) in zombies {
            let loc = locs[i].clone();
            let done = self.nodes.get_mut(&loc).expect("known location").run_cpu(
                now,
                SimTime::from_micros(self.config.cost_model.tuple_process_us),
            );
            self.completion = self.completion.max(done);
            if self
                .nodes
                .get_mut(&loc)
                .expect("known location")
                .store
                .remove_by_seq(pred, seq)
                .is_none()
            {
                continue;
            }
            self.settle_removed(
                &loc,
                pred,
                seq,
                values,
                created_at,
                "unsupported",
                done,
                false,
                Some(&zombie_heads),
            );
        }
    }
}

/// Writes one derivation into the node's graph / pointer / archive stores.
/// A free function so both the evaluation context (per-partition, though
/// graph-recording configs always run sequentially) and the engine's
/// deferred-materialization pass share it.
#[allow(clippy::too_many_arguments)]
fn record_provenance_graphs(
    config: &EngineConfig,
    node: &mut NodeRuntime,
    local: &Value,
    head_key: &str,
    head_location: &str,
    rule: &str,
    rule_location: &str,
    antecedents: &[(String, Value)],
    asserted_by: Option<PrincipalId>,
    at: SimTime,
) {
    let local_str = local.to_string();
    let antecedent_keys: Vec<String> = antecedents.iter().map(|(k, _)| k.clone()).collect();
    match config.graph_mode {
        GraphMode::None => {}
        GraphMode::Local => {
            node.local_prov.graph_mut().add_derivation(
                head_key,
                head_location,
                rule,
                rule_location,
                &antecedent_keys,
                asserted_by,
                None,
                at.as_micros(),
                None,
            );
        }
        GraphMode::Distributed => {
            let refs: Vec<AntecedentRef> = antecedents
                .iter()
                .map(|(key, origin)| {
                    if *origin == *local {
                        AntecedentRef::Local(key.clone())
                    } else {
                        AntecedentRef::Remote {
                            location: origin.to_string(),
                            key: key.clone(),
                        }
                    }
                })
                .collect();
            node.dist_prov.record_derivation(
                head_key,
                PointerDerivation {
                    rule: rule.to_string(),
                    antecedents: refs,
                },
            );
        }
    }
    if config.archive_offline {
        node.archive.record(ArchivedEntry {
            key: head_key.to_string(),
            location: local_str,
            annotation: format!("{rule}@{rule_location}"),
            derived_at: at.as_micros(),
            expired_at: None,
            pinned: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasn_datalog::parse_program;
    use pasn_net::CostModel;
    use pasn_provenance::traceback;

    const REACHABLE: &str = "
        r1 reachable(@S,D) :- link(@S,D).
        r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
    ";

    fn str_val(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    fn figure1_locations() -> Vec<Value> {
        vec![str_val("a"), str_val("b"), str_val("c")]
    }

    fn link(s: &str, d: &str) -> Tuple {
        Tuple::new("link", vec![str_val(s), str_val(d)])
    }

    fn insert_figure1_links(engine: &mut DistributedEngine) {
        engine.insert_fact(str_val("a"), link("a", "b")).unwrap();
        engine.insert_fact(str_val("a"), link("a", "c")).unwrap();
        engine.insert_fact(str_val("b"), link("b", "c")).unwrap();
    }

    fn fast_cost() -> CostModel {
        CostModel::zero_cpu()
    }

    #[test]
    fn ndlog_reachability_reaches_fixpoint_with_correct_results() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        let metrics = engine.run_to_fixpoint().unwrap();

        // a reaches b and c; b reaches c; c reaches nothing.
        let at_a: Vec<Tuple> = engine
            .query(&str_val("a"), "reachable")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(at_a.len(), 2);
        assert!(at_a.contains(&Tuple::new("reachable", vec![str_val("a"), str_val("c")])));
        assert_eq!(engine.query(&str_val("b"), "reachable").len(), 1);
        assert_eq!(engine.query(&str_val("c"), "reachable").len(), 0);

        // The link forwarding rule generated messages.
        assert!(metrics.messages > 0);
        assert!(metrics.bytes > 0);
        assert_eq!(metrics.signatures, 0);
        assert_eq!(metrics.verifications, 0);
        assert!(metrics.completion > SimTime::ZERO);
    }

    #[test]
    fn sendlog_reachability_signs_and_verifies_every_remote_tuple() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::sendlog().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        let metrics = engine.run_to_fixpoint().unwrap();

        assert_eq!(engine.query(&str_val("a"), "reachable").len(), 2);
        assert_eq!(metrics.signatures, metrics.messages);
        assert_eq!(metrics.verifications, metrics.messages);
        assert_eq!(metrics.verification_failures, 0);
        assert!(metrics.auth_bytes >= 64 * metrics.messages);
    }

    #[test]
    fn sendlog_prov_condenses_figure2_annotation() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::sendlog_prov().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        engine.run_to_fixpoint().unwrap();

        // reachable(a,c) has two derivations: directly via link(a,c), and via
        // b.  Both root at principal a's link assertions, so the condensed
        // provenance is just <p0> (the paper's <a>).
        let tuple = Tuple::new("reachable", vec![str_val("a"), str_val("c")]);
        let rendered = engine.render_provenance(&str_val("a"), &tuple).unwrap();
        assert_eq!(rendered, "<p0>");

        // reachable(b,c) is asserted purely from b's own link.
        let tuple_b = Tuple::new("reachable", vec![str_val("b"), str_val("c")]);
        assert_eq!(
            engine.render_provenance(&str_val("b"), &tuple_b).unwrap(),
            "<p1>"
        );
    }

    #[test]
    fn local_graph_mode_reconstructs_figure1_tree() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog()
            .with_cost_model(fast_cost())
            .with_graph_mode(GraphMode::Local);
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        let metrics = engine.run_to_fixpoint().unwrap();

        let graph = engine.provenance_graph(&str_val("a")).unwrap();
        let root = graph.find("reachable(@a,c)").expect("provenance recorded");
        let tree = graph.render_tree(root);
        assert!(tree.contains("union"), "{tree}");
        assert!(tree.contains("r1@a"));
        assert!(tree.contains("r2@"));
        assert!(tree.contains("link(@b,c) [base]"));
        // Local provenance piggybacks derivation subtrees on the wire.
        assert!(metrics.provenance_bytes > 0);
    }

    #[test]
    fn distributed_graph_mode_supports_traceback() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog()
            .with_cost_model(fast_cost())
            .with_graph_mode(GraphMode::Distributed);
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        let metrics = engine.run_to_fixpoint().unwrap();

        let stores = engine.distributed_stores();
        let result = traceback(&stores, "a", "reachable(@a,c)");
        assert!(result.base_tuples.len() >= 2, "{result:?}");
        assert!(result.remote_hops >= 1);
        // Distributed provenance adds no shipping overhead.
        assert_eq!(metrics.provenance_bytes, 0);
    }

    #[test]
    fn best_path_matches_dijkstra_on_a_small_topology() {
        let best_path = "
            sp1 path(@S,D,P,C) :- link(@S,D,C), P := f_init(S,D).
            sp2 path(@S,D,P,C) :- link(@S,Z,C1), bestPath(@Z,D,P2,C2), f_member(P2,S) == false, C := C1 + C2, P := f_concat(S,P2).
            sp3 bestPathCost(@S,D,a_MIN<C>) :- path(@S,D,P,C).
            sp4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        ";
        let program = parse_program(best_path).unwrap();
        let topo = pasn_net::Topology::random_out_degree(8, 3, 10, 11);
        let locations: Vec<Value> = topo.nodes().iter().map(|n| Value::Addr(n.0)).collect();
        let config = EngineConfig::ndlog().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &locations).unwrap();
        for l in topo.links() {
            engine
                .insert_fact(
                    Value::Addr(l.src.0),
                    Tuple::new(
                        "link",
                        vec![
                            Value::Addr(l.src.0),
                            Value::Addr(l.dst.0),
                            Value::Int(l.cost as i64),
                        ],
                    ),
                )
                .unwrap();
        }
        engine.run_to_fixpoint().unwrap();

        // Every pair's minimum bestPathCost equals the Dijkstra oracle.
        for src in topo.nodes() {
            let oracle = topo.shortest_path_costs(*src);
            let mut best: HashMap<u32, i64> = HashMap::new();
            for (t, _) in engine.query(&Value::Addr(src.0), "bestPathCost") {
                let dst = t.values[1].as_addr().unwrap();
                let cost = t.values[2].as_int().unwrap();
                let entry = best.entry(dst).or_insert(i64::MAX);
                *entry = (*entry).min(cost);
            }
            for dst in topo.nodes() {
                if dst == src {
                    continue;
                }
                let expected = oracle[dst] as i64;
                assert_eq!(
                    best.get(&dst.0).copied(),
                    Some(expected),
                    "best path {src}->{dst}"
                );
            }
        }
    }

    #[test]
    fn variant_overheads_follow_the_paper_ordering() {
        let program = parse_program(REACHABLE).unwrap();
        let mut results = Vec::new();
        for variant in crate::config::SystemVariant::ALL {
            let mut config = variant.config();
            config.cost_model = CostModel::paper_2008();
            let mut engine =
                DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
            insert_figure1_links(&mut engine);
            results.push(engine.run_to_fixpoint().unwrap());
        }
        let (nd, se, sp) = (&results[0], &results[1], &results[2]);
        assert!(se.completion > nd.completion, "SeNDLog slower than NDLog");
        assert!(
            sp.completion >= se.completion,
            "SeNDLogProv at least as slow as SeNDLog"
        );
        assert!(se.bytes > nd.bytes, "SeNDLog uses more bandwidth");
        assert!(sp.bytes > se.bytes, "SeNDLogProv uses the most bandwidth");
    }

    #[test]
    fn sendlog_context_program_executes_with_says_bindings() {
        // The SeNDlog form of the reachability program (paper Section 2.2):
        // s3 runs in the context of S, joins link-destination tuples asserted
        // by the upstream neighbour Z with reachability facts asserted by W,
        // and exports the derived tuple back to Z.
        let program = parse_program(
            "At S:\n\
             s1 reachable(S,D) :- link(S,D).\n\
             s2 linkD(D,S)@D :- link(S,D).\n\
             s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).",
        )
        .unwrap();
        let config = EngineConfig::sendlog().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        let metrics = engine.run_to_fixpoint().unwrap();
        // a's context ends up knowing it reaches c (directly and via b, the
        // latter derived remotely at b by rule s3 and exported back to a).
        let at_a = engine.query(&str_val("a"), "reachable");
        assert!(at_a
            .iter()
            .any(|(t, _)| t.values == vec![str_val("a"), str_val("c")]));
        // Rule s3 fired at b: it needed b's linkD and reachable facts.
        assert!(metrics.derivations > 3);
        assert!(metrics.signatures > 0);
    }

    /// A 5-node line `n0 → n1 → n2 → n3 → n4`: transitive closure ships
    /// several frames per directed link, so channel amortisation is visible.
    fn line5_locations() -> Vec<Value> {
        (0..5).map(|i| str_val(&format!("n{i}"))).collect()
    }

    fn insert_line5_links(engine: &mut DistributedEngine) {
        for i in 0..4 {
            let (s, d) = (format!("n{i}"), format!("n{}", i + 1));
            engine.insert_fact(str_val(&s), link(&s, &d)).unwrap();
        }
    }

    #[test]
    fn session_level_amortises_rsa_to_one_handshake_per_link() {
        let program = parse_program(REACHABLE).unwrap();
        let run = |config: EngineConfig| {
            let mut engine = DistributedEngine::new(
                &program,
                config.with_cost_model(fast_cost()),
                &line5_locations(),
            )
            .unwrap();
            insert_line5_links(&mut engine);
            let metrics = engine.run_to_fixpoint().unwrap();
            (metrics, engine)
        };
        let (rsa, rsa_engine) = run(EngineConfig::sendlog());
        let (session, session_engine) = run(EngineConfig::sendlog_session());

        // The fixpoint, derivations, orderings and frame stream are the
        // Rsa level's, bit for bit.
        assert_eq!(session.derivations, rsa.derivations);
        assert_eq!(session.tuples_stored, rsa.tuples_stored);
        assert_eq!(session.frames, rsa.frames);
        assert_eq!(session.batched_tuples, rsa.batched_tuples);
        for loc in line5_locations() {
            let want: Vec<Tuple> = rsa_engine
                .query_ordered(&loc, "reachable")
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            let got: Vec<Tuple> = session_engine
                .query_ordered(&loc, "reachable")
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            assert_eq!(got, want, "fixpoint ordering at {loc}");
        }

        // RSA work collapses to one sign (and one verify) per live
        // directed link; every frame is MAC-authenticated instead.
        assert_eq!(session.rsa_sign_ops, session.handshakes);
        assert_eq!(session.rsa_verify_ops, session.handshakes);
        assert!(session.handshakes > 0);
        assert!(session.handshakes < session.frames);
        assert_eq!(rsa.rsa_sign_ops, rsa.frames);
        assert_eq!(session.signatures, session.frames);
        assert_eq!(session.verifications, session.frames);
        assert_eq!(session.verification_failures, 0);
        assert!(session.hmac_ops >= 2 * session.frames);
        // Handshakes travel as real messages with honest byte accounting.
        assert_eq!(session.messages, session.frames + session.handshakes);
        assert!(session.auth_bytes > 0);
    }

    #[test]
    fn session_channels_rebind_on_expiry() {
        let program = parse_program(REACHABLE).unwrap();
        let run = |rebind: Option<u64>| {
            let mut config = EngineConfig::sendlog_session().with_cost_model(fast_cost());
            if let Some(frames) = rebind {
                config = config.with_channel_rebind_frames(frames);
            }
            let mut engine = DistributedEngine::new(&program, config, &line5_locations()).unwrap();
            insert_line5_links(&mut engine);
            engine.run_to_fixpoint().unwrap()
        };
        let unlimited = run(None);
        // A channel good for one frame rebinds before every frame: the
        // handshake count degenerates to the frame count, i.e. per-frame
        // RSA again — the cost the default amortises away.
        let exhausted = run(Some(1));
        assert_eq!(exhausted.handshakes, exhausted.frames);
        assert_eq!(exhausted.rsa_sign_ops, exhausted.handshakes);
        assert!(exhausted.handshakes > unlimited.handshakes);
        // The fixpoint does not care how often the links rebind.
        assert_eq!(exhausted.tuples_stored, unlimited.tuples_stored);
        assert_eq!(exhausted.derivations, unlimited.derivations);
        assert_eq!(exhausted.verification_failures, 0);
    }

    #[test]
    fn ttl_expiry_drops_soft_state() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog()
            .with_cost_model(fast_cost())
            .with_default_ttl_us(1_000_000);
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        engine.run_to_fixpoint().unwrap();
        assert!(!engine.query(&str_val("a"), "reachable").is_empty());
        // Base links are hard state; derived tuples expire.
        let dropped = engine.expire_all(SimTime::from_secs_f64(10.0));
        assert!(dropped > 0);
        assert_eq!(engine.query(&str_val("a"), "reachable").len(), 0);
        assert_eq!(engine.query(&str_val("a"), "link").len(), 2);
    }

    #[test]
    fn reactive_maintenance_defers_graph_construction() {
        let program = parse_program(REACHABLE).unwrap();
        let mut config = EngineConfig::ndlog()
            .with_cost_model(fast_cost())
            .with_graph_mode(GraphMode::Distributed);
        config.maintenance = MaintenanceMode::Reactive;
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        engine.run_to_fixpoint().unwrap();
        // Nothing materialised yet (only base records exist).
        let stores = engine.distributed_stores();
        assert!(stores["a"].derivations_of("reachable(@a,c)").is_empty());
        // Materialise on demand (e.g. after an anomaly is detected).
        let materialised = engine.materialize_provenance();
        assert!(materialised > 0);
        let stores = engine.distributed_stores();
        assert!(!stores["a"].derivations_of("reachable(@a,c)").is_empty());
    }

    #[test]
    fn joins_probe_secondary_indexes() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        // The planner's specs were installed on every node store up front.
        assert!(!engine.compiled().index_specs().is_empty());
        insert_figure1_links(&mut engine);
        let metrics = engine.run_to_fixpoint().unwrap();
        // Every localized reachability join keys on the shared location
        // variable, so all join work goes through the index path.
        assert!(metrics.index_probes > 0, "{metrics}");
        assert!(metrics.index_hits > 0, "{metrics}");
        assert_eq!(metrics.scan_probes, 0, "{metrics}");
        // The results are the same as the scan-based engine produced.
        assert_eq!(engine.query(&str_val("a"), "reachable").len(), 2);
        assert_eq!(engine.query(&str_val("b"), "reachable").len(), 1);
    }

    #[test]
    fn cross_products_fall_back_to_ordered_scans() {
        // q and r share no value variables (SeNDlog context, so there are
        // no location columns either): the join has no bound key columns
        // and must scan.
        let program = parse_program("At S:\n x p(X,Y) :- q(X), r(Y).").unwrap();
        let config = EngineConfig::ndlog().with_cost_model(fast_cost());
        let locations = vec![str_val("a")];
        let mut engine = DistributedEngine::new(&program, config, &locations).unwrap();
        engine
            .insert_fact(str_val("a"), Tuple::new("q", vec![Value::Int(1)]))
            .unwrap();
        engine
            .insert_fact(str_val("a"), Tuple::new("r", vec![Value::Int(2)]))
            .unwrap();
        let metrics = engine.run_to_fixpoint().unwrap();
        assert_eq!(engine.query(&str_val("a"), "p").len(), 1);
        assert!(metrics.scan_probes > 0, "{metrics}");
        assert_eq!(metrics.index_probes, 0, "{metrics}");
    }

    #[test]
    fn arity_mismatch_is_rejected_at_insertion() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        let err = engine
            .insert_fact(
                str_val("a"),
                Tuple::new("link", vec![str_val("a"), str_val("b"), Value::Int(9)]),
            )
            .unwrap_err();
        match err {
            EngineError::ArityMismatch {
                predicate,
                expected,
                got,
            } => {
                assert_eq!(predicate, "link");
                assert_eq!((expected, got), (2, 3));
            }
            other => panic!("expected arity mismatch, got {other}"),
        }
        // Predicates unknown to the program are not constrained.
        engine
            .insert_fact(str_val("a"), Tuple::new("sensor", vec![Value::Int(1)]))
            .unwrap();
    }

    #[test]
    fn unknown_location_is_an_error() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        let err = engine
            .insert_fact(str_val("zz"), link("zz", "a"))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownLocation(_)));
        assert!(err.to_string().contains("unknown location"));
    }

    fn sorted_rows(engine: &DistributedEngine, loc: &Value, pred: &str) -> Vec<String> {
        let mut rows: Vec<String> = engine
            .query(loc, pred)
            .into_iter()
            .map(|(t, m)| format!("{:?} {}", t.values, m.tag))
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn retraction_is_provenance_exact_under_derivation_counts() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog()
            .with_cost_model(fast_cost())
            .with_provenance(ProvenanceKind::Count)
            .with_dynamics();
        let reach_ac = Tuple::new("reachable", vec![str_val("a"), str_val("c")]);
        let reach_bc = Tuple::new("reachable", vec![str_val("b"), str_val("c")]);

        // Static fixpoint: reachable(a,c) has two derivations (directly via
        // link(a,c), and via b).
        let mut engine =
            DistributedEngine::new(&program, config.clone(), &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        engine.run_to_fixpoint().unwrap();
        assert_eq!(
            engine.render_provenance(&str_val("a"), &reach_ac).unwrap(),
            "<2 derivations>"
        );

        // Retract link(a,c): the direct derivation is withdrawn, the tuple
        // survives with a decremented DerivationCount.
        let script = ChurnScript::new().at(
            5_000_000,
            ChurnEvent::Retract {
                location: str_val("a"),
                tuple: link("a", "c"),
            },
        );
        let mut engine =
            DistributedEngine::new(&program, config.clone(), &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        let metrics = engine.run_scenario(&script).unwrap();
        assert_eq!(
            engine.render_provenance(&str_val("a"), &reach_ac).unwrap(),
            "<1 derivations>"
        );
        assert_eq!(metrics.churn_events, 1);
        // link(a,c) itself plus the localized intermediate tuple derived
        // solely from it; reachable(a,c) survives on the path through b.
        assert!(metrics.retractions >= 1, "{metrics}");
        assert_eq!(engine.query(&str_val("a"), "reachable").len(), 2);

        // Retract link(a,b) too: reachable(a,c) loses its last derivation
        // and cascades away; b's own state is untouched.
        let script = script.at(
            6_000_000,
            ChurnEvent::Retract {
                location: str_val("a"),
                tuple: link("a", "b"),
            },
        );
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        let metrics = engine.run_scenario(&script).unwrap();
        assert!(engine.query(&str_val("a"), "reachable").is_empty());
        assert_eq!(
            engine.render_provenance(&str_val("b"), &reach_bc).unwrap(),
            "<1 derivations>"
        );
        assert!(metrics.retractions > 2, "the cascade removed derived state");
    }

    #[test]
    fn link_flap_reconverges_to_the_never_flapped_fixpoint() {
        let program = parse_program(REACHABLE).unwrap();
        let config = || EngineConfig::sendlog_session().with_cost_model(fast_cost());

        let mut stat = DistributedEngine::new(&program, config(), &line5_locations()).unwrap();
        insert_line5_links(&mut stat);
        let static_metrics = stat.run_to_fixpoint().unwrap();

        // Flap n1 → n2 down, then back up: everything derived through the
        // link is withdrawn (tombstones across nodes), then re-derived.
        let script = ChurnScript::new()
            .link_down(5_000_000, str_val("n1"), str_val("n2"))
            .link_up(10_000_000, str_val("n1"), str_val("n2"));
        let mut flapped = DistributedEngine::new(&program, config(), &line5_locations()).unwrap();
        insert_line5_links(&mut flapped);
        let metrics = flapped.run_scenario(&script).unwrap();

        for loc in line5_locations() {
            assert_eq!(
                sorted_rows(&flapped, &loc, "reachable"),
                sorted_rows(&stat, &loc, "reachable"),
                "post-flap fixpoint at {loc}"
            );
            assert_eq!(
                sorted_rows(&flapped, &loc, "link"),
                sorted_rows(&stat, &loc, "link"),
            );
        }
        assert_eq!(metrics.tuples_stored, static_metrics.tuples_stored);
        assert_eq!(metrics.churn_events, 2);
        assert!(metrics.retractions > 0, "{metrics}");
        assert!(metrics.rederivations > 0, "{metrics}");
        assert!(metrics.tombstone_frames > 0, "{metrics}");
        // The flapped link's channel was evicted and rebound with a fresh
        // epoch: more handshakes than the static run, no replay anomalies.
        assert!(metrics.handshakes > static_metrics.handshakes);
        assert_eq!(metrics.verification_failures, 0);
    }

    #[test]
    fn scheduled_expiry_kills_soft_state_mid_run() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog()
            .with_cost_model(fast_cost())
            .with_default_ttl_us(2_000_000)
            .with_dynamics();
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        // No churn events at all: the TTL alone kills every derived tuple
        // during the run — no manual expire_all needed.
        let metrics = engine.run_scenario(&ChurnScript::new()).unwrap();
        assert_eq!(engine.query(&str_val("a"), "reachable").len(), 0);
        assert_eq!(engine.query(&str_val("a"), "link").len(), 2, "hard state");
        assert!(metrics.retractions > 0);
        assert_eq!(metrics.churn_events, 0);
    }

    #[test]
    fn node_fail_and_rejoin_reconverge() {
        let program = parse_program(REACHABLE).unwrap();
        let config = || EngineConfig::sendlog().with_cost_model(fast_cost());
        let mut stat = DistributedEngine::new(&program, config(), &figure1_locations()).unwrap();
        insert_figure1_links(&mut stat);
        stat.run_to_fixpoint().unwrap();

        let script = ChurnScript::new()
            .node_fail(5_000_000, str_val("b"))
            .node_rejoin(9_000_000, str_val("b"));
        let mut churned = DistributedEngine::new(&program, config(), &figure1_locations()).unwrap();
        insert_figure1_links(&mut churned);
        let metrics = churned.run_scenario(&script).unwrap();
        for loc in figure1_locations() {
            assert_eq!(
                sorted_rows(&churned, &loc, "reachable"),
                sorted_rows(&stat, &loc, "reachable"),
                "post-rejoin fixpoint at {loc}"
            );
        }
        assert!(metrics.retractions > 0);
        assert!(metrics.rederivations > 0);
    }

    #[test]
    fn tombstones_never_consume_base_support() {
        // p(1) is both base-asserted and derived from q(1).  Without
        // semiring provenance every contribution tag is `ProvTag::None`,
        // so a tombstone for the derived contribution could match the base
        // entry by tag alone — it must not: after retracting q(1), p(1)
        // survives on its base assertion.
        let program = parse_program("At S:\n r1 p(X) :- q(X).").unwrap();
        let config = EngineConfig::ndlog()
            .with_cost_model(fast_cost())
            .with_dynamics();
        let locations = vec![str_val("a")];
        let mut engine = DistributedEngine::new(&program, config, &locations).unwrap();
        let p1 = Tuple::new("p", vec![Value::Int(1)]);
        engine
            .insert_fact(str_val("a"), Tuple::new("q", vec![Value::Int(1)]))
            .unwrap();
        engine.insert_fact(str_val("a"), p1.clone()).unwrap();
        let script = ChurnScript::new().at(
            5_000_000,
            ChurnEvent::Retract {
                location: str_val("a"),
                tuple: Tuple::new("q", vec![Value::Int(1)]),
            },
        );
        engine.run_scenario(&script).unwrap();
        assert_eq!(engine.query(&str_val("a"), "q").len(), 0);
        assert!(
            engine
                .query(&str_val("a"), "p")
                .iter()
                .any(|(t, _)| *t == p1),
            "base-asserted p(1) must survive the derived contribution's tombstone"
        );
    }

    #[test]
    fn recursive_self_support_is_swept() {
        // p and q support each other; only the base q(1) grounds them.
        // Counting alone would keep the pair alive after the base is
        // retracted — the well-founded sweep must collect the cycle.
        let program = parse_program(
            "At S:\n\
             r1 p(X) :- q(X).\n\
             r2 q(X) :- p(X).",
        )
        .unwrap();
        let config = EngineConfig::ndlog()
            .with_cost_model(fast_cost())
            .with_dynamics();
        let locations = vec![str_val("a")];
        let mut engine = DistributedEngine::new(&program, config, &locations).unwrap();
        engine
            .insert_fact(str_val("a"), Tuple::new("q", vec![Value::Int(1)]))
            .unwrap();
        let script = ChurnScript::new().at(
            5_000_000,
            ChurnEvent::Retract {
                location: str_val("a"),
                tuple: Tuple::new("q", vec![Value::Int(1)]),
            },
        );
        let metrics = engine.run_scenario(&script).unwrap();
        assert_eq!(engine.query(&str_val("a"), "p").len(), 0);
        assert_eq!(engine.query(&str_val("a"), "q").len(), 0);
        assert!(metrics.retractions >= 2);
    }

    #[test]
    fn dynamics_cannot_be_armed_after_evaluation() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        engine.run_to_fixpoint().unwrap();
        let err = engine.run_scenario(&ChurnScript::new()).unwrap_err();
        assert!(err.to_string().contains("dynamics"));
        // And retractions without dynamics are refused up front.
        let err = engine
            .retract_fact_at(str_val("a"), link("a", "b"), SimTime::ZERO)
            .unwrap_err();
        assert!(err.to_string().contains("dynamics"));
    }

    #[test]
    fn metrics_accessors_and_queries() {
        let program = parse_program(REACHABLE).unwrap();
        let config = EngineConfig::ndlog().with_cost_model(fast_cost());
        let mut engine = DistributedEngine::new(&program, config, &figure1_locations()).unwrap();
        insert_figure1_links(&mut engine);
        let metrics = engine.run_to_fixpoint().unwrap();
        assert_eq!(engine.metrics(), &metrics);
        assert_eq!(engine.locations().len(), 3);
        assert_eq!(engine.principal_of(&str_val("b")), Some(PrincipalId(1)));
        assert_eq!(engine.principal_of(&str_val("zz")), None);
        let everywhere = engine.query_all("reachable");
        assert_eq!(everywhere.len(), 3);
        assert!(metrics.tuples_stored >= 6);
        assert!(metrics.derivations >= 3);
    }
}
