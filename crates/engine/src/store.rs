//! Per-node soft-state tuple storage with secondary hash indexes.
//!
//! Declarative networks maintain derived state as *soft state*: every tuple
//! carries a creation timestamp and (optionally) a time-to-live, and expires
//! unless refreshed (Section 2.1 of the paper, citing the sliding-window
//! formulation of reference [2]).  Each node owns one [`NodeStore`] holding
//! its base and derived relations together with per-tuple metadata used by
//! the provenance layer.
//!
//! Two mechanisms keep rule joins cheap and deterministic:
//!
//! * **Secondary indexes** — [`NodeStore::register_index`] installs a hash
//!   index over `(predicate, key_columns)` (the planner's
//!   `IndexSpec`s); [`NodeStore::probe`] then answers a join probe in time
//!   proportional to the matching bucket instead of the whole relation.
//!   Indexes are maintained through [`NodeStore::insert`],
//!   [`NodeStore::remove`], and [`NodeStore::expire`].
//! * **Insertion sequence numbers** — every stored tuple carries a
//!   monotonically increasing sequence number.  Index buckets follow it by
//!   construction, so the probe path is deterministic with no sorting at
//!   all; the unindexed fallback ([`NodeStore::scan_ordered`]) still sorts,
//!   but by the scalar sequence number instead of comparing full tuple
//!   values as the scan-based evaluator did.

use crate::tuple::Tuple;
use pasn_datalog::Value;
use pasn_net::SimTime;
use pasn_provenance::ProvTag;
use std::collections::HashMap;

/// Metadata attached to every stored tuple.
#[derive(Clone, Debug)]
pub struct TupleMeta {
    /// Provenance annotation (semiring tag).
    pub tag: ProvTag,
    /// Simulated time the tuple was inserted or derived locally.
    pub created_at: SimTime,
    /// Expiry time for soft-state tuples, `None` for hard state.
    pub expires_at: Option<SimTime>,
    /// Location value of the node that derived / asserted the tuple (equal to
    /// the local location for local derivations and base facts).  Distributed
    /// provenance uses it as the pointer target for traceback.
    pub origin: Value,
    /// Principal id of the asserting node (`None` when authentication is
    /// disabled).
    pub asserted_by: Option<u32>,
}

/// Result of inserting a tuple into a store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOutcome {
    /// The tuple was not present; rule evaluation should be triggered.
    New,
    /// The tuple was already present; its provenance tag was merged and
    /// changed (no re-derivation is triggered, see the crate docs).
    MergedTag,
    /// The tuple was already present with identical provenance.
    Duplicate,
}

/// One stored tuple: metadata plus its insertion sequence number.
#[derive(Clone, Debug)]
struct Row {
    meta: TupleMeta,
    seq: u64,
}

/// A hash index over one projection of a relation: bucket key (the projected
/// values at the index's key columns) → full row keys, in insertion order.
type IndexBuckets = HashMap<Vec<Value>, Vec<Vec<Value>>>;

/// One relation: its rows plus any secondary indexes registered over it.
#[derive(Clone, Debug, Default)]
struct Table {
    rows: HashMap<Vec<Value>, Row>,
    indexes: HashMap<Vec<usize>, IndexBuckets>,
}

impl Table {
    /// Projects `values` onto `key_columns`; `None` if any column is out of
    /// range (such a row can never match a probe on this index).
    fn project(values: &[Value], key_columns: &[usize]) -> Option<Vec<Value>> {
        key_columns
            .iter()
            .map(|&c| values.get(c).cloned())
            .collect()
    }

    /// Adds a freshly inserted row to every index.
    fn index_insert(&mut self, values: &[Value]) {
        for (key_columns, buckets) in &mut self.indexes {
            if let Some(key) = Self::project(values, key_columns) {
                buckets.entry(key).or_default().push(values.to_vec());
            }
        }
    }

    /// Removes a row from every index.
    fn index_remove(&mut self, values: &[Value]) {
        for (key_columns, buckets) in &mut self.indexes {
            if let Some(key) = Self::project(values, key_columns) {
                if let Some(bucket) = buckets.get_mut(&key) {
                    bucket.retain(|row| row != values);
                    if bucket.is_empty() {
                        buckets.remove(&key);
                    }
                }
            }
        }
    }

    /// Removes a row and keeps the indexes consistent; returns its metadata.
    fn remove_row(&mut self, values: &[Value]) -> Option<TupleMeta> {
        let row = self.rows.remove(values)?;
        self.index_remove(values);
        Some(row.meta)
    }
}

/// The relations stored at one node.
#[derive(Clone, Debug, Default)]
pub struct NodeStore {
    tables: HashMap<String, Table>,
    next_seq: u64,
}

impl NodeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a secondary hash index over `predicate` keyed on
    /// `key_columns`.  Registering is idempotent; if the relation already
    /// holds tuples the index is (re)built from them, and it is maintained
    /// incrementally afterwards.
    pub fn register_index(&mut self, predicate: &str, key_columns: &[usize]) {
        let table = self.tables.entry(predicate.to_string()).or_default();
        if table.indexes.contains_key(key_columns) {
            return;
        }
        let mut ordered: Vec<(u64, &Vec<Value>)> = table
            .rows
            .iter()
            .map(|(values, row)| (row.seq, values))
            .collect();
        ordered.sort_unstable_by_key(|(seq, _)| *seq);
        let mut buckets: IndexBuckets = HashMap::new();
        for (_, values) in ordered {
            if let Some(key) = Table::project(values, key_columns) {
                buckets.entry(key).or_default().push(values.clone());
            }
        }
        table.indexes.insert(key_columns.to_vec(), buckets);
    }

    /// True if an index over `(predicate, key_columns)` is installed.
    pub fn has_index(&self, predicate: &str, key_columns: &[usize]) -> bool {
        self.tables
            .get(predicate)
            .is_some_and(|t| t.indexes.contains_key(key_columns))
    }

    /// Probes the secondary index of `predicate` keyed on `key_columns` for
    /// rows matching `key`, in insertion order.  Returns `None` when no such
    /// index is installed (the caller falls back to a scan); an installed
    /// index with no matches yields an empty iterator.
    pub fn probe<'a>(
        &'a self,
        predicate: &'a str,
        key_columns: &[usize],
        key: &[Value],
    ) -> Option<impl Iterator<Item = (Tuple, &'a TupleMeta)> + 'a> {
        let table = self.tables.get(predicate)?;
        let index = table.indexes.get(key_columns)?;
        let rows = &table.rows;
        Some(
            index
                .get(key)
                .into_iter()
                .flatten()
                .filter_map(move |values| {
                    rows.get(values)
                        .map(|row| (Tuple::new(predicate, values.clone()), &row.meta))
                }),
        )
    }

    /// Inserts a tuple.  If an identical tuple already exists, provenance
    /// tags are combined with the semiring `+` via `combine` (alternative
    /// derivations of the same tuple).
    pub fn insert<F>(&mut self, tuple: &Tuple, meta: TupleMeta, combine: F) -> InsertOutcome
    where
        F: FnOnce(&ProvTag, &ProvTag) -> ProvTag,
    {
        let table = self.tables.entry(tuple.predicate.clone()).or_default();
        match table.rows.get_mut(&tuple.values) {
            None => {
                let seq = self.next_seq;
                self.next_seq += 1;
                table.rows.insert(tuple.values.clone(), Row { meta, seq });
                table.index_insert(&tuple.values);
                InsertOutcome::New
            }
            Some(existing) => {
                let merged = combine(&existing.meta.tag, &meta.tag);
                // Refresh the soft-state lifetime on re-derivation.
                existing.meta.expires_at = match (existing.meta.expires_at, meta.expires_at) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
                if merged != existing.meta.tag {
                    existing.meta.tag = merged;
                    InsertOutcome::MergedTag
                } else {
                    InsertOutcome::Duplicate
                }
            }
        }
    }

    /// Looks up the metadata of an exact tuple.
    pub fn get(&self, tuple: &Tuple) -> Option<&TupleMeta> {
        self.tables
            .get(&tuple.predicate)?
            .rows
            .get(&tuple.values)
            .map(|row| &row.meta)
    }

    /// True if the exact tuple is stored.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.get(tuple).is_some()
    }

    /// Removes an exact tuple, returning its metadata.  Secondary indexes
    /// stay consistent.
    pub fn remove(&mut self, tuple: &Tuple) -> Option<TupleMeta> {
        self.tables
            .get_mut(&tuple.predicate)?
            .remove_row(&tuple.values)
    }

    /// Iterates over all tuples of `predicate` with their metadata, in
    /// arbitrary order.
    pub fn scan<'a>(
        &'a self,
        predicate: &'a str,
    ) -> impl Iterator<Item = (Tuple, &'a TupleMeta)> + 'a {
        self.tables
            .get(predicate)
            .into_iter()
            .flat_map(move |table| {
                table
                    .rows
                    .iter()
                    .map(move |(values, row)| (Tuple::new(predicate, values.clone()), &row.meta))
            })
    }

    /// All tuples of `predicate` in insertion order — the deterministic
    /// iteration the evaluator uses for unindexed (full-scan) joins.
    pub fn scan_ordered<'a>(&'a self, predicate: &str) -> Vec<(Tuple, &'a TupleMeta)> {
        let mut rows: Vec<(u64, Tuple, &TupleMeta)> = self
            .tables
            .get(predicate)
            .into_iter()
            .flat_map(|table| {
                table.rows.iter().map(|(values, row)| {
                    (row.seq, Tuple::new(predicate, values.clone()), &row.meta)
                })
            })
            .collect();
        rows.sort_unstable_by_key(|(seq, _, _)| *seq);
        rows.into_iter().map(|(_, t, m)| (t, m)).collect()
    }

    /// All predicates with at least one stored tuple.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.tables
            .iter()
            .filter(|(_, t)| !t.rows.is_empty())
            .map(|(p, _)| p.as_str())
    }

    /// Number of tuples of `predicate`.
    pub fn count(&self, predicate: &str) -> usize {
        self.tables.get(predicate).map_or(0, |t| t.rows.len())
    }

    /// Total number of stored tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|t| t.rows.len()).sum()
    }

    /// Approximate storage footprint in bytes (tuple encodings plus tag
    /// sizes are charged by the caller, which has access to the var table).
    pub fn total_tuple_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|(pred, table)| {
                table
                    .rows
                    .keys()
                    .map(|values| Tuple::new(pred.clone(), values.clone()).encoded_len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Removes all tuples whose TTL has passed; returns the removed tuples.
    /// Secondary indexes stay consistent.
    pub fn expire(&mut self, now: SimTime) -> Vec<Tuple> {
        let mut removed = Vec::new();
        for (pred, table) in &mut self.tables {
            let expired: Vec<Vec<Value>> = table
                .rows
                .iter()
                .filter(|(_, row)| row.meta.expires_at.is_some_and(|e| e <= now))
                .map(|(values, _)| values.clone())
                .collect();
            for values in expired {
                table.remove_row(&values);
                removed.push(Tuple::new(pred.clone(), values));
            }
        }
        removed
    }

    /// Verifies that every secondary index exactly mirrors its base table:
    /// each row appears exactly once in the right bucket of every index,
    /// every bucket entry references a live row with the matching
    /// projection, and buckets follow insertion order.  Returns a
    /// description of the first inconsistency found.
    pub fn check_index_consistency(&self) -> Result<(), String> {
        for (pred, table) in &self.tables {
            for (key_columns, buckets) in &table.indexes {
                let mut indexed = 0usize;
                for (key, bucket) in buckets {
                    if bucket.is_empty() {
                        return Err(format!("{pred}: empty bucket retained for key {key:?}"));
                    }
                    let mut last_seq = None;
                    for values in bucket {
                        let row = table.rows.get(values).ok_or_else(|| {
                            format!("{pred}: index entry {values:?} has no backing row")
                        })?;
                        if Table::project(values, key_columns).as_deref() != Some(&key[..]) {
                            return Err(format!(
                                "{pred}: row {values:?} filed under wrong key {key:?}"
                            ));
                        }
                        if let Some(prev) = last_seq {
                            if row.seq <= prev {
                                return Err(format!(
                                    "{pred}: bucket {key:?} violates insertion order"
                                ));
                            }
                        }
                        last_seq = Some(row.seq);
                        indexed += 1;
                    }
                }
                let expected = table
                    .rows
                    .keys()
                    .filter(|values| Table::project(values, key_columns).is_some())
                    .count();
                if indexed != expected {
                    return Err(format!(
                        "{pred}: index on {key_columns:?} holds {indexed} rows, table holds {expected}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasn_provenance::{ProvTag, TrustLevel};

    fn meta(tag: ProvTag, expires: Option<u64>) -> TupleMeta {
        TupleMeta {
            tag,
            created_at: SimTime::ZERO,
            expires_at: expires.map(SimTime::from_micros),
            origin: Value::Addr(0),
            asserted_by: Some(0),
        }
    }

    fn link(a: u32, b: u32) -> Tuple {
        Tuple::new("link", vec![Value::Addr(a), Value::Addr(b)])
    }

    #[test]
    fn insert_scan_and_counts() {
        let mut store = NodeStore::new();
        assert_eq!(
            store.insert(&link(0, 1), meta(ProvTag::None, None), |a, _| a.clone()),
            InsertOutcome::New
        );
        assert_eq!(
            store.insert(&link(0, 2), meta(ProvTag::None, None), |a, _| a.clone()),
            InsertOutcome::New
        );
        assert_eq!(store.count("link"), 2);
        assert_eq!(store.total_tuples(), 2);
        assert!(store.contains(&link(0, 1)));
        assert!(!store.contains(&link(1, 0)));
        assert_eq!(store.scan("link").count(), 2);
        assert_eq!(store.scan("reachable").count(), 0);
        assert_eq!(store.predicates().collect::<Vec<_>>(), vec!["link"]);
        assert!(store.total_tuple_bytes() > 0);
    }

    #[test]
    fn duplicate_inserts_merge_tags_without_retrigger() {
        let mut store = NodeStore::new();
        let t = link(0, 1);
        assert_eq!(
            store.insert(&t, meta(ProvTag::Trust(TrustLevel(1)), None), |a, b| {
                if let (ProvTag::Trust(x), ProvTag::Trust(y)) = (a, b) {
                    ProvTag::Trust(TrustLevel(x.0.max(y.0)))
                } else {
                    a.clone()
                }
            }),
            InsertOutcome::New
        );
        // Same tuple, higher trust: tag merges.
        assert_eq!(
            store.insert(&t, meta(ProvTag::Trust(TrustLevel(3)), None), |a, b| {
                if let (ProvTag::Trust(x), ProvTag::Trust(y)) = (a, b) {
                    ProvTag::Trust(TrustLevel(x.0.max(y.0)))
                } else {
                    a.clone()
                }
            }),
            InsertOutcome::MergedTag
        );
        // Same tuple, lower trust: nothing changes.
        assert_eq!(
            store.insert(&t, meta(ProvTag::Trust(TrustLevel(2)), None), |a, b| {
                if let (ProvTag::Trust(x), ProvTag::Trust(y)) = (a, b) {
                    ProvTag::Trust(TrustLevel(x.0.max(y.0)))
                } else {
                    a.clone()
                }
            }),
            InsertOutcome::Duplicate
        );
        assert_eq!(store.get(&t).unwrap().tag, ProvTag::Trust(TrustLevel(3)));
        assert_eq!(store.total_tuples(), 1);
    }

    #[test]
    fn soft_state_expiry() {
        let mut store = NodeStore::new();
        store.insert(&link(0, 1), meta(ProvTag::None, Some(100)), |a, _| {
            a.clone()
        });
        store.insert(&link(0, 2), meta(ProvTag::None, None), |a, _| a.clone());
        store.insert(&link(0, 3), meta(ProvTag::None, Some(500)), |a, _| {
            a.clone()
        });
        let removed = store.expire(SimTime::from_micros(200));
        assert_eq!(removed, vec![link(0, 1)]);
        assert_eq!(store.total_tuples(), 2);
        // Expiry of the remaining soft-state tuple later.
        assert_eq!(store.expire(SimTime::from_micros(1_000)).len(), 1);
        assert_eq!(store.total_tuples(), 1);
    }

    #[test]
    fn re_derivation_refreshes_ttl() {
        let mut store = NodeStore::new();
        let t = link(0, 1);
        store.insert(&t, meta(ProvTag::None, Some(100)), |a, _| a.clone());
        store.insert(&t, meta(ProvTag::None, Some(300)), |a, _| a.clone());
        assert_eq!(
            store.get(&t).unwrap().expires_at,
            Some(SimTime::from_micros(300))
        );
        // A hard-state re-derivation clears the TTL entirely.
        store.insert(&t, meta(ProvTag::None, None), |a, _| a.clone());
        assert_eq!(store.get(&t).unwrap().expires_at, None);
        assert!(store.expire(SimTime::from_micros(10_000)).is_empty());
    }

    #[test]
    fn remove_returns_metadata() {
        let mut store = NodeStore::new();
        store.insert(&link(0, 1), meta(ProvTag::None, None), |a, _| a.clone());
        assert!(store.remove(&link(0, 1)).is_some());
        assert!(store.remove(&link(0, 1)).is_none());
        assert_eq!(store.total_tuples(), 0);
    }

    // ---- secondary indexes ------------------------------------------------

    #[test]
    fn probe_answers_only_the_matching_bucket() {
        let mut store = NodeStore::new();
        store.register_index("link", &[0]);
        for (a, b) in [(0, 1), (0, 2), (1, 2), (2, 0)] {
            store.insert(&link(a, b), meta(ProvTag::None, None), |a, _| a.clone());
        }
        let hits: Vec<Tuple> = store
            .probe("link", &[0], &[Value::Addr(0)])
            .unwrap()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(hits, vec![link(0, 1), link(0, 2)], "insertion order");
        assert_eq!(
            store
                .probe("link", &[0], &[Value::Addr(9)])
                .unwrap()
                .count(),
            0
        );
        // Probing an unregistered index reports None (fall back to scan).
        assert!(store.probe("link", &[1], &[Value::Addr(2)]).is_none());
        assert!(store.probe("other", &[0], &[Value::Addr(0)]).is_none());
        store.check_index_consistency().unwrap();
    }

    #[test]
    fn register_index_backfills_existing_rows_in_insertion_order() {
        let mut store = NodeStore::new();
        for (a, b) in [(5, 1), (5, 9), (3, 1), (5, 4)] {
            store.insert(&link(a, b), meta(ProvTag::None, None), |a, _| a.clone());
        }
        store.register_index("link", &[0]);
        // Idempotent re-registration.
        store.register_index("link", &[0]);
        let hits: Vec<Tuple> = store
            .probe("link", &[0], &[Value::Addr(5)])
            .unwrap()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(hits, vec![link(5, 1), link(5, 9), link(5, 4)]);
        store.check_index_consistency().unwrap();
    }

    #[test]
    fn indexes_survive_interleaved_insert_remove_expire() {
        let mut store = NodeStore::new();
        store.register_index("link", &[0]);
        store.register_index("link", &[0, 1]);

        // Interleave: inserts with mixed TTLs, removes, expiry, re-inserts.
        store.insert(&link(0, 1), meta(ProvTag::None, Some(100)), |a, _| {
            a.clone()
        });
        store.insert(&link(0, 2), meta(ProvTag::None, None), |a, _| a.clone());
        store.check_index_consistency().unwrap();

        store.remove(&link(0, 1));
        store.check_index_consistency().unwrap();

        store.insert(&link(0, 1), meta(ProvTag::None, Some(200)), |a, _| {
            a.clone()
        });
        store.insert(&link(1, 2), meta(ProvTag::None, Some(50)), |a, _| a.clone());
        store.check_index_consistency().unwrap();

        // Expire drops link(1,2) (TTL 50) and link(0,1) (TTL 200).
        let removed = store.expire(SimTime::from_micros(60));
        assert_eq!(removed, vec![link(1, 2)]);
        store.check_index_consistency().unwrap();
        let removed = store.expire(SimTime::from_micros(500));
        assert_eq!(removed, vec![link(0, 1)]);
        store.check_index_consistency().unwrap();

        // The stale keys are really gone from the probe path.
        let hits: Vec<Tuple> = store
            .probe("link", &[0], &[Value::Addr(0)])
            .unwrap()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(hits, vec![link(0, 2)]);
        assert_eq!(
            store
                .probe("link", &[0, 1], &[Value::Addr(0), Value::Addr(1)])
                .unwrap()
                .count(),
            0
        );

        // Re-insertion after expiry shows up again.
        store.insert(&link(0, 1), meta(ProvTag::None, None), |a, _| a.clone());
        store.check_index_consistency().unwrap();
        assert_eq!(
            store
                .probe("link", &[0, 1], &[Value::Addr(0), Value::Addr(1)])
                .unwrap()
                .count(),
            1
        );
        // Insertion order in the shared bucket reflects the re-insert.
        let hits: Vec<Tuple> = store
            .probe("link", &[0], &[Value::Addr(0)])
            .unwrap()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(hits, vec![link(0, 2), link(0, 1)]);
    }

    #[test]
    fn duplicate_insert_does_not_duplicate_index_entries() {
        let mut store = NodeStore::new();
        store.register_index("link", &[1]);
        store.insert(&link(0, 7), meta(ProvTag::None, None), |a, _| a.clone());
        store.insert(&link(0, 7), meta(ProvTag::None, None), |a, _| a.clone());
        assert_eq!(
            store
                .probe("link", &[1], &[Value::Addr(7)])
                .unwrap()
                .count(),
            1
        );
        store.check_index_consistency().unwrap();
    }

    #[test]
    fn scan_ordered_follows_insertion_sequence() {
        let mut store = NodeStore::new();
        let inserted = [(4, 0), (2, 9), (7, 7), (0, 0), (3, 3)];
        for (a, b) in inserted {
            store.insert(&link(a, b), meta(ProvTag::None, None), |a, _| a.clone());
        }
        let got: Vec<Tuple> = store
            .scan_ordered("link")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let expected: Vec<Tuple> = inserted.iter().map(|&(a, b)| link(a, b)).collect();
        assert_eq!(got, expected);
        // Removal keeps relative order of the survivors.
        store.remove(&link(7, 7));
        let got: Vec<Tuple> = store
            .scan_ordered("link")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(got, vec![link(4, 0), link(2, 9), link(0, 0), link(3, 3)]);
        assert!(store.scan_ordered("nope").is_empty());
    }

    #[test]
    fn has_index_reflects_registration() {
        let mut store = NodeStore::new();
        assert!(!store.has_index("link", &[0]));
        store.register_index("link", &[0]);
        assert!(store.has_index("link", &[0]));
        assert!(!store.has_index("link", &[1]));
    }
}
