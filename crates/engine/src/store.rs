//! Per-node soft-state tuple storage with seq-addressed rows and secondary
//! hash indexes.
//!
//! Declarative networks maintain derived state as *soft state*: every tuple
//! carries a creation timestamp and (optionally) a time-to-live, and expires
//! unless refreshed (Section 2.1 of the paper, citing the sliding-window
//! formulation of reference [2]).  Each node owns one [`NodeStore`] holding
//! its base and derived relations together with per-tuple metadata used by
//! the provenance layer.
//!
//! The storage layout is reference-shared and sequence-addressed:
//!
//! * **Shared rows** — a stored row is an `Arc<[Value]>`.  Probes and scans
//!   hand out `Arc` clones (or borrows) of the one materialised copy, so
//!   unification, provenance bookkeeping and head emission never deep-clone
//!   attribute values.
//! * **Seq addressing** — every insertion is assigned a monotonically
//!   increasing sequence number; the row itself lives in a `seq → row` map
//!   with a `row → seq` dedup map beside it.  Secondary index buckets
//!   ([`NodeStore::register_index`], one per planner `IndexSpec`) hold bare
//!   seq ids — *not* row copies — so `k` indexes cost `8k` bytes per tuple
//!   rather than `k` more copies of the row.
//! * **Sort-free ordered scans** — each relation keeps an insertion-ordered
//!   seq list with lazy compaction (rebuilt once more than half its entries
//!   are dead), making [`NodeStore::scan_ordered`] O(live rows) with no
//!   sorting on the hot path.  Index buckets follow insertion order by
//!   construction.
//! * **Interned predicates** — relations are addressed by the dense
//!   [`PredId`]s of a [`Symbols`] table mirrored from the compiled program
//!   ([`NodeStore::sync_symbols`]), so the hot path indexes a `Vec` by `u32`
//!   instead of hashing predicate strings.  The historical name-based API
//!   remains as a thin shim that resolves through the store's interner.

use crate::tuple::{self, Tuple};
use pasn_datalog::{PredId, Symbols, Value};
use pasn_net::SimTime;
use pasn_provenance::ProvTag;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Relations with fewer seq-list entries than this never compact: skipping a
/// handful of dead slots during ordered scans is cheaper than a rebuild, and
/// at deployment scale — thousands of near-empty per-node tables churning
/// under TTL expiry — the guard prevents rebuild storms whose metered debt
/// (`compact_entry_us` per walked entry) would swamp the actual work.  Dead
/// residue per table stays bounded by the threshold.
const COMPACT_MIN_LEN: usize = 64;

/// Metadata attached to every stored tuple.
#[derive(Clone, Debug)]
pub struct TupleMeta {
    /// Provenance annotation (semiring tag).
    pub tag: ProvTag,
    /// Simulated time the tuple was inserted or derived locally.
    pub created_at: SimTime,
    /// Expiry time for soft-state tuples, `None` for hard state.
    pub expires_at: Option<SimTime>,
    /// Location value of the node that derived / asserted the tuple (equal to
    /// the local location for local derivations and base facts).  Distributed
    /// provenance uses it as the pointer target for traceback.
    pub origin: Value,
    /// Principal id of the asserting node (`None` when authentication is
    /// disabled).
    pub asserted_by: Option<u32>,
}

/// Result of inserting a tuple into a store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOutcome {
    /// The tuple was not present; rule evaluation should be triggered.
    New,
    /// The tuple was already present; its provenance tag was merged and
    /// changed (no re-derivation is triggered, see the crate docs).
    MergedTag,
    /// The tuple was already present with identical provenance.
    Duplicate,
}

/// One stored row: the shared values plus their metadata.
#[derive(Clone, Debug)]
struct StoredRow {
    values: Arc<[Value]>,
    meta: TupleMeta,
}

/// A hash index over one projection of a relation: bucket key (the projected
/// values at the index's key columns) → seq ids of matching rows, in
/// insertion order.  Buckets never copy rows.
type IndexBuckets = HashMap<Vec<Value>, Vec<u64>>;

/// One relation: seq-addressed rows, the dedup map, the insertion-ordered
/// seq list, and any secondary indexes registered over it.
#[derive(Clone, Debug, Default)]
struct Table {
    /// Live rows, addressed by insertion sequence number.
    rows: HashMap<u64, StoredRow>,
    /// Dedup map: row values → seq of the live row holding them.
    by_row: HashMap<Arc<[Value]>, u64>,
    /// Insertion-ordered seq ids, compacted lazily: removed rows leave dead
    /// entries behind until more than half the list is dead.
    seq_order: Vec<u64>,
    /// Number of dead entries currently in `seq_order`.
    dead: usize,
    /// Seq-list entries walked by compaction rebuilds since the debt was
    /// last drained (see [`NodeStore::take_compaction_debt`]).  Compaction
    /// used to run un-metered, which charged its cost to nobody — harmless
    /// on one global clock, but wrong once partitions advance per-node CPU
    /// lanes independently.
    compaction_walked: u64,
    indexes: HashMap<Vec<usize>, IndexBuckets>,
}

impl Table {
    /// Projects `values` onto `key_columns`; `None` if any column is out of
    /// range (such a row can never match a probe on this index).
    fn project(values: &[Value], key_columns: &[usize]) -> Option<Vec<Value>> {
        key_columns
            .iter()
            .map(|&c| values.get(c).cloned())
            .collect()
    }

    /// Adds a freshly inserted row's seq to every index.
    fn index_insert(&mut self, seq: u64, values: &[Value]) {
        for (key_columns, buckets) in &mut self.indexes {
            if let Some(key) = Self::project(values, key_columns) {
                buckets.entry(key).or_default().push(seq);
            }
        }
    }

    /// Removes a row's seq from every index.
    fn index_remove(&mut self, seq: u64, values: &[Value]) {
        for (key_columns, buckets) in &mut self.indexes {
            if let Some(key) = Self::project(values, key_columns) {
                if let Some(bucket) = buckets.get_mut(&key) {
                    bucket.retain(|&s| s != seq);
                    if bucket.is_empty() {
                        buckets.remove(&key);
                    }
                }
            }
        }
    }

    /// Removes the row stored under `values`, keeping the dedup map, the
    /// indexes and the (lazily compacted) seq list consistent.
    fn remove_by_values(&mut self, values: &[Value]) -> Option<TupleMeta> {
        let seq = *self.by_row.get(values)?;
        self.take_by_seq(seq).map(|row| row.meta)
    }

    /// Removes the row behind a known seq (no row re-hash), keeping the
    /// dedup map, the indexes and the seq list consistent.
    fn take_by_seq(&mut self, seq: u64) -> Option<StoredRow> {
        let row = self.rows.remove(&seq)?;
        self.by_row.remove(&row.values[..]);
        self.index_remove(seq, &row.values);
        self.dead += 1;
        // Lazy compaction: once more than half the seq list is dead, rebuild
        // it from the survivors (order-preserving, O(len), amortised O(1)).
        // Small lists are exempt — see [`COMPACT_MIN_LEN`] — except when
        // the table empties entirely: dropping the whole list is a clear,
        // not a rebuild, and without it every small per-node table whose
        // generation fully expires would park up to `COMPACT_MIN_LEN` dead
        // entries forever — an O(nodes) residue at 10k-node scale.
        if self.rows.is_empty() {
            self.seq_order.clear();
            self.dead = 0;
        } else if self.seq_order.len() >= COMPACT_MIN_LEN && self.dead * 2 > self.seq_order.len() {
            self.compaction_walked += self.seq_order.len() as u64;
            let rows = &self.rows;
            self.seq_order.retain(|s| rows.contains_key(s));
            self.dead = 0;
        }
        Some(row)
    }

    /// Live rows in insertion order with their seq ids, skipping dead
    /// seq-list entries (at most as many as there are live rows, by the
    /// compaction invariant).
    fn iter_ordered_seq(&self) -> impl Iterator<Item = (u64, &Arc<[Value]>, &TupleMeta)> {
        self.seq_order
            .iter()
            .filter_map(move |seq| self.rows.get(seq).map(|row| (*seq, &row.values, &row.meta)))
    }

    /// [`Table::iter_ordered_seq`] without the seqs.
    fn iter_ordered(&self) -> impl Iterator<Item = (&Arc<[Value]>, &TupleMeta)> {
        self.iter_ordered_seq()
            .map(|(_, values, meta)| (values, meta))
    }

    /// Inserts one shared row, deduplicating against the row→seq map before
    /// any index or seq-list work: a duplicate merges its provenance tag via
    /// `combine` and refreshes the soft-state lifetime instead of storing a
    /// copy.  `next_seq` is the store-wide insertion counter, advanced only
    /// for genuinely new rows.  Returns the outcome together with the seq of
    /// the live row now holding `values` (fresh for new rows, the original
    /// insertion's for duplicates) and — when the row's TTL was newly set or
    /// extended — the expiry instant the store's min-heap must learn about.
    fn insert_one<F>(
        &mut self,
        next_seq: &mut u64,
        values: Arc<[Value]>,
        meta: TupleMeta,
        combine: F,
    ) -> (InsertOutcome, u64, Option<SimTime>)
    where
        F: FnOnce(&ProvTag, &ProvTag) -> ProvTag,
    {
        match self.by_row.get(&values[..]) {
            None => {
                let seq = *next_seq;
                *next_seq += 1;
                let expires = meta.expires_at;
                self.by_row.insert(values.clone(), seq);
                self.index_insert(seq, &values);
                self.seq_order.push(seq);
                self.rows.insert(seq, StoredRow { values, meta });
                (InsertOutcome::New, seq, expires)
            }
            Some(&seq) => {
                let existing = self.rows.get_mut(&seq).expect("dedup map mirrors rows");
                let merged = combine(&existing.meta.tag, &meta.tag);
                // Refresh the soft-state lifetime on re-derivation (a `None`
                // on either side upgrades the row to hard state).
                let bumped = match (existing.meta.expires_at, meta.expires_at) {
                    (Some(a), Some(b)) if b > a => {
                        existing.meta.expires_at = Some(b);
                        Some(b)
                    }
                    (Some(a), Some(_)) => {
                        existing.meta.expires_at = Some(a);
                        None
                    }
                    _ => {
                        existing.meta.expires_at = None;
                        None
                    }
                };
                let outcome = if merged != existing.meta.tag {
                    existing.meta.tag = merged;
                    InsertOutcome::MergedTag
                } else {
                    InsertOutcome::Duplicate
                };
                (outcome, seq, bumped)
            }
        }
    }
}

/// The relations stored at one node.
#[derive(Clone, Debug, Default)]
pub struct NodeStore {
    /// Predicate interner, mirrored from the engine's table (or standalone
    /// when the store is used directly, e.g. in tests).
    preds: Symbols,
    /// Relations, indexed by [`PredId`].
    tables: Vec<Table>,
    next_seq: u64,
    /// Min-heap of `(expires_at µs, pred, seq)` over soft-state rows, pushed
    /// on every insert / TTL extension and validated lazily on pop: an entry
    /// whose row is gone, hardened, or now expires later is simply skipped
    /// (a fresher entry covers it).  This makes [`NodeStore::take_expired`]
    /// O(expired · log heap) instead of a scan of every stored row — the
    /// difference between a no-op sweep and an O(N) walk at 10k nodes.
    expiry_heap: BinaryHeap<Reverse<(u64, u32, u64)>>,
}

impl NodeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- predicate interning ---------------------------------------------

    /// Interns a predicate name, returning its dense id.  Ids are assigned
    /// in interning order, so mirroring another [`Symbols`] table (see
    /// [`NodeStore::sync_symbols`]) keeps both id spaces identical.
    pub fn intern(&mut self, predicate: &str) -> PredId {
        let id = self.preds.intern(predicate);
        if self.tables.len() < self.preds.len() {
            self.tables.resize_with(self.preds.len(), Table::default);
        }
        id
    }

    /// The id of an already interned predicate.
    pub fn pred_id(&self, predicate: &str) -> Option<PredId> {
        self.preds.resolve(predicate)
    }

    /// The name behind an interned predicate id.
    pub fn pred_name(&self, pred: PredId) -> Option<&str> {
        self.preds.name(pred)
    }

    /// Mirrors every predicate of `symbols` this store has not seen yet, in
    /// id order, so the store's [`PredId`]s coincide with the caller's.  The
    /// engine calls this with its program-wide table before addressing the
    /// store by id; it is O(1) when already in sync.
    pub fn sync_symbols(&mut self, symbols: &Symbols) {
        self.preds.sync_from(symbols);
        if self.tables.len() < self.preds.len() {
            self.tables.resize_with(self.preds.len(), Table::default);
        }
    }

    fn table(&self, pred: PredId) -> Option<&Table> {
        self.tables.get(pred.index())
    }

    /// Checks that an id-based write addresses a predicate this store's
    /// interner actually knows, materialising its table if needed.  Accepting
    /// ids the interner has never seen would let rows exist under no name
    /// (panicking `expire`, under-charging `store_bytes`), so that contract
    /// violation fails fast instead.
    fn ensure_table(&mut self, pred: PredId) {
        assert!(
            pred.index() < self.preds.len(),
            "{pred} was not interned in this store; call intern() or sync_symbols() first"
        );
        if self.tables.len() < self.preds.len() {
            self.tables.resize_with(self.preds.len(), Table::default);
        }
    }

    /// The table behind a known id; id-based writes go through here.
    fn table_mut(&mut self, pred: PredId) -> &mut Table {
        self.ensure_table(pred);
        &mut self.tables[pred.index()]
    }

    // ---- secondary indexes -----------------------------------------------

    /// Installs a secondary hash index over the interned predicate keyed on
    /// `key_columns`.  Registering is idempotent; if the relation already
    /// holds tuples the index is (re)built from them in insertion order (no
    /// sort: the seq list already is the order), and it is maintained
    /// incrementally afterwards.
    pub fn register_index_id(&mut self, pred: PredId, key_columns: &[usize]) {
        let table = self.table_mut(pred);
        if table.indexes.contains_key(key_columns) {
            return;
        }
        let mut buckets: IndexBuckets = HashMap::new();
        for seq in &table.seq_order {
            if let Some(row) = table.rows.get(seq) {
                if let Some(key) = Table::project(&row.values, key_columns) {
                    buckets.entry(key).or_default().push(*seq);
                }
            }
        }
        table.indexes.insert(key_columns.to_vec(), buckets);
    }

    /// Name shim over [`NodeStore::register_index_id`].
    pub fn register_index(&mut self, predicate: &str, key_columns: &[usize]) {
        let pred = self.intern(predicate);
        self.register_index_id(pred, key_columns);
    }

    /// True if an index over `(pred, key_columns)` is installed.
    pub fn has_index_id(&self, pred: PredId, key_columns: &[usize]) -> bool {
        self.table(pred)
            .is_some_and(|t| t.indexes.contains_key(key_columns))
    }

    /// Name shim over [`NodeStore::has_index_id`].
    pub fn has_index(&self, predicate: &str, key_columns: &[usize]) -> bool {
        self.pred_id(predicate)
            .is_some_and(|pred| self.has_index_id(pred, key_columns))
    }

    /// Probes the secondary index of `pred` keyed on `key_columns` for rows
    /// matching `key`, in insertion order.  Returns `None` when no such
    /// index is installed (the caller falls back to a scan); an installed
    /// index with no matches yields an empty iterator.  Rows are handed out
    /// by reference — callers clone the `Arc`, never the values.
    pub fn probe_id<'a>(
        &'a self,
        pred: PredId,
        key_columns: &[usize],
        key: &[Value],
    ) -> Option<impl Iterator<Item = (&'a Arc<[Value]>, &'a TupleMeta)> + 'a> {
        Some(
            self.probe_seq_id(pred, key_columns, key)?
                .map(|(_, values, meta)| (values, meta)),
        )
    }

    /// [`NodeStore::probe_id`] with each row's insertion seq.  The evaluator
    /// uses the seqs to keep batched joins tuple-at-a-time-visible: a delta
    /// row only joins rows inserted no later than itself.
    pub fn probe_seq_id<'a>(
        &'a self,
        pred: PredId,
        key_columns: &[usize],
        key: &[Value],
    ) -> Option<impl Iterator<Item = (u64, &'a Arc<[Value]>, &'a TupleMeta)> + 'a> {
        let table = self.table(pred)?;
        let index = table.indexes.get(key_columns)?;
        let rows = &table.rows;
        Some(
            index
                .get(key)
                .into_iter()
                .flatten()
                .filter_map(move |seq| rows.get(seq).map(|row| (*seq, &row.values, &row.meta))),
        )
    }

    /// Name shim over [`NodeStore::probe_id`], materialising [`Tuple`]s.
    pub fn probe<'a>(
        &'a self,
        predicate: &'a str,
        key_columns: &[usize],
        key: &[Value],
    ) -> Option<impl Iterator<Item = (Tuple, &'a TupleMeta)> + 'a> {
        let pred = self.pred_id(predicate)?;
        Some(
            self.probe_id(pred, key_columns, key)?
                .map(move |(values, meta)| (Tuple::new(predicate, values.to_vec()), meta)),
        )
    }

    // ---- insertion / removal ---------------------------------------------

    /// Inserts a shared row under an interned predicate.  If an identical
    /// row already exists, provenance tags are combined with the semiring
    /// `+` via `combine` (alternative derivations of the same tuple).
    pub fn insert_row<F>(
        &mut self,
        pred: PredId,
        values: Arc<[Value]>,
        meta: TupleMeta,
        combine: F,
    ) -> InsertOutcome
    where
        F: FnOnce(&ProvTag, &ProvTag) -> ProvTag,
    {
        self.ensure_table(pred);
        let NodeStore {
            tables,
            next_seq,
            expiry_heap,
            ..
        } = self;
        let (outcome, seq, expires) =
            tables[pred.index()].insert_one(next_seq, values, meta, combine);
        if let Some(at) = expires {
            expiry_heap.push(Reverse((at.as_micros(), pred.index() as u32, seq)));
        }
        outcome
    }

    /// Batch-inserts shared rows under one interned predicate: the table is
    /// resolved once per batch instead of once per row, and every row is
    /// deduplicated against the row→seq map before any index, seq-list or
    /// provenance-merge work.  Returns one `(outcome, seq)` per row, in
    /// input order — the seq identifies the live row now holding the values
    /// (fresh for new rows), which the evaluator uses to keep batched joins
    /// exactly tuple-at-a-time-visible (a delta never joins a batch sibling
    /// inserted after it).  A duplicate *within* the batch behaves exactly
    /// like a duplicate across batches (tags merge via `combine`, TTLs
    /// refresh, no copy is stored).
    pub fn insert_rows<F>(
        &mut self,
        pred: PredId,
        rows: Vec<(Arc<[Value]>, TupleMeta)>,
        mut combine: F,
    ) -> Vec<(InsertOutcome, u64)>
    where
        F: FnMut(&ProvTag, &ProvTag) -> ProvTag,
    {
        self.ensure_table(pred);
        let NodeStore {
            tables,
            next_seq,
            expiry_heap,
            ..
        } = self;
        let table = &mut tables[pred.index()];
        rows.into_iter()
            .map(|(values, meta)| {
                let (outcome, seq, expires) =
                    table.insert_one(next_seq, values, meta, &mut combine);
                if let Some(at) = expires {
                    expiry_heap.push(Reverse((at.as_micros(), pred.index() as u32, seq)));
                }
                (outcome, seq)
            })
            .collect()
    }

    /// Name shim over [`NodeStore::insert_row`].
    pub fn insert<F>(&mut self, tuple: &Tuple, meta: TupleMeta, combine: F) -> InsertOutcome
    where
        F: FnOnce(&ProvTag, &ProvTag) -> ProvTag,
    {
        let pred = self.intern(&tuple.predicate);
        self.insert_row(pred, Arc::from(tuple.values.as_slice()), meta, combine)
    }

    /// Looks up the metadata of an exact row.
    pub fn meta_of(&self, pred: PredId, values: &[Value]) -> Option<&TupleMeta> {
        let table = self.table(pred)?;
        let seq = table.by_row.get(values)?;
        table.rows.get(seq).map(|row| &row.meta)
    }

    /// The insertion seq of the live row holding `values`, if present — the
    /// stable identity the deletion ledger keys supports and firings by (a
    /// re-inserted row gets a fresh seq, so stale records never attach to a
    /// new incarnation).
    pub fn seq_of(&self, pred: PredId, values: &[Value]) -> Option<u64> {
        self.table(pred)?.by_row.get(values).copied()
    }

    /// The live row behind a known seq, if any.
    pub fn row_by_seq(&self, pred: PredId, seq: u64) -> Option<(&Arc<[Value]>, &TupleMeta)> {
        self.table(pred)?
            .rows
            .get(&seq)
            .map(|row| (&row.values, &row.meta))
    }

    /// Removes the live row behind a known seq, returning its shared values
    /// and metadata.  Dedup map, secondary indexes and the lazily compacted
    /// seq list stay consistent, exactly as for [`NodeStore::remove_row`].
    pub fn remove_by_seq(&mut self, pred: PredId, seq: u64) -> Option<(Arc<[Value]>, TupleMeta)> {
        let row = self.tables.get_mut(pred.index())?.take_by_seq(seq)?;
        Some((row.values, row.meta))
    }

    /// Drains the store's outstanding compaction debt: the total number of
    /// seq-list entries walked by lazy compaction rebuilds since the last
    /// drain, across all relations.  The engine charges this to the owning
    /// node's CPU lane (at [`pasn_net::CostModel::compact_entry_us`] per
    /// entry) right after every removal path, so deferred store maintenance
    /// lands on the partition that owns the node rather than vanishing into
    /// the global clock.
    pub fn take_compaction_debt(&mut self) -> u64 {
        let mut walked = 0;
        for table in &mut self.tables {
            walked += table.compaction_walked;
            table.compaction_walked = 0;
        }
        walked
    }

    /// Replaces the provenance tag of a live row.  Provenance-guided
    /// deletion uses this when a tuple loses one of several alternative
    /// derivations: the surviving tag is recomputed as the semiring sum of
    /// the remaining contributions.  Returns `false` when the seq is dead.
    pub fn set_tag(&mut self, pred: PredId, seq: u64, tag: ProvTag) -> bool {
        match self
            .tables
            .get_mut(pred.index())
            .and_then(|t| t.rows.get_mut(&seq))
        {
            Some(row) => {
                row.meta.tag = tag;
                true
            }
            None => false,
        }
    }

    /// Extends the soft-state lifetime of an exact live row to `expires_at`
    /// (never shortens it; `None` upgrades the row to hard state).  Returns
    /// `false` when the row is absent.
    pub fn refresh_row_ttl(
        &mut self,
        pred: PredId,
        values: &[Value],
        expires_at: Option<SimTime>,
    ) -> bool {
        let NodeStore {
            tables,
            expiry_heap,
            ..
        } = self;
        let Some(table) = tables.get_mut(pred.index()) else {
            return false;
        };
        let Some(&seq) = table.by_row.get(values) else {
            return false;
        };
        let row = table.rows.get_mut(&seq).expect("dedup map mirrors rows");
        match (row.meta.expires_at, expires_at) {
            (Some(a), Some(b)) if b > a => {
                row.meta.expires_at = Some(b);
                expiry_heap.push(Reverse((b.as_micros(), pred.index() as u32, seq)));
            }
            (Some(_), Some(_)) => {}
            _ => row.meta.expires_at = None,
        }
        true
    }

    /// Name shim over [`NodeStore::meta_of`].
    pub fn get(&self, tuple: &Tuple) -> Option<&TupleMeta> {
        self.meta_of(self.pred_id(&tuple.predicate)?, &tuple.values)
    }

    /// True if the exact tuple is stored.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.get(tuple).is_some()
    }

    /// Removes an exact row, returning its metadata.  Secondary indexes and
    /// the dedup map stay consistent; the seq list is compacted lazily.
    pub fn remove_row(&mut self, pred: PredId, values: &[Value]) -> Option<TupleMeta> {
        self.tables.get_mut(pred.index())?.remove_by_values(values)
    }

    /// Name shim over [`NodeStore::remove_row`].
    pub fn remove(&mut self, tuple: &Tuple) -> Option<TupleMeta> {
        let pred = self.pred_id(&tuple.predicate)?;
        self.remove_row(pred, &tuple.values)
    }

    // ---- scans -----------------------------------------------------------

    /// Iterates over all rows of an interned predicate with their metadata,
    /// in arbitrary order.
    pub fn scan_rows(
        &self,
        pred: PredId,
    ) -> impl Iterator<Item = (&Arc<[Value]>, &TupleMeta)> + '_ {
        self.table(pred)
            .into_iter()
            .flat_map(|table| table.rows.values().map(|row| (&row.values, &row.meta)))
    }

    /// Name shim over [`NodeStore::scan_rows`], materialising [`Tuple`]s.
    pub fn scan<'a>(
        &'a self,
        predicate: &'a str,
    ) -> impl Iterator<Item = (Tuple, &'a TupleMeta)> + 'a {
        self.pred_id(predicate)
            .into_iter()
            .flat_map(move |pred| self.scan_rows(pred))
            .map(move |(values, meta)| (Tuple::new(predicate, values.to_vec()), meta))
    }

    /// All rows of an interned predicate in insertion order — the
    /// deterministic iteration the evaluator uses for unindexed (full-scan)
    /// joins.  This walks the lazily compacted seq list directly: O(live
    /// rows), no sorting.
    pub fn scan_ordered_rows(
        &self,
        pred: PredId,
    ) -> impl Iterator<Item = (&Arc<[Value]>, &TupleMeta)> + '_ {
        self.table(pred).into_iter().flat_map(Table::iter_ordered)
    }

    /// [`NodeStore::scan_ordered_rows`] with each row's insertion seq (see
    /// [`NodeStore::probe_seq_id`] for why the evaluator needs it).
    pub fn scan_ordered_seq_rows(
        &self,
        pred: PredId,
    ) -> impl Iterator<Item = (u64, &Arc<[Value]>, &TupleMeta)> + '_ {
        self.table(pred)
            .into_iter()
            .flat_map(Table::iter_ordered_seq)
    }

    /// Name shim over [`NodeStore::scan_ordered_rows`], materialising
    /// [`Tuple`]s.
    pub fn scan_ordered<'a>(&'a self, predicate: &str) -> Vec<(Tuple, &'a TupleMeta)> {
        let Some(pred) = self.pred_id(predicate) else {
            return Vec::new();
        };
        self.scan_ordered_rows(pred)
            .map(|(values, meta)| (Tuple::new(predicate, values.to_vec()), meta))
            .collect()
    }

    /// All predicates with at least one stored tuple.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.rows.is_empty())
            .filter_map(|(i, _)| self.preds.name(PredId(i as u32)))
    }

    /// Number of tuples of an interned predicate.
    pub fn count_id(&self, pred: PredId) -> usize {
        self.table(pred).map_or(0, |t| t.rows.len())
    }

    /// Name shim over [`NodeStore::count_id`].
    pub fn count(&self, predicate: &str) -> usize {
        self.pred_id(predicate).map_or(0, |p| self.count_id(p))
    }

    /// Total number of stored tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }

    // ---- storage accounting ----------------------------------------------

    /// Bytes of tuple data proper: the canonical encoding of every stored
    /// row (each row is charged once — indexes share it by reference) plus
    /// the seq-list slots carrying the insertion order.
    pub fn store_bytes(&self) -> usize {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, table)| {
                let name = self.preds.name(PredId(i as u32)).unwrap_or("");
                table
                    .rows
                    .values()
                    .map(|row| tuple::encoded_len_parts(name, &row.values))
                    .sum::<usize>()
                    + table.seq_order.len() * std::mem::size_of::<u64>()
            })
            .sum()
    }

    /// Bytes of secondary-index overhead: every bucket's key encoding plus
    /// one seq id (8 bytes) per bucket entry — the honest cost of the
    /// seq-addressed layout, where buckets reference rows instead of
    /// copying them.
    pub fn index_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|table| {
                table
                    .indexes
                    .values()
                    .flat_map(|buckets| buckets.iter())
                    .map(|(key, bucket)| {
                        key.iter().map(Value::encoded_len).sum::<usize>()
                            + bucket.len() * std::mem::size_of::<u64>()
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    /// Approximate total storage footprint in bytes: tuple encodings plus
    /// the seq-list and secondary-index overhead (tag sizes are charged by
    /// the caller, which has access to the var table).
    pub fn total_tuple_bytes(&self) -> usize {
        self.store_bytes() + self.index_bytes()
    }

    // ---- expiry ----------------------------------------------------------

    /// Removes all tuples whose TTL has passed; returns the removed tuples
    /// in insertion-seq order (deterministic regardless of table iteration
    /// order).  Secondary indexes stay consistent.
    pub fn expire(&mut self, now: SimTime) -> Vec<Tuple> {
        self.take_expired(now)
            .into_iter()
            .map(|(pred, _, values, _)| {
                let name = self.preds.name(pred).expect("interned predicate");
                Tuple::new(name, values.to_vec())
            })
            .collect()
    }

    /// [`NodeStore::expire`] in id form: removes every row whose TTL has
    /// passed and returns `(pred, seq, values, meta)` per victim in
    /// insertion-seq order.  The engine's scheduled-expiry work uses the
    /// seqs to settle the deletion ledger and cascade the removals.
    ///
    /// Victims come off the expiry min-heap, not a table scan: entries are
    /// popped while due, validated against the row's *current* lifetime
    /// (stale entries from extended or hardened rows are discarded — a later
    /// push covers them), deduplicated by seq, and removed in seq order.
    pub fn take_expired(&mut self, now: SimTime) -> Vec<(PredId, u64, Arc<[Value]>, TupleMeta)> {
        let now_us = now.as_micros();
        let mut victims: Vec<(u64, PredId)> = Vec::new();
        while let Some(&Reverse((at, pred_raw, seq))) = self.expiry_heap.peek() {
            if at > now_us {
                break;
            }
            self.expiry_heap.pop();
            let pred = PredId(pred_raw);
            let due = self
                .tables
                .get(pred.index())
                .and_then(|t| t.rows.get(&seq))
                .is_some_and(|row| row.meta.expires_at.is_some_and(|e| e <= now));
            if due {
                victims.push((seq, pred));
            }
        }
        victims.sort_unstable_by_key(|(seq, _)| *seq);
        victims.dedup_by_key(|(seq, _)| *seq);
        victims
            .into_iter()
            .map(|(seq, pred)| {
                let row = self.tables[pred.index()]
                    .take_by_seq(seq)
                    .expect("validated seq is live");
                (pred, seq, row.values, row.meta)
            })
            .collect()
    }

    // ---- invariants ------------------------------------------------------

    /// Verifies the seq-addressed layout end to end: the dedup map exactly
    /// mirrors the live rows, the seq list contains every live seq exactly
    /// once in ascending order with no more dead entries than compaction
    /// permits, and every secondary index holds each live row's seq exactly
    /// once in the right bucket, in insertion order, with no row copies and
    /// no empty buckets retained.  Returns a description of the first
    /// inconsistency found.
    pub fn check_index_consistency(&self) -> Result<(), String> {
        for (i, table) in self.tables.iter().enumerate() {
            let pred = self.preds.name(PredId(i as u32)).unwrap_or("?");
            // Dedup map ↔ rows.
            if table.by_row.len() != table.rows.len() {
                return Err(format!(
                    "{pred}: dedup map holds {} rows, table holds {}",
                    table.by_row.len(),
                    table.rows.len()
                ));
            }
            for (values, seq) in &table.by_row {
                match table.rows.get(seq) {
                    None => return Err(format!("{pred}: dedup entry {values:?} has no row")),
                    Some(row) if row.values != *values => {
                        return Err(format!("{pred}: dedup entry {values:?} maps to wrong row"))
                    }
                    Some(_) => {}
                }
            }
            // Seq list: every live seq exactly once, ascending, bounded dead.
            let mut live_in_order = 0usize;
            let mut last_seq = None;
            for seq in &table.seq_order {
                if table.rows.contains_key(seq) {
                    if let Some(prev) = last_seq {
                        if *seq <= prev {
                            return Err(format!("{pred}: seq list violates insertion order"));
                        }
                    }
                    last_seq = Some(*seq);
                    live_in_order += 1;
                }
            }
            if live_in_order != table.rows.len() {
                return Err(format!(
                    "{pred}: seq list covers {live_in_order} live rows, table holds {}",
                    table.rows.len()
                ));
            }
            let dead = table.seq_order.len() - live_in_order;
            if dead != table.dead {
                return Err(format!(
                    "{pred}: dead counter {} does not match seq list ({dead} dead)",
                    table.dead
                ));
            }
            if table.seq_order.len() >= COMPACT_MIN_LEN && table.dead * 2 > table.seq_order.len() {
                return Err(format!(
                    "{pred}: compaction invariant violated ({dead} dead of {})",
                    table.seq_order.len()
                ));
            }
            // Expiry heap: every live soft-state row must be covered by a
            // heap entry at exactly its current expiry instant.
            for (seq, row) in &table.rows {
                if let Some(expires) = row.meta.expires_at {
                    let covered = self
                        .expiry_heap
                        .iter()
                        .any(|Reverse(e)| *e == (expires.as_micros(), i as u32, *seq));
                    if !covered {
                        return Err(format!(
                            "{pred}: soft-state row {:?} has no expiry-heap entry",
                            row.values
                        ));
                    }
                }
            }
            // Indexes: seq ids only, right bucket, insertion order, complete.
            for (key_columns, buckets) in &table.indexes {
                let mut indexed = 0usize;
                for (key, bucket) in buckets {
                    if bucket.is_empty() {
                        return Err(format!("{pred}: empty bucket retained for key {key:?}"));
                    }
                    let mut last_seq = None;
                    for seq in bucket {
                        let row = table.rows.get(seq).ok_or_else(|| {
                            format!("{pred}: index entry seq {seq} has no backing row")
                        })?;
                        if Table::project(&row.values, key_columns).as_deref() != Some(&key[..]) {
                            return Err(format!(
                                "{pred}: row {:?} filed under wrong key {key:?}",
                                row.values
                            ));
                        }
                        if let Some(prev) = last_seq {
                            if *seq <= prev {
                                return Err(format!(
                                    "{pred}: bucket {key:?} violates insertion order"
                                ));
                            }
                        }
                        last_seq = Some(*seq);
                        indexed += 1;
                    }
                }
                let expected = table
                    .rows
                    .values()
                    .filter(|row| Table::project(&row.values, key_columns).is_some())
                    .count();
                if indexed != expected {
                    return Err(format!(
                        "{pred}: index on {key_columns:?} holds {indexed} rows, table holds {expected}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasn_provenance::{ProvTag, TrustLevel};

    fn meta(tag: ProvTag, expires: Option<u64>) -> TupleMeta {
        TupleMeta {
            tag,
            created_at: SimTime::ZERO,
            expires_at: expires.map(SimTime::from_micros),
            origin: Value::Addr(0),
            asserted_by: Some(0),
        }
    }

    fn link(a: u32, b: u32) -> Tuple {
        Tuple::new("link", vec![Value::Addr(a), Value::Addr(b)])
    }

    #[test]
    fn insert_scan_and_counts() {
        let mut store = NodeStore::new();
        assert_eq!(
            store.insert(&link(0, 1), meta(ProvTag::None, None), |a, _| a.clone()),
            InsertOutcome::New
        );
        assert_eq!(
            store.insert(&link(0, 2), meta(ProvTag::None, None), |a, _| a.clone()),
            InsertOutcome::New
        );
        assert_eq!(store.count("link"), 2);
        assert_eq!(store.total_tuples(), 2);
        assert!(store.contains(&link(0, 1)));
        assert!(!store.contains(&link(1, 0)));
        assert_eq!(store.scan("link").count(), 2);
        assert_eq!(store.scan("reachable").count(), 0);
        assert_eq!(store.predicates().collect::<Vec<_>>(), vec!["link"]);
        assert!(store.total_tuple_bytes() > 0);
    }

    #[test]
    fn duplicate_inserts_merge_tags_without_retrigger() {
        let mut store = NodeStore::new();
        let t = link(0, 1);
        let combine = |a: &ProvTag, b: &ProvTag| {
            if let (ProvTag::Trust(x), ProvTag::Trust(y)) = (a, b) {
                ProvTag::Trust(TrustLevel(x.0.max(y.0)))
            } else {
                a.clone()
            }
        };
        assert_eq!(
            store.insert(&t, meta(ProvTag::Trust(TrustLevel(1)), None), combine),
            InsertOutcome::New
        );
        // Same tuple, higher trust: tag merges.
        assert_eq!(
            store.insert(&t, meta(ProvTag::Trust(TrustLevel(3)), None), combine),
            InsertOutcome::MergedTag
        );
        // Same tuple, lower trust: nothing changes.
        assert_eq!(
            store.insert(&t, meta(ProvTag::Trust(TrustLevel(2)), None), combine),
            InsertOutcome::Duplicate
        );
        assert_eq!(store.get(&t).unwrap().tag, ProvTag::Trust(TrustLevel(3)));
        assert_eq!(store.total_tuples(), 1);
    }

    #[test]
    fn batch_insert_matches_row_at_a_time_semantics() {
        let combine = |a: &ProvTag, b: &ProvTag| {
            if let (ProvTag::Trust(x), ProvTag::Trust(y)) = (a, b) {
                ProvTag::Trust(TrustLevel(x.0.max(y.0)))
            } else {
                a.clone()
            }
        };
        let mut batched = NodeStore::new();
        let pred = batched.intern("link");
        batched.register_index_id(pred, &[0]);
        let rows: Vec<(Arc<[Value]>, TupleMeta)> = [
            (link(0, 1), 1u8),
            (link(0, 2), 1),
            (link(0, 1), 3), // in-batch duplicate: merges, does not copy
            (link(1, 2), 1),
        ]
        .into_iter()
        .map(|(t, trust)| {
            (
                Arc::from(t.values.as_slice()),
                meta(ProvTag::Trust(TrustLevel(trust)), None),
            )
        })
        .collect();
        let outcomes = batched.insert_rows(pred, rows.clone(), combine);
        assert_eq!(
            outcomes,
            vec![
                (InsertOutcome::New, 0),
                (InsertOutcome::New, 1),
                // The in-batch duplicate merges into (and reports) row 0.
                (InsertOutcome::MergedTag, 0),
                (InsertOutcome::New, 2)
            ]
        );

        // One row at a time produces the identical store.
        let mut serial = NodeStore::new();
        let pred_s = serial.intern("link");
        serial.register_index_id(pred_s, &[0]);
        let serial_outcomes: Vec<InsertOutcome> = rows
            .into_iter()
            .map(|(values, m)| serial.insert_row(pred_s, values, m, combine))
            .collect();
        assert_eq!(
            outcomes
                .iter()
                .map(|(outcome, _)| *outcome)
                .collect::<Vec<_>>(),
            serial_outcomes
        );
        assert_eq!(batched.total_tuples(), serial.total_tuples());
        assert_eq!(
            batched.get(&link(0, 1)).unwrap().tag,
            ProvTag::Trust(TrustLevel(3))
        );
        let ordered: Vec<Tuple> = batched
            .scan_ordered("link")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(ordered, vec![link(0, 1), link(0, 2), link(1, 2)]);
        batched.check_index_consistency().unwrap();
        serial.check_index_consistency().unwrap();
    }

    #[test]
    fn soft_state_expiry() {
        let mut store = NodeStore::new();
        store.insert(&link(0, 1), meta(ProvTag::None, Some(100)), |a, _| {
            a.clone()
        });
        store.insert(&link(0, 2), meta(ProvTag::None, None), |a, _| a.clone());
        store.insert(&link(0, 3), meta(ProvTag::None, Some(500)), |a, _| {
            a.clone()
        });
        let removed = store.expire(SimTime::from_micros(200));
        assert_eq!(removed, vec![link(0, 1)]);
        assert_eq!(store.total_tuples(), 2);
        // Expiry of the remaining soft-state tuple later.
        assert_eq!(store.expire(SimTime::from_micros(1_000)).len(), 1);
        assert_eq!(store.total_tuples(), 1);
    }

    #[test]
    fn expire_returns_tuples_in_seq_order_across_relations() {
        // Interleave soft-state tuples of several predicates so hash order
        // of the tables cannot accidentally match insertion order.
        let mut store = NodeStore::new();
        let tuples: Vec<Tuple> = (0..12)
            .map(|i| Tuple::new(["zeta", "alpha", "mid"][i % 3], vec![Value::Int(i as i64)]))
            .collect();
        for t in &tuples {
            store.insert(t, meta(ProvTag::None, Some(10)), |a, _| a.clone());
        }
        let removed = store.expire(SimTime::from_micros(10));
        assert_eq!(removed, tuples, "expirations follow insertion seq order");
        store.check_index_consistency().unwrap();
    }

    #[test]
    fn re_derivation_refreshes_ttl() {
        let mut store = NodeStore::new();
        let t = link(0, 1);
        store.insert(&t, meta(ProvTag::None, Some(100)), |a, _| a.clone());
        store.insert(&t, meta(ProvTag::None, Some(300)), |a, _| a.clone());
        assert_eq!(
            store.get(&t).unwrap().expires_at,
            Some(SimTime::from_micros(300))
        );
        // A hard-state re-derivation clears the TTL entirely.
        store.insert(&t, meta(ProvTag::None, None), |a, _| a.clone());
        assert_eq!(store.get(&t).unwrap().expires_at, None);
        assert!(store.expire(SimTime::from_micros(10_000)).is_empty());
    }

    #[test]
    fn seq_addressed_removal_and_tag_replacement() {
        let mut store = NodeStore::new();
        let pred = store.intern("link");
        store.register_index_id(pred, &[0]);
        store.insert(
            &link(0, 1),
            meta(ProvTag::Trust(TrustLevel(2)), None),
            |a, _| a.clone(),
        );
        store.insert(&link(0, 2), meta(ProvTag::None, Some(100)), |a, _| {
            a.clone()
        });
        let seq = store.seq_of(pred, &link(0, 1).values).unwrap();
        assert_eq!(store.seq_of(pred, &link(9, 9).values), None);
        // Tag replacement targets the live row.
        assert!(store.set_tag(pred, seq, ProvTag::Trust(TrustLevel(1))));
        assert_eq!(
            store.get(&link(0, 1)).unwrap().tag,
            ProvTag::Trust(TrustLevel(1))
        );
        // TTL refresh extends but never shortens.
        assert!(store.refresh_row_ttl(pred, &link(0, 2).values, Some(SimTime::from_micros(50))));
        assert_eq!(
            store.get(&link(0, 2)).unwrap().expires_at,
            Some(SimTime::from_micros(100))
        );
        assert!(store.refresh_row_ttl(pred, &link(0, 2).values, Some(SimTime::from_micros(400))));
        assert_eq!(
            store.get(&link(0, 2)).unwrap().expires_at,
            Some(SimTime::from_micros(400))
        );
        assert!(!store.refresh_row_ttl(pred, &link(9, 9).values, None));
        // Seq-addressed removal keeps everything consistent.
        let (values, _) = store.remove_by_seq(pred, seq).unwrap();
        assert_eq!(&values[..], &link(0, 1).values[..]);
        assert!(store.remove_by_seq(pred, seq).is_none());
        store.check_index_consistency().unwrap();
        // take_expired reports pred/seq/meta for the engine's ledger.
        let expired = store.take_expired(SimTime::from_micros(500));
        assert_eq!(expired.len(), 1);
        let (epred, _, evalues, emeta) = &expired[0];
        assert_eq!(*epred, pred);
        assert_eq!(&evalues[..], &link(0, 2).values[..]);
        assert_eq!(emeta.expires_at, Some(SimTime::from_micros(400)));
        assert_eq!(store.total_tuples(), 0);
    }

    #[test]
    fn remove_returns_metadata() {
        let mut store = NodeStore::new();
        store.insert(&link(0, 1), meta(ProvTag::None, None), |a, _| a.clone());
        assert!(store.remove(&link(0, 1)).is_some());
        assert!(store.remove(&link(0, 1)).is_none());
        assert_eq!(store.total_tuples(), 0);
    }

    // ---- secondary indexes ------------------------------------------------

    #[test]
    fn probe_answers_only_the_matching_bucket() {
        let mut store = NodeStore::new();
        store.register_index("link", &[0]);
        for (a, b) in [(0, 1), (0, 2), (1, 2), (2, 0)] {
            store.insert(&link(a, b), meta(ProvTag::None, None), |a, _| a.clone());
        }
        let hits: Vec<Tuple> = store
            .probe("link", &[0], &[Value::Addr(0)])
            .unwrap()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(hits, vec![link(0, 1), link(0, 2)], "insertion order");
        assert_eq!(
            store
                .probe("link", &[0], &[Value::Addr(9)])
                .unwrap()
                .count(),
            0
        );
        // Probing an unregistered index reports None (fall back to scan).
        assert!(store.probe("link", &[1], &[Value::Addr(2)]).is_none());
        assert!(store.probe("other", &[0], &[Value::Addr(0)]).is_none());
        store.check_index_consistency().unwrap();
    }

    #[test]
    fn register_index_backfills_existing_rows_in_insertion_order() {
        let mut store = NodeStore::new();
        for (a, b) in [(5, 1), (5, 9), (3, 1), (5, 4)] {
            store.insert(&link(a, b), meta(ProvTag::None, None), |a, _| a.clone());
        }
        store.register_index("link", &[0]);
        // Idempotent re-registration.
        store.register_index("link", &[0]);
        let hits: Vec<Tuple> = store
            .probe("link", &[0], &[Value::Addr(5)])
            .unwrap()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(hits, vec![link(5, 1), link(5, 9), link(5, 4)]);
        store.check_index_consistency().unwrap();
    }

    #[test]
    fn indexes_survive_interleaved_insert_remove_expire() {
        let mut store = NodeStore::new();
        store.register_index("link", &[0]);
        store.register_index("link", &[0, 1]);

        // Interleave: inserts with mixed TTLs, removes, expiry, re-inserts.
        store.insert(&link(0, 1), meta(ProvTag::None, Some(100)), |a, _| {
            a.clone()
        });
        store.insert(&link(0, 2), meta(ProvTag::None, None), |a, _| a.clone());
        store.check_index_consistency().unwrap();

        store.remove(&link(0, 1));
        store.check_index_consistency().unwrap();

        store.insert(&link(0, 1), meta(ProvTag::None, Some(200)), |a, _| {
            a.clone()
        });
        store.insert(&link(1, 2), meta(ProvTag::None, Some(50)), |a, _| a.clone());
        store.check_index_consistency().unwrap();

        // Expire drops link(1,2) (TTL 50) and link(0,1) (TTL 200).
        let removed = store.expire(SimTime::from_micros(60));
        assert_eq!(removed, vec![link(1, 2)]);
        store.check_index_consistency().unwrap();
        let removed = store.expire(SimTime::from_micros(500));
        assert_eq!(removed, vec![link(0, 1)]);
        store.check_index_consistency().unwrap();

        // The stale keys are really gone from the probe path.
        let hits: Vec<Tuple> = store
            .probe("link", &[0], &[Value::Addr(0)])
            .unwrap()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(hits, vec![link(0, 2)]);
        assert_eq!(
            store
                .probe("link", &[0, 1], &[Value::Addr(0), Value::Addr(1)])
                .unwrap()
                .count(),
            0
        );

        // Re-insertion after expiry shows up again.
        store.insert(&link(0, 1), meta(ProvTag::None, None), |a, _| a.clone());
        store.check_index_consistency().unwrap();
        assert_eq!(
            store
                .probe("link", &[0, 1], &[Value::Addr(0), Value::Addr(1)])
                .unwrap()
                .count(),
            1
        );
        // Insertion order in the shared bucket reflects the re-insert.
        let hits: Vec<Tuple> = store
            .probe("link", &[0], &[Value::Addr(0)])
            .unwrap()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(hits, vec![link(0, 2), link(0, 1)]);
    }

    #[test]
    fn duplicate_insert_does_not_duplicate_index_entries() {
        let mut store = NodeStore::new();
        store.register_index("link", &[1]);
        store.insert(&link(0, 7), meta(ProvTag::None, None), |a, _| a.clone());
        store.insert(&link(0, 7), meta(ProvTag::None, None), |a, _| a.clone());
        assert_eq!(
            store
                .probe("link", &[1], &[Value::Addr(7)])
                .unwrap()
                .count(),
            1
        );
        store.check_index_consistency().unwrap();
    }

    #[test]
    fn scan_ordered_follows_insertion_sequence() {
        let mut store = NodeStore::new();
        let inserted = [(4, 0), (2, 9), (7, 7), (0, 0), (3, 3)];
        for (a, b) in inserted {
            store.insert(&link(a, b), meta(ProvTag::None, None), |a, _| a.clone());
        }
        let got: Vec<Tuple> = store
            .scan_ordered("link")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let expected: Vec<Tuple> = inserted.iter().map(|&(a, b)| link(a, b)).collect();
        assert_eq!(got, expected);
        // Removal keeps relative order of the survivors.
        store.remove(&link(7, 7));
        let got: Vec<Tuple> = store
            .scan_ordered("link")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(got, vec![link(4, 0), link(2, 9), link(0, 0), link(3, 3)]);
        assert!(store.scan_ordered("nope").is_empty());
    }

    #[test]
    fn seq_list_compacts_after_heavy_churn() {
        let mut store = NodeStore::new();
        for i in 0..100u32 {
            store.insert(&link(i, i), meta(ProvTag::None, None), |a, _| a.clone());
        }
        // Remove 90 of 100: compaction must have kicked in (dead ≤ half).
        for i in 0..90u32 {
            store.remove(&link(i, i));
            store.check_index_consistency().unwrap();
        }
        let got: Vec<Tuple> = store
            .scan_ordered("link")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let expected: Vec<Tuple> = (90..100).map(|i| link(i, i)).collect();
        assert_eq!(got, expected, "survivors keep insertion order");
    }

    #[test]
    fn compaction_debt_is_metered_and_drained() {
        let mut store = NodeStore::new();
        for i in 0..100u32 {
            store.insert(&link(i, i), meta(ProvTag::None, None), |a, _| a.clone());
        }
        assert_eq!(store.take_compaction_debt(), 0, "inserts never compact");
        for i in 0..90u32 {
            store.remove(&link(i, i));
        }
        // 90 removals force several rebuilds; each walks the then-current
        // seq list, so the drained debt must cover at least one full rebuild
        // of the original list and be gone after draining.
        let walked = store.take_compaction_debt();
        assert!(walked >= 100, "compaction walked {walked} entries");
        assert_eq!(store.take_compaction_debt(), 0, "draining resets the debt");
    }

    #[test]
    fn index_buckets_hold_seq_ids_not_row_copies() {
        // The byte accounting makes the layout observable: adding a second
        // index over a relation must cost bucket keys + 8 bytes per row,
        // not another full copy of every row.
        let mut store = NodeStore::new();
        for i in 0..50u32 {
            store.insert(&link(i % 5, i), meta(ProvTag::None, None), |a, _| a.clone());
        }
        let rows_only = store.store_bytes();
        assert_eq!(store.index_bytes(), 0);
        store.register_index("link", &[0]);
        let one_index = store.index_bytes();
        assert!(one_index > 0);
        assert!(
            one_index < rows_only,
            "index overhead ({one_index} B) must undercut row data ({rows_only} B)"
        );
        assert_eq!(store.store_bytes(), rows_only, "rows are not re-charged");
        assert_eq!(store.total_tuple_bytes(), rows_only + one_index);
    }

    #[test]
    fn id_based_api_mirrors_engine_symbols() {
        let mut authority = Symbols::new();
        let link_id = authority.intern("link");
        authority.intern("reachable");
        let mut store = NodeStore::new();
        store.sync_symbols(&authority);
        assert_eq!(store.pred_id("link"), Some(link_id));
        assert_eq!(store.pred_name(link_id), Some("link"));
        store.register_index_id(link_id, &[0]);
        assert!(store.has_index_id(link_id, &[0]));
        let row: Arc<[Value]> = Arc::from(vec![Value::Addr(0), Value::Addr(1)].as_slice());
        assert_eq!(
            store.insert_row(link_id, row.clone(), meta(ProvTag::None, None), |a, _| a
                .clone()),
            InsertOutcome::New
        );
        assert!(store.meta_of(link_id, &row).is_some());
        assert_eq!(store.scan_rows(link_id).count(), 1);
        assert_eq!(store.scan_ordered_rows(link_id).count(), 1);
        assert_eq!(
            store
                .probe_id(link_id, &[0], &[Value::Addr(0)])
                .unwrap()
                .count(),
            1
        );
        // Growing the authority and re-syncing keeps ids aligned.
        let sensor = authority.intern("sensor");
        store.sync_symbols(&authority);
        assert_eq!(store.pred_id("sensor"), Some(sensor));
        assert!(store.remove_row(link_id, &row).is_some());
        store.check_index_consistency().unwrap();
    }

    #[test]
    fn take_expired_honours_ttl_extensions_and_hardening() {
        let mut store = NodeStore::new();
        let pred = store.intern("link");
        store.insert(&link(0, 1), meta(ProvTag::None, Some(100)), |a, _| {
            a.clone()
        });
        store.insert(&link(0, 2), meta(ProvTag::None, Some(100)), |a, _| {
            a.clone()
        });
        // Extend one row, harden the other: the stale heap entries at t=100
        // must not expire either of them.
        assert!(store.refresh_row_ttl(pred, &link(0, 1).values, Some(SimTime::from_micros(300))));
        store.insert(&link(0, 2), meta(ProvTag::None, None), |a, _| a.clone());
        assert!(store.take_expired(SimTime::from_micros(150)).is_empty());
        assert_eq!(store.total_tuples(), 2);
        let expired = store.take_expired(SimTime::from_micros(300));
        assert_eq!(expired.len(), 1, "only the extended soft-state row");
        assert_eq!(&expired[0].2[..], &link(0, 1).values[..]);
        assert!(store
            .take_expired(SimTime::from_micros(1_000_000))
            .is_empty());
        assert_eq!(store.total_tuples(), 1);
        store.check_index_consistency().unwrap();
    }

    #[test]
    fn small_tables_never_pay_compaction_debt() {
        let mut store = NodeStore::new();
        for i in 0..50u32 {
            store.insert(&link(i, i), meta(ProvTag::None, None), |a, _| a.clone());
        }
        for i in 0..50u32 {
            store.remove(&link(i, i));
            store.check_index_consistency().unwrap();
        }
        assert_eq!(
            store.take_compaction_debt(),
            0,
            "lists under the compaction threshold are never rebuilt"
        );
        assert!(store.scan_ordered("link").is_empty());
        // A fully emptied table clears its seq list outright (a clear, not
        // a charged rebuild): no dead residue survives the generation.
        let empty_bytes = store.store_bytes();
        for i in 0..50u32 {
            store.insert(&link(i, i), meta(ProvTag::None, None), |a, _| a.clone());
        }
        for i in 0..50u32 {
            store.remove(&link(i, i));
        }
        assert_eq!(store.store_bytes(), empty_bytes);
        assert_eq!(store.take_compaction_debt(), 0);
    }

    #[test]
    fn has_index_reflects_registration() {
        let mut store = NodeStore::new();
        assert!(!store.has_index("link", &[0]));
        store.register_index("link", &[0]);
        assert!(store.has_index("link", &[0]));
        assert!(!store.has_index("link", &[1]));
    }
}
