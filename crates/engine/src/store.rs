//! Per-node soft-state tuple storage.
//!
//! Declarative networks maintain derived state as *soft state*: every tuple
//! carries a creation timestamp and (optionally) a time-to-live, and expires
//! unless refreshed (Section 2.1 of the paper, citing the sliding-window
//! formulation of reference [2]).  Each node owns one [`NodeStore`] holding
//! its base and derived relations together with per-tuple metadata used by
//! the provenance layer.

use crate::tuple::Tuple;
use pasn_datalog::Value;
use pasn_net::SimTime;
use pasn_provenance::ProvTag;
use std::collections::HashMap;

/// Metadata attached to every stored tuple.
#[derive(Clone, Debug)]
pub struct TupleMeta {
    /// Provenance annotation (semiring tag).
    pub tag: ProvTag,
    /// Simulated time the tuple was inserted or derived locally.
    pub created_at: SimTime,
    /// Expiry time for soft-state tuples, `None` for hard state.
    pub expires_at: Option<SimTime>,
    /// Location value of the node that derived / asserted the tuple (equal to
    /// the local location for local derivations and base facts).  Distributed
    /// provenance uses it as the pointer target for traceback.
    pub origin: Value,
    /// Principal id of the asserting node (`None` when authentication is
    /// disabled).
    pub asserted_by: Option<u32>,
}

/// Result of inserting a tuple into a store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOutcome {
    /// The tuple was not present; rule evaluation should be triggered.
    New,
    /// The tuple was already present; its provenance tag was merged and
    /// changed (no re-derivation is triggered, see the crate docs).
    MergedTag,
    /// The tuple was already present with identical provenance.
    Duplicate,
}

/// The relations stored at one node.
#[derive(Clone, Debug, Default)]
pub struct NodeStore {
    tables: HashMap<String, HashMap<Vec<Value>, TupleMeta>>,
}

impl NodeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple.  If an identical tuple already exists, provenance
    /// tags are combined with the semiring `+` via `combine` (alternative
    /// derivations of the same tuple).
    pub fn insert<F>(&mut self, tuple: &Tuple, meta: TupleMeta, combine: F) -> InsertOutcome
    where
        F: FnOnce(&ProvTag, &ProvTag) -> ProvTag,
    {
        let table = self.tables.entry(tuple.predicate.clone()).or_default();
        match table.get_mut(&tuple.values) {
            None => {
                table.insert(tuple.values.clone(), meta);
                InsertOutcome::New
            }
            Some(existing) => {
                let merged = combine(&existing.tag, &meta.tag);
                // Refresh the soft-state lifetime on re-derivation.
                existing.expires_at = match (existing.expires_at, meta.expires_at) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
                if merged != existing.tag {
                    existing.tag = merged;
                    InsertOutcome::MergedTag
                } else {
                    InsertOutcome::Duplicate
                }
            }
        }
    }

    /// Looks up the metadata of an exact tuple.
    pub fn get(&self, tuple: &Tuple) -> Option<&TupleMeta> {
        self.tables.get(&tuple.predicate)?.get(&tuple.values)
    }

    /// True if the exact tuple is stored.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.get(tuple).is_some()
    }

    /// Removes an exact tuple, returning its metadata.
    pub fn remove(&mut self, tuple: &Tuple) -> Option<TupleMeta> {
        self.tables.get_mut(&tuple.predicate)?.remove(&tuple.values)
    }

    /// Iterates over all tuples of `predicate` with their metadata.
    pub fn scan<'a>(
        &'a self,
        predicate: &'a str,
    ) -> impl Iterator<Item = (Tuple, &'a TupleMeta)> + 'a {
        self.tables
            .get(predicate)
            .into_iter()
            .flat_map(move |table| {
                table
                    .iter()
                    .map(move |(values, meta)| (Tuple::new(predicate, values.clone()), meta))
            })
    }

    /// All predicates with at least one stored tuple.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.tables
            .iter()
            .filter(|(_, t)| !t.is_empty())
            .map(|(p, _)| p.as_str())
    }

    /// Number of tuples of `predicate`.
    pub fn count(&self, predicate: &str) -> usize {
        self.tables.get(predicate).map_or(0, HashMap::len)
    }

    /// Total number of stored tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(HashMap::len).sum()
    }

    /// Approximate storage footprint in bytes (tuple encodings plus tag
    /// sizes are charged by the caller, which has access to the var table).
    pub fn total_tuple_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|(pred, table)| {
                table
                    .keys()
                    .map(|values| Tuple::new(pred.clone(), values.clone()).encoded_len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Removes all tuples whose TTL has passed; returns the removed tuples.
    pub fn expire(&mut self, now: SimTime) -> Vec<Tuple> {
        let mut removed = Vec::new();
        for (pred, table) in &mut self.tables {
            let expired: Vec<Vec<Value>> = table
                .iter()
                .filter(|(_, meta)| meta.expires_at.map_or(false, |e| e <= now))
                .map(|(values, _)| values.clone())
                .collect();
            for values in expired {
                table.remove(&values);
                removed.push(Tuple::new(pred.clone(), values));
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasn_provenance::{ProvTag, TrustLevel};

    fn meta(tag: ProvTag, expires: Option<u64>) -> TupleMeta {
        TupleMeta {
            tag,
            created_at: SimTime::ZERO,
            expires_at: expires.map(SimTime::from_micros),
            origin: Value::Addr(0),
            asserted_by: Some(0),
        }
    }

    fn link(a: u32, b: u32) -> Tuple {
        Tuple::new("link", vec![Value::Addr(a), Value::Addr(b)])
    }

    #[test]
    fn insert_scan_and_counts() {
        let mut store = NodeStore::new();
        assert_eq!(
            store.insert(&link(0, 1), meta(ProvTag::None, None), |a, _| a.clone()),
            InsertOutcome::New
        );
        assert_eq!(
            store.insert(&link(0, 2), meta(ProvTag::None, None), |a, _| a.clone()),
            InsertOutcome::New
        );
        assert_eq!(store.count("link"), 2);
        assert_eq!(store.total_tuples(), 2);
        assert!(store.contains(&link(0, 1)));
        assert!(!store.contains(&link(1, 0)));
        assert_eq!(store.scan("link").count(), 2);
        assert_eq!(store.scan("reachable").count(), 0);
        assert_eq!(store.predicates().collect::<Vec<_>>(), vec!["link"]);
        assert!(store.total_tuple_bytes() > 0);
    }

    #[test]
    fn duplicate_inserts_merge_tags_without_retrigger() {
        let mut store = NodeStore::new();
        let t = link(0, 1);
        assert_eq!(
            store.insert(&t, meta(ProvTag::Trust(TrustLevel(1)), None), |a, b| {
                if let (ProvTag::Trust(x), ProvTag::Trust(y)) = (a, b) {
                    ProvTag::Trust(TrustLevel(x.0.max(y.0)))
                } else {
                    a.clone()
                }
            }),
            InsertOutcome::New
        );
        // Same tuple, higher trust: tag merges.
        assert_eq!(
            store.insert(&t, meta(ProvTag::Trust(TrustLevel(3)), None), |a, b| {
                if let (ProvTag::Trust(x), ProvTag::Trust(y)) = (a, b) {
                    ProvTag::Trust(TrustLevel(x.0.max(y.0)))
                } else {
                    a.clone()
                }
            }),
            InsertOutcome::MergedTag
        );
        // Same tuple, lower trust: nothing changes.
        assert_eq!(
            store.insert(&t, meta(ProvTag::Trust(TrustLevel(2)), None), |a, b| {
                if let (ProvTag::Trust(x), ProvTag::Trust(y)) = (a, b) {
                    ProvTag::Trust(TrustLevel(x.0.max(y.0)))
                } else {
                    a.clone()
                }
            }),
            InsertOutcome::Duplicate
        );
        assert_eq!(store.get(&t).unwrap().tag, ProvTag::Trust(TrustLevel(3)));
        assert_eq!(store.total_tuples(), 1);
    }

    #[test]
    fn soft_state_expiry() {
        let mut store = NodeStore::new();
        store.insert(&link(0, 1), meta(ProvTag::None, Some(100)), |a, _| a.clone());
        store.insert(&link(0, 2), meta(ProvTag::None, None), |a, _| a.clone());
        store.insert(&link(0, 3), meta(ProvTag::None, Some(500)), |a, _| a.clone());
        let removed = store.expire(SimTime::from_micros(200));
        assert_eq!(removed, vec![link(0, 1)]);
        assert_eq!(store.total_tuples(), 2);
        // Expiry of the remaining soft-state tuple later.
        assert_eq!(store.expire(SimTime::from_micros(1_000)).len(), 1);
        assert_eq!(store.total_tuples(), 1);
    }

    #[test]
    fn re_derivation_refreshes_ttl() {
        let mut store = NodeStore::new();
        let t = link(0, 1);
        store.insert(&t, meta(ProvTag::None, Some(100)), |a, _| a.clone());
        store.insert(&t, meta(ProvTag::None, Some(300)), |a, _| a.clone());
        assert_eq!(
            store.get(&t).unwrap().expires_at,
            Some(SimTime::from_micros(300))
        );
        // A hard-state re-derivation clears the TTL entirely.
        store.insert(&t, meta(ProvTag::None, None), |a, _| a.clone());
        assert_eq!(store.get(&t).unwrap().expires_at, None);
        assert!(store.expire(SimTime::from_micros(10_000)).is_empty());
    }

    #[test]
    fn remove_returns_metadata() {
        let mut store = NodeStore::new();
        store.insert(&link(0, 1), meta(ProvTag::None, None), |a, _| a.clone());
        assert!(store.remove(&link(0, 1)).is_some());
        assert!(store.remove(&link(0, 1)).is_none());
        assert_eq!(store.total_tuples(), 0);
    }
}
