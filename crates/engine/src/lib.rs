//! # pasn-engine
//!
//! The distributed NDlog / SeNDlog evaluator of the *Provenance-aware Secure
//! Networks* reproduction (Zhou, Cronin, Loo — ICDE 2008), standing in for
//! the modified P2 declarative networking system used by the paper's
//! evaluation.
//!
//! Each simulated node runs a semi-naive Datalog evaluator over soft-state
//! relations; rules whose head lives at a different node ship their derived
//! tuples through the deterministic transport of `pasn-net`, optionally
//! signed with the deriving principal's `says` mechanism (`pasn-crypto`) and
//! annotated with provenance (`pasn-provenance`).
//!
//! * [`tuple`] — materialised tuples and their canonical wire encoding;
//! * [`eval`] — expression evaluation, unification and the `f_*` built-ins;
//! * [`store`] — per-node soft-state relation storage;
//! * [`config`] — experiment configuration, including the NDLog / SeNDLog /
//!   SeNDLogProv presets of the paper's evaluation;
//! * [`metrics`] — completion time, bandwidth, and per-mechanism counters;
//! * [`dynamics`] — scripted churn ([`dynamics::ChurnScript`]) and the
//!   deletion ledger behind provenance-guided incremental deletion;
//! * [`runtime`] — the [`runtime::DistributedEngine`] driving everything to
//!   the distributed fixpoint.
//!
//! ## Semantics notes
//!
//! * Set semantics: a tuple derived again through a different derivation does
//!   not re-trigger rule evaluation; its provenance tag is merged with the
//!   semiring `+` instead.  This keeps evaluation terminating for recursive
//!   programs while still accumulating complete condensed provenance.
//! * Aggregates (`a_MIN`, `a_MAX`, `a_COUNT`, `a_SUM`) follow P2's pipelined
//!   semantics: an improved aggregate value is emitted as a new tuple and
//!   propagates incrementally.
//! * Provenance-guided deletion (`EngineConfig::dynamics`, or a
//!   [`runtime::DistributedEngine::run_scenario`] call) withdraws exactly
//!   the derivation events an insertion added: each stored tuple counts its
//!   supports, a retraction consumes one, and an unsupported tuple is
//!   removed with its recorded firings replayed as deletions (signed
//!   tombstone frames across nodes).  Cyclic self-support left behind by
//!   recursive rules is garbage-collected by a well-founded reconciliation
//!   sweep when a retraction wave drains.  Pipelined `a_MIN`/`a_MAX`
//!   aggregate *state* is not rolled back on deletion — a churned run may
//!   keep a stale best until a better value is re-derived (the known
//!   DRed-style limitation; see `ROADMAP.md`).
//! * Batched evaluation (`EngineConfig::batch_window_us > 0`) keeps joins
//!   exactly tuple-at-a-time-visible via per-row insertion seqs, so monotone
//!   rules derive identically under any batch split; pipelined Min/Max
//!   intermediate emissions and semiring-tag snapshots follow the coarser
//!   batch interleaving while converging to the same fixpoint.  With
//!   `batch_window_us = 0` (the default) evaluation is per-tuple, bit for
//!   bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dynamics;
pub mod eval;
pub mod metrics;
pub mod runtime;
pub mod store;
pub mod tuple;

pub use config::{
    EngineConfig, GraphMode, SystemVariant, DEFAULT_BATCH_WINDOW_US, DEFAULT_MAX_BATCH_TUPLES,
    DEFAULT_RETRANSMIT_RTO_US, DEFAULT_RETRY_BUDGET,
};
pub use dynamics::{ChurnEvent, ChurnScript};
pub use eval::{eval_expr, eval_filter, Bindings, EvalError};
pub use metrics::RunMetrics;
pub use pasn_trace::{
    LinkLifecycle, RuleProfile, TraceConfig, TraceEvent, TraceEventKind, TraceQuery, TraceRecorder,
};
pub use runtime::{DistributedEngine, EngineError};
pub use store::{InsertOutcome, NodeStore, TupleMeta};
pub use tuple::Tuple;
