//! Run metrics: everything the evaluation section of the paper reports.

use pasn_net::SimTime;
use std::fmt;
use std::time::Duration;

/// Metrics collected while running a program to its distributed fixpoint.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Simulated time at which the distributed fixpoint was reached — the
    /// "query completion time" of Figure 3.
    pub completion: SimTime,
    /// Wall-clock time the in-process run took (all nodes share one thread,
    /// so this measures total work rather than parallel completion).
    pub wall_clock: Duration,
    /// Number of inter-node messages sent.
    pub messages: u64,
    /// Total bytes across all messages — the "bandwidth utilization" of
    /// Figure 4.
    pub bytes: u64,
    /// Bytes attributable to `says` proofs (signatures / MACs).
    pub auth_bytes: u64,
    /// Bytes attributable to shipped provenance annotations.
    pub provenance_bytes: u64,
    /// Number of rule firings (derivations), including duplicates that were
    /// absorbed by set semantics.
    pub derivations: u64,
    /// Number of distinct tuples stored across all nodes at fixpoint.
    pub tuples_stored: u64,
    /// Signatures / MACs generated.
    pub signatures: u64,
    /// Signatures / MACs verified.
    pub verifications: u64,
    /// Tuples rejected because their proof failed verification.
    pub verification_failures: u64,
    /// Provenance tag operations performed (semiring `+` / `*`).
    pub provenance_ops: u64,
    /// Tuples dropped by the sampling policy (provenance not recorded).
    pub sampled_out: u64,
    /// Join probes answered through a secondary index (one per rendered
    /// key lookup).
    pub index_probes: u64,
    /// Tuples yielded by index probes (candidates actually examined on the
    /// index path; the join's true work, versus scanning the relation).
    pub index_hits: u64,
    /// Tuples examined through full-relation scans (joins with no bound key
    /// columns, or predicates without a registered index).
    pub scan_probes: u64,
    /// Bytes of tuple data stored across all nodes at fixpoint (canonical
    /// row encodings plus insertion-order seq lists; rows are charged once —
    /// secondary indexes share them by reference).
    pub store_bytes: u64,
    /// Bytes of secondary-index overhead across all nodes at fixpoint
    /// (bucket keys plus one 8-byte seq id per indexed row).
    pub index_bytes: u64,
    /// High-water mark of [`RunMetrics::store_bytes`] observed during the
    /// run.  Plain fixpoint runs sample only at completion (peak == final);
    /// the streaming driver samples at every quiescence point between
    /// scripted events, making this the honest bounded-memory gauge for
    /// generational workloads whose final store is far smaller than their
    /// transient working set.
    pub peak_store_bytes: u64,
    /// High-water mark of [`RunMetrics::index_bytes`], sampled alongside
    /// [`RunMetrics::peak_store_bytes`].
    pub peak_index_bytes: u64,
    /// High-water mark of live stored tuples across all nodes, sampled
    /// alongside [`RunMetrics::peak_store_bytes`] — the denominator of
    /// [`RunMetrics::bytes_per_tuple`] on generational workloads whose
    /// final store is empty.
    pub peak_tuples: u64,
    /// Seq-list entries walked by lazy store-compaction rebuilds across all
    /// nodes — the total deferred-maintenance work the run paid for (charged
    /// to node CPU lanes at `compact_entry_us` per entry).  Under sustained
    /// expiry churn this must stay within a small constant factor of the
    /// rows actually removed, or compaction is thrashing.
    pub compaction_walked: u64,
    /// Multi-tuple shipment frames sent between nodes.  Every inter-node
    /// message is one frame; each frame is signed and verified once,
    /// regardless of how many tuples it carries, so `signatures` and
    /// `verifications` scale with this counter rather than with shipped
    /// tuples.  With `batch_window = 0` every frame holds exactly one tuple
    /// and `frames == messages == batched_tuples`.
    pub frames: u64,
    /// Tuples shipped inside frames, after in-frame deduplication (the raw
    /// material of [`RunMetrics::mean_batch_occupancy`]).
    pub batched_tuples: u64,
    /// RSA private-key exponentiations performed: one per shipped frame at
    /// the `Rsa` `says` level, one per key-establishment handshake at the
    /// `Session` level — so a session run performs exactly
    /// [`RunMetrics::handshakes`] RSA signs, however many frames it ships.
    pub rsa_sign_ops: u64,
    /// RSA public-key exponentiations performed (frame verifications at the
    /// `Rsa` level, handshake verifications at the `Session` level).
    pub rsa_verify_ops: u64,
    /// HMAC-SHA-256 computations performed: frame MACs and verifications at
    /// the `Hmac` and `Session` levels, plus the two per-handshake session
    /// key derivations.
    pub hmac_ops: u64,
    /// Session-channel key-establishment handshakes initiated: one per live
    /// directed link, plus one per rebind after
    /// `EngineConfig::channel_rebind_frames` frames.
    pub handshakes: u64,
    /// Coalesced handshake-verification windows dispatched at the receiver:
    /// every contiguous run of same-instant handshake deliveries to one
    /// node is charged as a single CPU window of `k × rsa_verify_us`
    /// instead of `k` separate scheduling round-trips.  Always
    /// `<=` [`RunMetrics::handshakes`]; the gap measures how much
    /// establishment work arrived coalesced.
    pub handshake_batches: u64,
    /// Scripted network-dynamics events processed (link flaps, node
    /// failures/rejoins, scripted base-tuple inserts/retracts/refreshes).
    pub churn_events: u64,
    /// Tuples removed by provenance-guided deletion: support exhausted by a
    /// retraction cascade, killed by scheduled TTL expiry or a node
    /// failure, or garbage-collected by the well-founded reconciliation
    /// sweep.
    pub retractions: u64,
    /// Fresh insertions of a tuple previously retracted at the same node —
    /// the re-derivation work churn causes.
    pub rederivations: u64,
    /// Retraction shipment frames (tombstones) sent between nodes; each is
    /// also counted in [`RunMetrics::frames`] and proved once like a data
    /// frame.
    pub tombstone_frames: u64,
    /// Worker threads the run was configured with
    /// ([`EngineConfig::with_workers`]); `1` is the sequential path.
    pub worker_threads: u64,
    /// Node partitions evaluation was sharded into: `min(workers, nodes)`
    /// when a worker pool is configured, otherwise `1`.
    pub partitions: u64,
    /// Shipment frames whose source and destination nodes live in different
    /// partitions — the frames that cross a partition mailbox instead of
    /// staying worker-local.  Always `0` on single-partition runs.
    pub cross_partition_frames: u64,
    /// High-water mark of events assigned to a single partition within one
    /// same-instant wave — the load-balance indicator for the shard layout.
    /// `0` when no wave was ever dispatched to the pool.
    pub max_partition_queue: u64,
    /// Frames the installed [`pasn_net::FaultPlan`] dropped on the wire —
    /// every drop decision, original sends and retransmissions alike.
    /// Always `0` without a fault plan.
    pub frames_dropped: u64,
    /// Duplicate deliveries the fault plan injected (the receiver dedups
    /// them by per-link sequence number before MAC verification).
    pub frames_duplicated: u64,
    /// Retransmission attempts the sender-side reliability layer made for
    /// frames whose ack timer expired.
    pub retransmits: u64,
    /// Standalone cumulative-ack frames processed (acks are only emitted
    /// when a fault plan is installed).
    pub acks: u64,
    /// Retransmission attempts beyond the first for one frame — each such
    /// attempt doubled its retransmission timeout (exponential backoff).
    pub backoff_events: u64,
    /// Most delivery attempts any single frame needed (0 when every frame
    /// arrived on its original send).  Bounded by the retry budget.
    pub max_retransmit_per_frame: u64,
    /// Modeled host wall-clock of the run at the configured worker count,
    /// in simulated CPU terms: the total CPU the cost model charged to the
    /// nodes, minus the work that parallel waves executed off the critical
    /// path (each wave costs only its slowest partition).  At `workers = 1`
    /// this degenerates to the sum of all charged CPU, so the ratio
    /// `parallel_wall(n) / parallel_wall(1)` is a deterministic,
    /// machine-independent speedup estimate even on a single-core host.
    /// Zero under `CostModel::zero_cpu`.
    pub parallel_wall: Duration,
}

impl RunMetrics {
    /// Bandwidth in megabytes (the unit of Figure 4).
    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1_000_000.0
    }

    /// Completion time in seconds (the unit of Figure 3).
    pub fn completion_secs(&self) -> f64 {
        self.completion.as_secs_f64()
    }

    /// Mean shipment-frame occupancy: tuples shipped per signed frame
    /// (`0.0` before any frame was sent).  Per-frame costs — the message
    /// header, the `says` signature and its verification — are amortised
    /// over this many tuples.
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.batched_tuples as f64 / self.frames as f64
        }
    }

    /// Derivation throughput against simulated completion time: rule
    /// firings per simulated second (`0.0` on an empty or instantaneous
    /// run).  The scale workloads report this as their first-class
    /// throughput gauge — it is machine-independent, unlike wall-clock
    /// rates.
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.completion_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.derivations as f64 / secs
        }
    }

    /// Peak storage footprint per peak live tuple:
    /// `(peak_store_bytes + peak_index_bytes) / peak_tuples`, where both
    /// numerator and denominator fall back to the fixpoint footprint when
    /// no mid-run peak was sampled.  The bounded-memory gauge of the scale
    /// workloads (`0.0` with nothing ever stored).
    pub fn bytes_per_tuple(&self) -> f64 {
        let tuples = self.peak_tuples.max(self.tuples_stored);
        if tuples == 0 {
            return 0.0;
        }
        let peak = (self.peak_store_bytes + self.peak_index_bytes)
            .max(self.store_bytes + self.index_bytes);
        peak as f64 / tuples as f64
    }

    /// Folds a partition's metrics shard into the run totals at wave merge
    /// time: counters add, watermarks (`completion`, `max_partition_queue`)
    /// take the maximum, and configuration facts (`worker_threads`,
    /// `partitions`) plus host timings are left to the engine, which owns
    /// them for the whole run.
    pub fn absorb(&mut self, shard: &RunMetrics) {
        self.completion = self.completion.max(shard.completion);
        self.messages += shard.messages;
        self.bytes += shard.bytes;
        self.auth_bytes += shard.auth_bytes;
        self.provenance_bytes += shard.provenance_bytes;
        self.derivations += shard.derivations;
        self.tuples_stored += shard.tuples_stored;
        self.signatures += shard.signatures;
        self.verifications += shard.verifications;
        self.verification_failures += shard.verification_failures;
        self.provenance_ops += shard.provenance_ops;
        self.sampled_out += shard.sampled_out;
        self.index_probes += shard.index_probes;
        self.index_hits += shard.index_hits;
        self.scan_probes += shard.scan_probes;
        self.store_bytes += shard.store_bytes;
        self.index_bytes += shard.index_bytes;
        self.peak_store_bytes = self.peak_store_bytes.max(shard.peak_store_bytes);
        self.peak_index_bytes = self.peak_index_bytes.max(shard.peak_index_bytes);
        self.peak_tuples = self.peak_tuples.max(shard.peak_tuples);
        self.compaction_walked += shard.compaction_walked;
        self.frames += shard.frames;
        self.batched_tuples += shard.batched_tuples;
        self.rsa_sign_ops += shard.rsa_sign_ops;
        self.rsa_verify_ops += shard.rsa_verify_ops;
        self.hmac_ops += shard.hmac_ops;
        self.handshakes += shard.handshakes;
        self.handshake_batches += shard.handshake_batches;
        self.churn_events += shard.churn_events;
        self.retractions += shard.retractions;
        self.rederivations += shard.rederivations;
        self.tombstone_frames += shard.tombstone_frames;
        self.cross_partition_frames += shard.cross_partition_frames;
        self.max_partition_queue = self.max_partition_queue.max(shard.max_partition_queue);
        self.frames_dropped += shard.frames_dropped;
        self.frames_duplicated += shard.frames_duplicated;
        self.retransmits += shard.retransmits;
        self.acks += shard.acks;
        self.backoff_events += shard.backoff_events;
        self.max_retransmit_per_frame = self
            .max_retransmit_per_frame
            .max(shard.max_retransmit_per_frame);
    }

    /// Relative overhead of this run against a baseline, as fractions
    /// (e.g. `0.53` = 53% slower / larger).  Returns `(time_overhead,
    /// bandwidth_overhead)`.
    pub fn overhead_vs(&self, baseline: &RunMetrics) -> (f64, f64) {
        let time = if baseline.completion.as_micros() == 0 {
            0.0
        } else {
            self.completion_secs() / baseline.completion_secs() - 1.0
        };
        let bw = if baseline.bytes == 0 {
            0.0
        } else {
            self.bytes as f64 / baseline.bytes as f64 - 1.0
        };
        (time, bw)
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "completion {:.3}s, {} msgs, {:.3} MB ({} B auth, {} B provenance), {} derivations, {} tuples, {} sigs / {} verifs, {} frames ({:.2} tuples/frame), crypto: {} rsa sign / {} rsa verify / {} hmac / {} handshakes ({} batches), joins: {} hits / {} index probes, {} scanned, store {} B (+{} B index, peak {} B), churn: {} events / {} retractions / {} rederivations / {} tombstones, faults: {} dropped / {} duplicated / {} retransmits ({} backoffs, max {}/frame) / {} acks",
            self.completion_secs(),
            self.messages,
            self.megabytes(),
            self.auth_bytes,
            self.provenance_bytes,
            self.derivations,
            self.tuples_stored,
            self.signatures,
            self.verifications,
            self.frames,
            self.mean_batch_occupancy(),
            self.rsa_sign_ops,
            self.rsa_verify_ops,
            self.hmac_ops,
            self.handshakes,
            self.handshake_batches,
            self.index_hits,
            self.index_probes,
            self.scan_probes,
            self.store_bytes,
            self.index_bytes,
            self.peak_store_bytes.max(self.store_bytes) + self.peak_index_bytes.max(self.index_bytes),
            self.churn_events,
            self.retractions,
            self.rederivations,
            self.tombstone_frames,
            self.frames_dropped,
            self.frames_duplicated,
            self.retransmits,
            self.backoff_events,
            self.max_retransmit_per_frame,
            self.acks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Absorbing worker metric shards must be lossless: every counter adds,
    /// every peak gauge max-merges, and the engine-owned fields are left
    /// alone.  The shard constructor is a full struct literal on purpose —
    /// adding a `RunMetrics` field breaks this test at compile time until
    /// both `absorb` and this inventory classify it.
    #[test]
    fn absorbing_shards_is_lossless_for_every_counter() {
        fn shard(base: u64, peak: u64) -> RunMetrics {
            RunMetrics {
                completion: SimTime::from_micros(peak),
                wall_clock: Duration::from_micros(base),
                messages: base + 1,
                bytes: base + 2,
                auth_bytes: base + 3,
                provenance_bytes: base + 4,
                derivations: base + 5,
                tuples_stored: base + 6,
                signatures: base + 7,
                verifications: base + 8,
                verification_failures: base + 9,
                provenance_ops: base + 10,
                sampled_out: base + 11,
                index_probes: base + 12,
                index_hits: base + 13,
                scan_probes: base + 14,
                store_bytes: base + 15,
                index_bytes: base + 16,
                peak_store_bytes: peak,
                peak_index_bytes: peak + 1,
                peak_tuples: peak + 2,
                compaction_walked: base + 17,
                frames: base + 18,
                batched_tuples: base + 19,
                rsa_sign_ops: base + 20,
                rsa_verify_ops: base + 21,
                hmac_ops: base + 22,
                handshakes: base + 23,
                handshake_batches: base + 24,
                churn_events: base + 25,
                retractions: base + 26,
                rederivations: base + 27,
                tombstone_frames: base + 28,
                worker_threads: 9_999,
                partitions: 9_999,
                cross_partition_frames: base + 29,
                max_partition_queue: peak + 3,
                frames_dropped: base + 30,
                frames_duplicated: base + 31,
                retransmits: base + 32,
                acks: base + 33,
                backoff_events: base + 34,
                max_retransmit_per_frame: peak + 4,
                parallel_wall: Duration::from_micros(base),
            }
        }
        // Asymmetric shards: shard `a` wins some watermarks, `b` the rest,
        // so a max that silently added (or an add that silently maxed)
        // cannot cancel out.
        let a = shard(100, 1_000);
        let b = shard(2_000, 500);
        let mut total = RunMetrics::default();
        total.absorb(&a);
        total.absorb(&b);

        macro_rules! assert_adds {
            ($($field:ident),+ $(,)?) => {
                $(assert_eq!(
                    total.$field,
                    a.$field + b.$field,
                    "counter `{}` must add losslessly",
                    stringify!($field)
                );)+
            };
        }
        macro_rules! assert_maxes {
            ($($field:ident),+ $(,)?) => {
                $(assert_eq!(
                    total.$field,
                    a.$field.max(b.$field),
                    "gauge `{}` must max-merge",
                    stringify!($field)
                );)+
            };
        }
        assert_adds!(
            messages,
            bytes,
            auth_bytes,
            provenance_bytes,
            derivations,
            tuples_stored,
            signatures,
            verifications,
            verification_failures,
            provenance_ops,
            sampled_out,
            index_probes,
            index_hits,
            scan_probes,
            store_bytes,
            index_bytes,
            compaction_walked,
            frames,
            batched_tuples,
            rsa_sign_ops,
            rsa_verify_ops,
            hmac_ops,
            handshakes,
            handshake_batches,
            churn_events,
            retractions,
            rederivations,
            tombstone_frames,
            cross_partition_frames,
            frames_dropped,
            frames_duplicated,
            retransmits,
            acks,
            backoff_events,
        );
        assert_maxes!(
            completion,
            peak_store_bytes,
            peak_index_bytes,
            peak_tuples,
            max_partition_queue,
            max_retransmit_per_frame,
        );
        // Engine-owned fields never come from shards.
        assert_eq!(total.wall_clock, Duration::default());
        assert_eq!(total.parallel_wall, Duration::default());
        assert_eq!(total.worker_threads, 0);
        assert_eq!(total.partitions, 0);
    }

    #[test]
    fn unit_conversions() {
        let m = RunMetrics {
            completion: SimTime::from_millis(2_500),
            bytes: 3_000_000,
            ..RunMetrics::default()
        };
        assert!((m.completion_secs() - 2.5).abs() < 1e-9);
        assert!((m.megabytes() - 3.0).abs() < 1e-9);
        assert!(m.to_string().contains("2.500s"));
    }

    #[test]
    fn batch_occupancy_is_tuples_per_frame() {
        let mut m = RunMetrics::default();
        assert_eq!(m.mean_batch_occupancy(), 0.0);
        m.frames = 4;
        m.batched_tuples = 10;
        assert!((m.mean_batch_occupancy() - 2.5).abs() < 1e-9);
        assert!(m.to_string().contains("4 frames (2.50 tuples/frame)"));
    }

    #[test]
    fn crypto_op_counters_are_reported() {
        let m = RunMetrics {
            rsa_sign_ops: 3,
            rsa_verify_ops: 5,
            hmac_ops: 40,
            handshakes: 3,
            handshake_batches: 2,
            ..RunMetrics::default()
        };
        assert!(m
            .to_string()
            .contains("crypto: 3 rsa sign / 5 rsa verify / 40 hmac / 3 handshakes (2 batches)"));
    }

    #[test]
    fn churn_counters_are_reported() {
        let m = RunMetrics {
            churn_events: 4,
            retractions: 9,
            rederivations: 6,
            tombstone_frames: 2,
            ..RunMetrics::default()
        };
        assert!(m
            .to_string()
            .contains("churn: 4 events / 9 retractions / 6 rederivations / 2 tombstones"));
    }

    #[test]
    fn fault_counters_are_reported_and_absorbed() {
        let m = RunMetrics {
            frames_dropped: 5,
            frames_duplicated: 2,
            retransmits: 6,
            acks: 11,
            backoff_events: 1,
            max_retransmit_per_frame: 3,
            ..RunMetrics::default()
        };
        assert!(m.to_string().contains(
            "faults: 5 dropped / 2 duplicated / 6 retransmits (1 backoffs, max 3/frame) / 11 acks"
        ));
        let mut total = RunMetrics {
            frames_dropped: 1,
            max_retransmit_per_frame: 4,
            ..RunMetrics::default()
        };
        total.absorb(&m);
        assert_eq!(total.frames_dropped, 6);
        assert_eq!(total.retransmits, 6);
        assert_eq!(total.acks, 11);
        // Per-frame maxima max-merge instead of adding.
        assert_eq!(total.max_retransmit_per_frame, 4);
    }

    #[test]
    fn scale_gauges_derive_from_counters() {
        let m = RunMetrics {
            completion: SimTime::from_millis(2_000),
            derivations: 500,
            tuples_stored: 100,
            store_bytes: 4_000,
            index_bytes: 1_000,
            peak_store_bytes: 9_000,
            peak_index_bytes: 1_000,
            ..RunMetrics::default()
        };
        assert!((m.tuples_per_sec() - 250.0).abs() < 1e-9);
        // Peak footprint (9000 + 1000) over 100 tuples, not the final one.
        assert!((m.bytes_per_tuple() - 100.0).abs() < 1e-9);
        // A sampled live-tuple peak becomes the denominator — the honest
        // gauge when the final store is empty.
        let evicting = RunMetrics {
            peak_store_bytes: 9_000,
            peak_index_bytes: 1_000,
            peak_tuples: 200,
            ..RunMetrics::default()
        };
        assert!((evicting.bytes_per_tuple() - 50.0).abs() < 1e-9);
        // Without sampled peaks the fixpoint footprint is the fallback.
        let flat = RunMetrics {
            tuples_stored: 10,
            store_bytes: 400,
            index_bytes: 100,
            ..RunMetrics::default()
        };
        assert!((flat.bytes_per_tuple() - 50.0).abs() < 1e-9);
        assert_eq!(RunMetrics::default().tuples_per_sec(), 0.0);
        assert_eq!(RunMetrics::default().bytes_per_tuple(), 0.0);
        // Peaks max-merge across shards; walked-entry debt adds.
        let mut total = RunMetrics {
            peak_store_bytes: 5_000,
            compaction_walked: 7,
            ..RunMetrics::default()
        };
        total.absorb(&m);
        total.absorb(&evicting);
        assert_eq!(total.peak_store_bytes, 9_000);
        assert_eq!(total.peak_index_bytes, 1_000);
        assert_eq!(total.peak_tuples, 200);
        assert_eq!(total.compaction_walked, 7);
    }

    #[test]
    fn overhead_computation() {
        let baseline = RunMetrics {
            completion: SimTime::from_millis(1_000),
            bytes: 1_000,
            ..RunMetrics::default()
        };
        let slower = RunMetrics {
            completion: SimTime::from_millis(1_530),
            bytes: 1_360,
            ..RunMetrics::default()
        };
        let (t, b) = slower.overhead_vs(&baseline);
        assert!((t - 0.53).abs() < 1e-9);
        assert!((b - 0.36).abs() < 1e-9);
        // Degenerate baselines do not divide by zero.
        let (t0, b0) = slower.overhead_vs(&RunMetrics::default());
        assert_eq!((t0, b0), (0.0, 0.0));
    }
}
