//! Materialised tuples and their wire encoding.

use pasn_datalog::Value;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A materialised tuple: a predicate applied to concrete values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tuple {
    /// Predicate name.
    pub predicate: String,
    /// Attribute values, in declaration order.
    pub values: Vec<Value>,
}

/// Canonical byte encoding of a `(predicate, values)` pair — identical to
/// [`Tuple::encode`] but borrowing its parts, so the store and runtime can
/// encode shared rows without materialising a `Tuple` first.
pub fn encode_parts(predicate: &str, values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len_parts(predicate, values));
    out.extend_from_slice(&(predicate.len() as u16).to_be_bytes());
    out.extend_from_slice(predicate.as_bytes());
    out.extend_from_slice(&(values.len() as u16).to_be_bytes());
    for v in values {
        v.encode(&mut out);
    }
    out
}

/// Number of bytes [`encode_parts`] produces.
pub fn encoded_len_parts(predicate: &str, values: &[Value]) -> usize {
    2 + predicate.len() + 2 + values.iter().map(Value::encoded_len).sum::<usize>()
}

/// The stable 64-bit tuple key of a `(predicate, values)` pair — identical
/// to [`Tuple::key_hash`] but borrowing its parts.
pub fn key_hash_parts(predicate: &str, values: &[Value]) -> u64 {
    let mut hasher = DefaultHasher::new();
    predicate.hash(&mut hasher);
    values.hash(&mut hasher);
    hasher.finish()
}

/// Renders a `(predicate, values)` pair with a location marker — identical
/// to [`Tuple::render_located`] but borrowing its parts.
pub fn render_located_parts(
    predicate: &str,
    values: &[Value],
    location_index: Option<usize>,
) -> String {
    let args: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if Some(i) == location_index {
                format!("@{v}")
            } else {
                v.to_string()
            }
        })
        .collect();
    format!("{}({})", predicate, args.join(","))
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(predicate: impl Into<String>, values: Vec<Value>) -> Self {
        Tuple {
            predicate: predicate.into(),
            values,
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at the given attribute position, if in range.
    pub fn value(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// A stable 64-bit key for this tuple, used as the "unique key of a base
    /// input tuple" in provenance expressions and by the sampling policy.
    pub fn key_hash(&self) -> u64 {
        key_hash_parts(&self.predicate, &self.values)
    }

    /// Canonical byte encoding: length-prefixed predicate, attribute count,
    /// then each value in the shared [`Value`] encoding.  This is what gets
    /// signed by `says` and what the bandwidth accounting charges.
    pub fn encode(&self) -> Vec<u8> {
        encode_parts(&self.predicate, &self.values)
    }

    /// Number of bytes [`Tuple::encode`] produces.
    pub fn encoded_len(&self) -> usize {
        encoded_len_parts(&self.predicate, &self.values)
    }

    /// Decodes a tuple previously produced by [`Tuple::encode`].
    pub fn decode(bytes: &[u8]) -> Option<(Tuple, usize)> {
        if bytes.len() < 2 {
            return None;
        }
        let plen = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        let predicate = String::from_utf8(bytes.get(2..2 + plen)?.to_vec()).ok()?;
        let mut offset = 2 + plen;
        let count_raw: [u8; 2] = bytes.get(offset..offset + 2)?.try_into().ok()?;
        let count = u16::from_be_bytes(count_raw) as usize;
        offset += 2;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            let (v, used) = Value::decode(&bytes[offset..])?;
            values.push(v);
            offset += used;
        }
        Some((Tuple { predicate, values }, offset))
    }

    /// Renders the tuple with a location marker on the given attribute, e.g.
    /// `reachable(@n0,n2)`; this is the key format used by the provenance
    /// graph and the stores.
    pub fn render_located(&self, location_index: Option<usize>) -> String {
        render_located_parts(&self.predicate, &self.values, location_index)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_located(None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new(
            "bestPath",
            vec![
                Value::Addr(0),
                Value::Addr(3),
                Value::List(vec![Value::Addr(0), Value::Addr(1), Value::Addr(3)]),
                Value::Int(7),
            ],
        )
    }

    #[test]
    fn display_and_located_rendering() {
        let t = sample();
        assert_eq!(t.to_string(), "bestPath(n0,n3,[n0,n1,n3],7)");
        assert_eq!(t.render_located(Some(0)), "bestPath(@n0,n3,[n0,n1,n3],7)");
        assert_eq!(t.arity(), 4);
        assert_eq!(t.value(3), Some(&Value::Int(7)));
        assert_eq!(t.value(9), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.encoded_len());
        let (decoded, used) = Tuple::decode(&bytes).unwrap();
        assert_eq!(decoded, t);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn decode_rejects_truncation() {
        let t = sample();
        let bytes = t.encode();
        for cut in [0usize, 1, 3, bytes.len() - 1] {
            assert!(Tuple::decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn parts_helpers_agree_with_tuple_methods() {
        // The store and runtime encode/hash/render borrowed `(predicate,
        // values)` parts; they must stay byte-identical to the Tuple API
        // (signatures, bandwidth accounting and provenance ids depend on it).
        let t = sample();
        assert_eq!(encode_parts(&t.predicate, &t.values), t.encode());
        assert_eq!(encoded_len_parts(&t.predicate, &t.values), t.encoded_len());
        assert_eq!(key_hash_parts(&t.predicate, &t.values), t.key_hash());
        for loc in [None, Some(0), Some(2)] {
            assert_eq!(
                render_located_parts(&t.predicate, &t.values, loc),
                t.render_located(loc)
            );
        }
    }

    #[test]
    fn key_hash_distinguishes_tuples() {
        let a = Tuple::new("link", vec![Value::Addr(0), Value::Addr(1)]);
        let b = Tuple::new("link", vec![Value::Addr(1), Value::Addr(0)]);
        let c = Tuple::new("linc", vec![Value::Addr(0), Value::Addr(1)]);
        assert_eq!(a.key_hash(), a.clone().key_hash());
        assert_ne!(a.key_hash(), b.key_hash());
        assert_ne!(a.key_hash(), c.key_hash());
    }
}
