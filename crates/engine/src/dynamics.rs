//! Network dynamics: scripted churn and the provenance-guided deletion
//! ledger.
//!
//! PASN's protocols are meant to run *continuously*: derived tuples are soft
//! state that dies unless re-derived, links and nodes come and go, and the
//! system reconciles its derived state against the changing inputs (the same
//! shape as log-based reconciliation of replicated state).  This module
//! supplies the two pieces the evaluator needs for that:
//!
//! * [`ChurnScript`] / [`ChurnEvent`] — a deterministic, timestamped event
//!   script (link flaps, node failures and rejoins, scripted base-tuple
//!   inserts / retracts / refreshes) that
//!   [`DistributedEngine::run_scenario`](crate::DistributedEngine::run_scenario)
//!   schedules through the discrete-event simulator as first-class work, so
//!   churn interleaves with evaluation on the simulated clock;
//! * [`Ledger`] — the per-node record that makes deletion *provenance
//!   exact*: one [`SupportEntry`] per stored tuple counting its derivation
//!   events (base assertions plus rule firings, each with the semiring tag
//!   it contributed), and one [`FiringRecord`] per rule firing linking the
//!   antecedent rows (by store insertion seq) to the head tuple it produced.
//!   Retracting a tuple consumes one support; a tuple whose supports are
//!   exhausted is removed and its recorded firings are replayed as
//!   deletions — locally or as signed tombstone frames — so exactly what an
//!   insertion added is withdrawn, nothing more.
//!
//! Support counting alone over-retains under *recursive* rules (two tuples
//! can keep each other alive through a cycle of firings with no base
//! support left — the classic counting-algorithm limitation).  The engine
//! closes that hole with a well-founded reconciliation sweep once a
//! retraction wave drains: tuples not reachable from base support through
//! alive firings are garbage-collected (see
//! `DistributedEngine::well_founded_sweep`).

use crate::tuple::Tuple;
use pasn_datalog::{AggFunc, PredId, Value};
use pasn_net::SimTime;
use pasn_provenance::ProvTag;
use std::collections::HashMap;
use std::sync::Arc;

/// One scripted network-dynamics event.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnEvent {
    /// A directed link comes up: a `link(src, dst)` base tuple (with `cost`
    /// appended when the deployment uses weighted links) is asserted at
    /// `src`.
    LinkUp {
        /// Link source (also the asserting location).
        src: Value,
        /// Link destination.
        dst: Value,
        /// Link cost for three-attribute `link` relations; `None` for the
        /// two-attribute reachability form.
        cost: Option<i64>,
    },
    /// A directed link goes down: every `link(src, dst, ...)` base tuple
    /// stored at `src` is retracted (cascading through everything derived
    /// from it) and the link's session channel — if one is bound — is
    /// evicted on both ends, so a returning link rebinds with a fresh
    /// epoch.
    LinkDown {
        /// Link source.
        src: Value,
        /// Link destination.
        dst: Value,
    },
    /// A directed link is cut *without drain* (the crash-without-drain
    /// counterpart of [`ChurnEvent::LinkDown`]): every frame in flight on
    /// `src → dst` is discarded, its session channel is evicted immediately
    /// (both epoch floors rise, so a later rebind starts a fresh epoch),
    /// the engine's ledger reconciliation withdraws exactly the supports
    /// whose carrier frames died, and the `link(src, dst, ...)` base tuples
    /// are retracted.  Only meaningful with a fault plan installed — on a
    /// reliable transport nothing is ever in flight at churn time and this
    /// degenerates to [`ChurnEvent::LinkDown`].
    LinkCut {
        /// Link source.
        src: Value,
        /// Link destination.
        dst: Value,
    },
    /// A node crash-stops *without drain*: every link touching it is cut as
    /// by [`ChurnEvent::LinkCut`] (in-flight frames in both directions are
    /// discarded and channels evicted immediately), then its base tuples
    /// are withdrawn and remembered for a later
    /// [`ChurnEvent::NodeRejoin`], as under [`ChurnEvent::NodeFail`].
    NodeCrash {
        /// The crashing location.
        node: Value,
    },
    /// A node crash-stops: every base tuple it asserted is withdrawn (the
    /// network-visible effect of the node no longer refreshing its
    /// advertisements), remembered for a later rejoin, and every session
    /// channel touching the node is evicted.
    NodeFail {
        /// The failing location.
        node: Value,
    },
    /// A previously failed node rejoins: the base tuples remembered at its
    /// failure are re-asserted and evaluation re-derives from them.
    NodeRejoin {
        /// The rejoining location.
        node: Value,
    },
    /// Assert an arbitrary base tuple at `location`.
    Insert {
        /// Home location of the tuple.
        location: Value,
        /// The base tuple to assert.
        tuple: Tuple,
    },
    /// Withdraw one assertion of a base tuple at `location` (a tuple
    /// asserted more than once loses one support; the last withdrawal
    /// removes it and cascades).
    Retract {
        /// Home location of the tuple.
        location: Value,
        /// The base tuple to retract.
        tuple: Tuple,
    },
    /// Refresh the soft-state TTL of a stored tuple at `location` to the
    /// event time plus the configured default TTL (a no-op for hard state
    /// or when no default TTL is configured).
    Refresh {
        /// Location storing the tuple.
        location: Value,
        /// The tuple whose lifetime to extend.
        tuple: Tuple,
    },
}

/// A deterministic, timestamped script of [`ChurnEvent`]s — the dynamics
/// analogue of a topology: same script, same seed, same run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChurnScript {
    events: Vec<(SimTime, ChurnEvent)>,
}

impl ChurnScript {
    /// An empty script (running it degenerates to a plain fixpoint run with
    /// the dynamics machinery armed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `at_us` microseconds of simulated time.
    pub fn at(mut self, at_us: u64, event: ChurnEvent) -> Self {
        self.events.push((SimTime::from_micros(at_us), event));
        self
    }

    /// Convenience: an unweighted link comes up at `at_us`.
    pub fn link_up(self, at_us: u64, src: Value, dst: Value) -> Self {
        self.at(
            at_us,
            ChurnEvent::LinkUp {
                src,
                dst,
                cost: None,
            },
        )
    }

    /// Convenience: a weighted link comes up at `at_us`.
    pub fn weighted_link_up(self, at_us: u64, src: Value, dst: Value, cost: i64) -> Self {
        self.at(
            at_us,
            ChurnEvent::LinkUp {
                src,
                dst,
                cost: Some(cost),
            },
        )
    }

    /// Convenience: a link goes down at `at_us`.
    pub fn link_down(self, at_us: u64, src: Value, dst: Value) -> Self {
        self.at(at_us, ChurnEvent::LinkDown { src, dst })
    }

    /// Convenience: a link is cut without drain at `at_us`.
    pub fn link_cut(self, at_us: u64, src: Value, dst: Value) -> Self {
        self.at(at_us, ChurnEvent::LinkCut { src, dst })
    }

    /// Convenience: a node crashes without drain at `at_us`.
    pub fn node_crash(self, at_us: u64, node: Value) -> Self {
        self.at(at_us, ChurnEvent::NodeCrash { node })
    }

    /// Convenience: a node fails at `at_us`.
    pub fn node_fail(self, at_us: u64, node: Value) -> Self {
        self.at(at_us, ChurnEvent::NodeFail { node })
    }

    /// Convenience: a node rejoins at `at_us`.
    pub fn node_rejoin(self, at_us: u64, node: Value) -> Self {
        self.at(at_us, ChurnEvent::NodeRejoin { node })
    }

    /// The scheduled events, in script order (the engine orders ties at one
    /// timestamp by script position).
    pub fn events(&self) -> &[(SimTime, ChurnEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One contribution to a stored tuple's support: whether it came from a
/// base assertion, and the semiring tag it merged in.
pub(crate) type Contribution = (bool, ProvTag);

/// Identity of a firing's head tuple: `(destination, predicate, row)`.
pub(crate) type HeadKey = (Value, PredId, Arc<[Value]>);

/// A base-asserted row: predicate plus shared values.
pub(crate) type BaseRow = (PredId, Arc<[Value]>);

/// The support record of one stored tuple (keyed by its store insertion
/// seq): how many derivation events currently sustain it, how many of those
/// are base assertions, and the tag each contributed — so a surviving
/// tuple's tag can be recomputed exactly as the semiring sum of the
/// remaining contributions.
pub(crate) struct SupportEntry {
    /// The tuple's predicate (needed to address the store by seq).
    pub pred: PredId,
    /// Alive derivation events (base assertions + rule firings).
    pub count: u64,
    /// How many of `count` are base assertions.
    pub base_count: u64,
    /// One entry per alive contribution: `(is_base, contributed tag)`.
    pub tags: Vec<Contribution>,
    /// Location column of the tuple (for rendering provenance keys on
    /// deletion).
    pub location_index: Option<usize>,
}

/// The aggregate identity of one recorded `a_MIN` / `a_MAX` candidate
/// firing: which per-group best-value competition it entered, and with what
/// value.  Candidate firings are recorded whether or not they improved the
/// group's best, so the deletion ledger can re-elect the next-best
/// surviving candidate when the current best is retracted — the fix for
/// the stale-best-on-deletion limitation.
#[derive(Clone, Debug)]
pub(crate) struct AggFiring {
    /// Rule label — first component of the group key.
    pub label: String,
    /// Grouping columns (the head row minus the aggregated column).
    pub group: Vec<Value>,
    /// The candidate's aggregate value.
    pub value: i64,
    /// Index of the aggregated column in the head row.
    pub agg_index: usize,
    /// `Min` or `Max` (running `Count` / `Sum` aggregates are not candidate
    /// competitions and never carry an [`AggFiring`]).
    pub func: AggFunc,
}

/// One recorded rule firing at the deriving node: the antecedent rows (by
/// local insertion seq) and the head tuple the firing emitted, with the tag
/// it contributed.  Replaying the record with opposite polarity is the
/// deletion cascade.
pub(crate) struct FiringRecord {
    /// False once any antecedent died (each firing contributes — and is
    /// withdrawn — exactly once, however many of its antecedents die).
    pub alive: bool,
    /// Node the head tuple was routed to.
    pub dest: Value,
    /// Head predicate.
    pub pred: PredId,
    /// Head row.
    pub values: Arc<[Value]>,
    /// Tag the firing contributed to the head (the antecedent-tag product
    /// at firing time).
    pub tag: ProvTag,
    /// Head location column (for rendering provenance keys on deletion).
    pub location_index: Option<usize>,
    /// Antecedent rows by local insertion seq.
    pub antecedents: Vec<u64>,
    /// `Some` when this firing is an `a_MIN` / `a_MAX` candidate: killing
    /// it removes the candidate from its group's competition instead of
    /// routing a withdrawal directly (only the group's *emitted* best row
    /// is ever withdrawn, and only when no surviving candidate defends its
    /// value).
    pub agg: Option<AggFiring>,
}

/// Per-node deletion ledger: supports for stored rows, the firing log, and
/// the indexes the cascade and the well-founded sweep walk.  Maintained
/// only when dynamics are enabled — static runs pay nothing.
#[derive(Default)]
pub(crate) struct Ledger {
    /// All recorded firings, in firing order.
    pub firings: Vec<FiringRecord>,
    /// Firings by antecedent seq (a seq appears once per occurrence, so a
    /// self-join lists its firing twice; the `alive` flag dedups the kill).
    pub by_antecedent: HashMap<u64, Vec<u32>>,
    /// Firings by head identity, for force-kills (expiry, node failure)
    /// that must silence upstream contributions without decrementing.
    pub by_head: HashMap<HeadKey, Vec<u32>>,
    /// Support entries for every live stored row, by insertion seq.
    pub supports: HashMap<u64, SupportEntry>,
    /// Base-asserted rows at this node, by insertion seq (what a node
    /// failure withdraws and a rejoin restores).
    pub base_rows: HashMap<u64, BaseRow>,
    /// Rows ever retracted at this node, for the `rederivations` counter.
    pub retracted: std::collections::HashSet<BaseRow>,
}

impl Ledger {
    /// Records one arriving contribution for the row at `seq`.
    pub fn record_arrival(
        &mut self,
        seq: u64,
        pred: PredId,
        is_base: bool,
        tag: ProvTag,
        location_index: Option<usize>,
    ) {
        let entry = self.supports.entry(seq).or_insert_with(|| SupportEntry {
            pred,
            count: 0,
            base_count: 0,
            tags: Vec::new(),
            location_index,
        });
        entry.count += 1;
        if is_base {
            entry.base_count += 1;
        }
        entry.tags.push((is_base, tag));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    #[test]
    fn scripts_accumulate_events_in_order() {
        let script = ChurnScript::new()
            .link_down(1_000, v("a"), v("b"))
            .link_up(2_000, v("a"), v("b"))
            .weighted_link_up(2_500, v("a"), v("c"), 4)
            .node_fail(3_000, v("c"))
            .node_rejoin(4_000, v("c"))
            .link_cut(4_200, v("a"), v("b"))
            .node_crash(4_500, v("b"))
            .at(
                5_000,
                ChurnEvent::Insert {
                    location: v("a"),
                    tuple: Tuple::new("sensor", vec![Value::Int(1)]),
                },
            );
        assert_eq!(script.len(), 8);
        assert!(!script.is_empty());
        assert_eq!(script.events()[0].0, SimTime::from_micros(1_000));
        assert!(matches!(
            script.events()[1].1,
            ChurnEvent::LinkUp { cost: None, .. }
        ));
        assert!(matches!(
            script.events()[2].1,
            ChurnEvent::LinkUp { cost: Some(4), .. }
        ));
        assert!(matches!(script.events()[5].1, ChurnEvent::LinkCut { .. }));
        assert!(matches!(script.events()[6].1, ChurnEvent::NodeCrash { .. }));
        assert!(ChurnScript::new().is_empty());
    }

    #[test]
    fn ledger_tracks_supports() {
        let mut ledger = Ledger::default();
        let pred = PredId(0);
        ledger.record_arrival(7, pred, true, ProvTag::None, Some(0));
        ledger.record_arrival(7, pred, false, ProvTag::None, Some(0));
        let entry = &ledger.supports[&7];
        assert_eq!((entry.count, entry.base_count), (2, 1));
        assert_eq!(entry.tags.len(), 2);
        assert_eq!(entry.pred, pred);
    }
}
