//! Expression evaluation, unification, and NDlog built-in functions.

use pasn_datalog::plan::{SlotTerm, VarSlots};
use pasn_datalog::{BinOp, Expr, Term, Value};
use std::fmt;
use std::sync::Arc;

/// Variable bindings accumulated while evaluating a rule body.
///
/// Bindings are stored in a flat `Vec<Option<Value>>` indexed by the dense
/// slot ids the planner assigns to every rule variable ([`VarSlots`]), so
/// cloning a binding set while branching through a join is a plain vector
/// copy instead of a string-keyed map rebuild.  The historical name-based
/// accessors ([`Bindings::get`], [`Bindings::bind`], unification over AST
/// [`Term`]s) remain as a thin shim that resolves names through the shared
/// slot table — they are used where the AST still speaks in names (filters,
/// assignments, head construction) and by unit tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bindings {
    table: Arc<VarSlots>,
    slots: Vec<Option<Value>>,
}

impl Bindings {
    /// Creates an empty binding set with its own growable slot table (the
    /// shim path used by tests and ad-hoc evaluation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a binding set over a rule's planner-assigned slot table.
    pub fn with_slots(table: Arc<VarSlots>) -> Self {
        let slots = vec![None; table.len()];
        Bindings { table, slots }
    }

    /// The slot of `var`, allocating one in a private copy of the table if
    /// the planner did not assign it (only happens on the shim path).
    fn ensure_slot(&mut self, var: &str) -> usize {
        if let Some(slot) = self.table.slot(var) {
            return slot;
        }
        let slot = Arc::make_mut(&mut self.table).get_or_insert(var);
        self.slots.resize(self.table.len(), None);
        slot
    }

    /// Looks up a variable by name.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.table
            .slot(var)
            .and_then(|slot| self.slots.get(slot))
            .and_then(Option::as_ref)
    }

    /// Looks up a variable by its dense slot.
    pub fn get_slot(&self, slot: usize) -> Option<&Value> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Binds a variable by name (overwrites silently; callers check
    /// consistency via [`Bindings::unify_term`]).
    pub fn bind(&mut self, var: impl Into<String>, value: Value) {
        let slot = self.ensure_slot(&var.into());
        self.slots[slot] = Some(value);
    }

    /// Binds a variable by its dense slot (overwrites silently).
    pub fn bind_slot(&mut self, slot: usize, value: Value) {
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, None);
        }
        self.slots[slot] = Some(value);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Attempts to unify `term` with `value`: constants must match, variables
    /// either bind or must agree with their existing binding, wildcards always
    /// match.  Returns false (leaving bindings possibly extended for fresh
    /// variables) when unification fails.
    pub fn unify_term(&mut self, term: &Term, value: &Value) -> bool {
        match term {
            Term::Wildcard => true,
            Term::Constant(c) => c == value,
            Term::Variable(v) => {
                let slot = self.ensure_slot(v);
                self.unify_slot(slot, value)
            }
            // Aggregates never appear in body atoms (the parser rejects them).
            Term::Aggregate(..) => false,
        }
    }

    /// Attempts to unify a planner-compiled [`SlotTerm`] with `value` — the
    /// fast path used by delta and join evaluation.
    pub fn unify_slot_term(&mut self, term: &SlotTerm, value: &Value) -> bool {
        match term {
            SlotTerm::Wildcard => true,
            SlotTerm::Const(c) => c == value,
            SlotTerm::Slot(slot) => self.unify_slot(*slot, value),
        }
    }

    fn unify_slot(&mut self, slot: usize, value: &Value) -> bool {
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, None);
        }
        match &self.slots[slot] {
            Some(existing) => existing == value,
            None => {
                self.slots[slot] = Some(value.clone());
                true
            }
        }
    }

    /// Resolves a term to a value under the current bindings.
    pub fn resolve_term(&self, term: &Term) -> Result<Value, EvalError> {
        match term {
            Term::Constant(c) => Ok(c.clone()),
            Term::Variable(v) | Term::Aggregate(_, v) => self
                .get(v)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
            Term::Wildcard => Err(EvalError::WildcardInExpression),
        }
    }
}

/// Errors raised while evaluating expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A variable had no binding.
    UnboundVariable(String),
    /// A wildcard appeared where a value is required.
    WildcardInExpression,
    /// Operand types did not match the operator.
    TypeMismatch {
        /// The operation being evaluated.
        operation: String,
        /// Description of the offending operands.
        operands: String,
    },
    /// An unknown built-in function was called.
    UnknownFunction(String),
    /// A built-in was called with the wrong number of arguments.
    Arity {
        /// Function name.
        function: String,
        /// Expected argument count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// Division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "variable `{v}` is unbound"),
            EvalError::WildcardInExpression => write!(f, "wildcard `_` used in an expression"),
            EvalError::TypeMismatch {
                operation,
                operands,
            } => {
                write!(f, "type mismatch in {operation}: {operands}")
            }
            EvalError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            EvalError::Arity {
                function,
                expected,
                got,
            } => {
                write!(f, "`{function}` expects {expected} arguments, got {got}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates an expression under the given bindings.
pub fn eval_expr(expr: &Expr, bindings: &Bindings) -> Result<Value, EvalError> {
    match expr {
        Expr::Term(t) => bindings.resolve_term(t),
        Expr::BinOp(op, lhs, rhs) => {
            let l = eval_expr(lhs, bindings)?;
            let r = eval_expr(rhs, bindings)?;
            eval_binop(*op, &l, &r)
        }
        Expr::Call(name, args) => {
            let values: Result<Vec<Value>, EvalError> =
                args.iter().map(|a| eval_expr(a, bindings)).collect();
            eval_builtin(name, &values?)
        }
    }
}

/// Evaluates a filter expression to a boolean.
pub fn eval_filter(expr: &Expr, bindings: &Bindings) -> Result<bool, EvalError> {
    match eval_expr(expr, bindings)? {
        Value::Bool(b) => Ok(b),
        other => Err(EvalError::TypeMismatch {
            operation: "filter".into(),
            operands: format!("expected bool, got {} ({})", other, other.type_name()),
        }),
    }
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    use BinOp::*;
    let type_err = |operation: &str| EvalError::TypeMismatch {
        operation: operation.to_string(),
        operands: format!("{} ({}) and {} ({})", l, l.type_name(), r, r.type_name()),
    };
    match op {
        Add | Sub | Mul | Div | Mod => {
            let (a, b) = match (l, r) {
                (Value::Int(a), Value::Int(b)) => (*a, *b),
                _ => return Err(type_err(op.symbol())),
            };
            let result = match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                Div => {
                    if b == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    a / b
                }
                Mod => {
                    if b == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Int(result))
        }
        Eq => Ok(Value::Bool(l == r)),
        Ne => Ok(Value::Bool(l != r)),
        Lt | Le | Gt | Ge => {
            // Ordered comparison requires same-variant comparable values.
            let ordering = match (l, r) {
                (Value::Int(a), Value::Int(b)) => a.cmp(b),
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                (Value::Addr(a), Value::Addr(b)) => a.cmp(b),
                _ => return Err(type_err(op.symbol())),
            };
            let result = match op {
                Lt => ordering.is_lt(),
                Le => ordering.is_le(),
                Gt => ordering.is_gt(),
                Ge => ordering.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(result))
        }
        And | Or => {
            let (a, b) = match (l, r) {
                (Value::Bool(a), Value::Bool(b)) => (*a, *b),
                _ => return Err(type_err(op.symbol())),
            };
            Ok(Value::Bool(if op == And { a && b } else { a || b }))
        }
    }
}

/// NDlog built-in functions (the `f_*` family used by the Best-Path query and
/// the use-case programs).
fn eval_builtin(name: &str, args: &[Value]) -> Result<Value, EvalError> {
    let arity = |expected: usize| {
        if args.len() == expected {
            Ok(())
        } else {
            Err(EvalError::Arity {
                function: name.to_string(),
                expected,
                got: args.len(),
            })
        }
    };
    match name {
        // f_init(S, D): the initial path vector [S, D].
        "f_init" => {
            arity(2)?;
            Ok(Value::List(vec![args[0].clone(), args[1].clone()]))
        }
        // f_concat(X, P): prepend X to path vector P.
        "f_concat" => {
            arity(2)?;
            let list = args[1].as_list().ok_or_else(|| EvalError::TypeMismatch {
                operation: "f_concat".into(),
                operands: format!("second argument must be a list, got {}", args[1]),
            })?;
            let mut out = Vec::with_capacity(list.len() + 1);
            out.push(args[0].clone());
            out.extend_from_slice(list);
            Ok(Value::List(out))
        }
        // f_append(P, X): append X to path vector P.
        "f_append" => {
            arity(2)?;
            let list = args[0].as_list().ok_or_else(|| EvalError::TypeMismatch {
                operation: "f_append".into(),
                operands: format!("first argument must be a list, got {}", args[0]),
            })?;
            let mut out = list.to_vec();
            out.push(args[1].clone());
            Ok(Value::List(out))
        }
        // f_member(P, X): true if X occurs in P.
        "f_member" => {
            arity(2)?;
            let list = args[0].as_list().ok_or_else(|| EvalError::TypeMismatch {
                operation: "f_member".into(),
                operands: format!("first argument must be a list, got {}", args[0]),
            })?;
            Ok(Value::Bool(list.contains(&args[1])))
        }
        // f_size(P): number of elements in P.
        "f_size" => {
            arity(1)?;
            let list = args[0].as_list().ok_or_else(|| EvalError::TypeMismatch {
                operation: "f_size".into(),
                operands: format!("argument must be a list, got {}", args[0]),
            })?;
            Ok(Value::Int(list.len() as i64))
        }
        // f_first(P) / f_last(P): endpoints of a path vector.
        "f_first" | "f_last" => {
            arity(1)?;
            let list = args[0].as_list().ok_or_else(|| EvalError::TypeMismatch {
                operation: name.into(),
                operands: format!("argument must be a list, got {}", args[0]),
            })?;
            let item = if name == "f_first" {
                list.first()
            } else {
                list.last()
            };
            item.cloned().ok_or_else(|| EvalError::TypeMismatch {
                operation: name.into(),
                operands: "empty list".into(),
            })
        }
        // f_list(...): build a list from the arguments.
        "f_list" => Ok(Value::List(args.to_vec())),
        // f_min(a, b) / f_max(a, b) on integers.
        "f_min" | "f_max" => {
            arity(2)?;
            match (&args[0], &args[1]) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(if name == "f_min" {
                    *a.min(b)
                } else {
                    *a.max(b)
                })),
                _ => Err(EvalError::TypeMismatch {
                    operation: name.into(),
                    operands: format!("{} and {}", args[0], args[1]),
                }),
            }
        }
        other => Err(EvalError::UnknownFunction(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasn_datalog::parse_rule;
    use pasn_datalog::BodyLiteral;

    fn bindings(pairs: &[(&str, Value)]) -> Bindings {
        let mut b = Bindings::new();
        for (k, v) in pairs {
            b.bind(*k, v.clone());
        }
        b
    }

    #[test]
    fn unify_constants_variables_and_wildcards() {
        let mut b = Bindings::new();
        assert!(b.unify_term(&Term::Wildcard, &Value::Int(1)));
        assert!(b.unify_term(&Term::constant(5i64), &Value::Int(5)));
        assert!(!b.unify_term(&Term::constant(5i64), &Value::Int(6)));
        assert!(b.unify_term(&Term::var("X"), &Value::Addr(3)));
        // Rebinding to the same value succeeds, to a different one fails.
        assert!(b.unify_term(&Term::var("X"), &Value::Addr(3)));
        assert!(!b.unify_term(&Term::var("X"), &Value::Addr(4)));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn slot_bindings_follow_the_planner_assignment() {
        use pasn_datalog::plan::{SlotTerm, VarSlots};
        use std::sync::Arc;

        let mut table = VarSlots::new();
        let s = table.get_or_insert("S");
        let d = table.get_or_insert("D");
        let mut b = Bindings::with_slots(Arc::new(table));
        assert!(b.is_empty());

        // Slot and name views agree.
        assert!(b.unify_slot_term(&SlotTerm::Slot(s), &Value::Addr(1)));
        assert_eq!(b.get("S"), Some(&Value::Addr(1)));
        assert_eq!(b.get_slot(s), Some(&Value::Addr(1)));
        assert_eq!(b.get_slot(d), None);

        // Rebinding through the slot path obeys unification.
        assert!(b.unify_slot_term(&SlotTerm::Slot(s), &Value::Addr(1)));
        assert!(!b.unify_slot_term(&SlotTerm::Slot(s), &Value::Addr(2)));
        assert!(b.unify_slot_term(&SlotTerm::Const(Value::Int(3)), &Value::Int(3)));
        assert!(!b.unify_slot_term(&SlotTerm::Const(Value::Int(3)), &Value::Int(4)));
        assert!(b.unify_slot_term(&SlotTerm::Wildcard, &Value::Int(9)));

        // bind_slot overwrites; len counts bound slots only.
        b.bind_slot(d, Value::Addr(7));
        assert_eq!(b.len(), 2);

        // Names unknown to the planner still work through the shim.
        b.bind("Fresh", Value::Int(1));
        assert_eq!(b.get("Fresh"), Some(&Value::Int(1)));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn arithmetic_and_comparison() {
        let b = bindings(&[("C1", Value::Int(2)), ("C2", Value::Int(5))]);
        let rule = parse_rule("r p(@S,C) :- q(@S,C1,C2), C := C1 + C2 * 3.").unwrap();
        let assign = rule
            .body
            .iter()
            .find_map(|l| match l {
                BodyLiteral::Assign { expr, .. } => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(eval_expr(&assign, &b).unwrap(), Value::Int(17));

        let filter_rule = parse_rule("r p(@S) :- q(@S,C1,C2), C1 < C2, C1 != 3.").unwrap();
        for lit in &filter_rule.body {
            if let BodyLiteral::Filter(e) = lit {
                assert_eq!(eval_filter(e, &b), Ok(true));
            }
        }
    }

    #[test]
    fn comparison_type_errors_and_division_by_zero() {
        let b = bindings(&[("X", Value::Int(1)), ("S", Value::Str("a".into()))]);
        let bad = Expr::BinOp(
            BinOp::Lt,
            Box::new(Expr::var("X")),
            Box::new(Expr::var("S")),
        );
        assert!(matches!(
            eval_expr(&bad, &b),
            Err(EvalError::TypeMismatch { .. })
        ));

        let div = Expr::BinOp(
            BinOp::Div,
            Box::new(Expr::var("X")),
            Box::new(Expr::constant(0i64)),
        );
        assert_eq!(eval_expr(&div, &b), Err(EvalError::DivisionByZero));

        let unbound = Expr::var("Nope");
        assert_eq!(
            eval_expr(&unbound, &b),
            Err(EvalError::UnboundVariable("Nope".into()))
        );
    }

    #[test]
    fn path_builtins_cover_best_path_usage() {
        let b = bindings(&[
            ("S", Value::Addr(0)),
            ("D", Value::Addr(3)),
            ("P2", Value::List(vec![Value::Addr(1), Value::Addr(3)])),
        ]);
        // f_init(S,D) = [S,D]
        let init = Expr::Call("f_init".into(), vec![Expr::var("S"), Expr::var("D")]);
        assert_eq!(
            eval_expr(&init, &b).unwrap(),
            Value::List(vec![Value::Addr(0), Value::Addr(3)])
        );
        // f_concat(S, P2) = [S | P2]
        let concat = Expr::Call("f_concat".into(), vec![Expr::var("S"), Expr::var("P2")]);
        assert_eq!(
            eval_expr(&concat, &b).unwrap(),
            Value::List(vec![Value::Addr(0), Value::Addr(1), Value::Addr(3)])
        );
        // f_member(P2, S) = false, f_member(P2, D) = true
        let member_s = Expr::Call("f_member".into(), vec![Expr::var("P2"), Expr::var("S")]);
        let member_d = Expr::Call("f_member".into(), vec![Expr::var("P2"), Expr::var("D")]);
        assert_eq!(eval_expr(&member_s, &b).unwrap(), Value::Bool(false));
        assert_eq!(eval_expr(&member_d, &b).unwrap(), Value::Bool(true));
        // f_size, f_first, f_last, f_append, f_list, f_min, f_max
        let size = Expr::Call("f_size".into(), vec![Expr::var("P2")]);
        assert_eq!(eval_expr(&size, &b).unwrap(), Value::Int(2));
        let first = Expr::Call("f_first".into(), vec![Expr::var("P2")]);
        assert_eq!(eval_expr(&first, &b).unwrap(), Value::Addr(1));
        let last = Expr::Call("f_last".into(), vec![Expr::var("P2")]);
        assert_eq!(eval_expr(&last, &b).unwrap(), Value::Addr(3));
        let append = Expr::Call("f_append".into(), vec![Expr::var("P2"), Expr::var("S")]);
        assert_eq!(
            eval_expr(&append, &b).unwrap(),
            Value::List(vec![Value::Addr(1), Value::Addr(3), Value::Addr(0)])
        );
        let fmin = Expr::Call(
            "f_min".into(),
            vec![Expr::constant(4i64), Expr::constant(9i64)],
        );
        assert_eq!(eval_expr(&fmin, &b).unwrap(), Value::Int(4));
        let fmax = Expr::Call(
            "f_max".into(),
            vec![Expr::constant(4i64), Expr::constant(9i64)],
        );
        assert_eq!(eval_expr(&fmax, &b).unwrap(), Value::Int(9));
    }

    #[test]
    fn builtin_error_cases() {
        let b = Bindings::new();
        let wrong_arity = Expr::Call("f_init".into(), vec![Expr::constant(1i64)]);
        assert!(matches!(
            eval_expr(&wrong_arity, &b),
            Err(EvalError::Arity {
                expected: 2,
                got: 1,
                ..
            })
        ));
        let unknown = Expr::Call("f_frobnicate".into(), vec![]);
        assert_eq!(
            eval_expr(&unknown, &b),
            Err(EvalError::UnknownFunction("f_frobnicate".into()))
        );
        let not_a_list = Expr::Call(
            "f_member".into(),
            vec![Expr::constant(1i64), Expr::constant(1i64)],
        );
        assert!(matches!(
            eval_expr(&not_a_list, &b),
            Err(EvalError::TypeMismatch { .. })
        ));
        let empty_first = Expr::Call("f_first".into(), vec![Expr::Call("f_list".into(), vec![])]);
        assert!(matches!(
            eval_expr(&empty_first, &b),
            Err(EvalError::TypeMismatch { .. })
        ));
        // Errors render as human-readable strings.
        assert!(EvalError::DivisionByZero.to_string().contains("zero"));
        assert!(EvalError::UnboundVariable("X".into())
            .to_string()
            .contains("X"));
    }

    #[test]
    fn boolean_connectives() {
        let b = bindings(&[("A", Value::Bool(true)), ("B", Value::Bool(false))]);
        let and = Expr::BinOp(
            BinOp::And,
            Box::new(Expr::var("A")),
            Box::new(Expr::var("B")),
        );
        let or = Expr::BinOp(
            BinOp::Or,
            Box::new(Expr::var("A")),
            Box::new(Expr::var("B")),
        );
        assert_eq!(eval_expr(&and, &b).unwrap(), Value::Bool(false));
        assert_eq!(eval_expr(&or, &b).unwrap(), Value::Bool(true));
        let non_bool_filter = Expr::constant(3i64);
        assert!(eval_filter(&non_bool_filter, &b).is_err());
    }
}
