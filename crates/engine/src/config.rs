//! Engine configuration: the axes an experiment can vary.
//!
//! The paper's evaluation compares three system variants (Section 6):
//! **NDLog** (no authentication, no provenance), **SeNDLog** (authenticated
//! communication, no provenance) and **SeNDLogProv** (authentication plus
//! condensed provenance).  [`SystemVariant`] captures those presets;
//! [`EngineConfig`] exposes every underlying knob so the ablation benchmarks
//! can move one axis at a time.

use pasn_crypto::says::SaysLevel;
use pasn_net::CostModel;
use pasn_provenance::{Granularity, MaintenanceMode, ProvenanceKind, SamplingPolicy};
use std::collections::HashMap;

/// Whether derivation graphs are recorded, and where they live
/// (Section 4.1's local-vs-distributed axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GraphMode {
    /// No derivation graphs (only semiring tags, if enabled).
    #[default]
    None,
    /// Local provenance: the full derivation subtree is piggybacked with
    /// every shipped tuple so each node holds locally complete provenance.
    Local,
    /// Distributed provenance: each node stores pointer records for the
    /// derivations it performed; reconstruction requires a traceback query.
    Distributed,
}

impl GraphMode {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            GraphMode::None => "none",
            GraphMode::Local => "local",
            GraphMode::Distributed => "distributed",
        }
    }
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Authentication level for inter-node tuples; `None` disables
    /// authentication entirely (plain NDlog).
    pub says_level: Option<SaysLevel>,
    /// Verify `says` proofs on import (on by default whenever authentication
    /// is enabled).
    pub verify_imports: bool,
    /// Which semiring annotation to maintain per tuple.
    pub provenance: ProvenanceKind,
    /// Whether and where derivation graphs are recorded.
    pub graph_mode: GraphMode,
    /// Proactive or reactive provenance maintenance.
    pub maintenance: MaintenanceMode,
    /// Sampling policy for provenance recording.
    pub sampling: SamplingPolicy,
    /// Node- or AS-level provenance granularity.
    pub granularity: Granularity,
    /// Record an offline archive entry for every derivation.
    pub archive_offline: bool,
    /// Default TTL (microseconds of simulated time) for derived soft-state
    /// tuples; `None` keeps them until explicitly removed.
    pub default_ttl_us: Option<u64>,
    /// Cost model driving the simulated clock.
    pub cost_model: CostModel,
    /// RSA modulus size used when `says_level` is `Rsa`.
    pub rsa_modulus_bits: usize,
    /// Seed for key provisioning (kept separate from workload seeds so the
    /// same keys can be reused across a parameter sweep).
    pub key_seed: u64,
    /// Per-principal security levels for quantifiable provenance; principals
    /// not listed default to level 1.
    pub security_levels: HashMap<u32, u8>,
    /// Answer joins with bound key columns through secondary hash indexes
    /// (on by default).  Disabling forces every join back to a full ordered
    /// scan — the pre-index evaluation strategy — which the benches use to
    /// measure the index speedup.
    pub use_secondary_indexes: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::ndlog()
    }
}

impl EngineConfig {
    /// The NDLog baseline: no authentication, no provenance.
    pub fn ndlog() -> Self {
        EngineConfig {
            says_level: None,
            verify_imports: false,
            provenance: ProvenanceKind::None,
            graph_mode: GraphMode::None,
            maintenance: MaintenanceMode::Proactive,
            sampling: SamplingPolicy::always(),
            granularity: Granularity::Node,
            archive_offline: false,
            default_ttl_us: None,
            cost_model: CostModel::paper_2008(),
            rsa_modulus_bits: 512,
            key_seed: 0x5eed,
            security_levels: HashMap::new(),
            use_secondary_indexes: true,
        }
    }

    /// SeNDLog: RSA-authenticated communication, no provenance.
    pub fn sendlog() -> Self {
        EngineConfig {
            says_level: Some(SaysLevel::Rsa),
            verify_imports: true,
            ..EngineConfig::ndlog()
        }
    }

    /// SeNDLogProv: RSA-authenticated communication plus condensed
    /// provenance — the most expensive configuration of the evaluation.
    pub fn sendlog_prov() -> Self {
        EngineConfig {
            provenance: ProvenanceKind::Condensed,
            ..EngineConfig::sendlog()
        }
    }

    /// Builder: sets the `says` level (and enables import verification).
    pub fn with_says(mut self, level: SaysLevel) -> Self {
        self.says_level = Some(level);
        self.verify_imports = true;
        self
    }

    /// Builder: disables secondary-index join probing (full-scan joins, the
    /// pre-index evaluation strategy; used by benches as a baseline).
    pub fn without_secondary_indexes(mut self) -> Self {
        self.use_secondary_indexes = false;
        self
    }

    /// Builder: sets the provenance kind.
    pub fn with_provenance(mut self, kind: ProvenanceKind) -> Self {
        self.provenance = kind;
        self
    }

    /// Builder: sets the graph mode.
    pub fn with_graph_mode(mut self, mode: GraphMode) -> Self {
        self.graph_mode = mode;
        self
    }

    /// Builder: sets the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost_model = cost;
        self
    }

    /// Builder: sets a default TTL for derived tuples.
    pub fn with_default_ttl_us(mut self, ttl: u64) -> Self {
        self.default_ttl_us = Some(ttl);
        self
    }

    /// Builder: sets a principal's security level.
    pub fn with_security_level(mut self, principal: u32, level: u8) -> Self {
        self.security_levels.insert(principal, level);
        self
    }

    /// True when inter-node tuples are signed.
    pub fn authenticated(&self) -> bool {
        self.says_level.is_some()
    }

    /// True when any provenance (tag or graph) is maintained.
    pub fn tracks_provenance(&self) -> bool {
        self.provenance != ProvenanceKind::None || self.graph_mode != GraphMode::None
    }
}

/// The three system variants of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemVariant {
    /// No authentication, no provenance.
    NDLog,
    /// Authenticated communication.
    SeNDLog,
    /// Authenticated communication plus condensed provenance.
    SeNDLogProv,
}

impl SystemVariant {
    /// All variants in the order the paper plots them.
    pub const ALL: [SystemVariant; 3] = [
        SystemVariant::NDLog,
        SystemVariant::SeNDLog,
        SystemVariant::SeNDLogProv,
    ];

    /// The paper's name for the variant.
    pub fn name(self) -> &'static str {
        match self {
            SystemVariant::NDLog => "NDLog",
            SystemVariant::SeNDLog => "SeNDLog",
            SystemVariant::SeNDLogProv => "SeNDLogProv",
        }
    }

    /// The engine configuration implementing this variant.
    pub fn config(self) -> EngineConfig {
        match self {
            SystemVariant::NDLog => EngineConfig::ndlog(),
            SystemVariant::SeNDLog => EngineConfig::sendlog(),
            SystemVariant::SeNDLogProv => EngineConfig::sendlog_prov(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper_variants() {
        let nd = SystemVariant::NDLog.config();
        assert!(!nd.authenticated());
        assert!(!nd.tracks_provenance());

        let se = SystemVariant::SeNDLog.config();
        assert!(se.authenticated());
        assert_eq!(se.says_level, Some(SaysLevel::Rsa));
        assert!(!se.tracks_provenance());
        assert!(se.verify_imports);

        let sp = SystemVariant::SeNDLogProv.config();
        assert!(sp.authenticated());
        assert_eq!(sp.provenance, ProvenanceKind::Condensed);
        assert!(sp.tracks_provenance());

        assert_eq!(SystemVariant::ALL.len(), 3);
        assert_eq!(SystemVariant::SeNDLogProv.name(), "SeNDLogProv");
    }

    #[test]
    fn builders_compose() {
        let cfg = EngineConfig::ndlog()
            .with_says(SaysLevel::Hmac)
            .with_provenance(ProvenanceKind::Vote)
            .with_graph_mode(GraphMode::Distributed)
            .with_default_ttl_us(5_000_000)
            .with_security_level(3, 4);
        assert_eq!(cfg.says_level, Some(SaysLevel::Hmac));
        assert!(cfg.verify_imports);
        assert_eq!(cfg.provenance, ProvenanceKind::Vote);
        assert_eq!(cfg.graph_mode, GraphMode::Distributed);
        assert_eq!(cfg.default_ttl_us, Some(5_000_000));
        assert_eq!(cfg.security_levels[&3], 4);
        assert_eq!(GraphMode::Distributed.name(), "distributed");
        assert_eq!(GraphMode::default(), GraphMode::None);
    }

    #[test]
    fn default_config_is_the_baseline() {
        let cfg = EngineConfig::default();
        assert!(!cfg.authenticated());
        assert_eq!(cfg.provenance, ProvenanceKind::None);
    }
}
