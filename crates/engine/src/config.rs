//! Engine configuration: the axes an experiment can vary.
//!
//! The paper's evaluation compares three system variants (Section 6):
//! **NDLog** (no authentication, no provenance), **SeNDLog** (authenticated
//! communication, no provenance) and **SeNDLogProv** (authentication plus
//! condensed provenance).  [`SystemVariant`] captures those presets;
//! [`EngineConfig`] exposes every underlying knob so the ablation benchmarks
//! can move one axis at a time.

use pasn_crypto::says::SaysLevel;
use pasn_net::{CostModel, FaultPlan};
use pasn_provenance::{Granularity, MaintenanceMode, ProvenanceKind, SamplingPolicy};
use pasn_trace::TraceConfig;
use std::collections::HashMap;

/// Whether derivation graphs are recorded, and where they live
/// (Section 4.1's local-vs-distributed axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GraphMode {
    /// No derivation graphs (only semiring tags, if enabled).
    #[default]
    None,
    /// Local provenance: the full derivation subtree is piggybacked with
    /// every shipped tuple so each node holds locally complete provenance.
    Local,
    /// Distributed provenance: each node stores pointer records for the
    /// derivations it performed; reconstruction requires a traceback query.
    Distributed,
}

impl GraphMode {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            GraphMode::None => "none",
            GraphMode::Local => "local",
            GraphMode::Distributed => "distributed",
        }
    }
}

/// Reads the `PASN_WORKERS` environment override once per process: the CI
/// matrix re-runs the whole test suite with `PASN_WORKERS=4` to use every
/// unmodified test as a determinism oracle for the worker pool.
fn env_workers() -> Option<usize> {
    static WORKERS: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("PASN_WORKERS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Default cap on tuples per delta batch / shipment frame when batching is
/// enabled (see [`EngineConfig::max_batch_tuples`]).
pub const DEFAULT_MAX_BATCH_TUPLES: usize = 64;

/// Default simulated-time batching window applied by
/// [`EngineConfig::with_batching`]: one link latency of the paper's cost
/// model, so a node flushes what it derived from one round of arrivals as
/// single frames.
pub const DEFAULT_BATCH_WINDOW_US: u64 = 1_000;

/// Default retry budget of the reliability layer: how many delivery
/// attempts one frame gets before the engine gives up and reconciles it
/// like a cut-link casualty.  Kept above every sane
/// [`FaultPlan::max_consecutive_drops`] so the budget is unreachable on a
/// live link.
pub const DEFAULT_RETRY_BUDGET: u32 = 8;

/// Default base retransmission timeout (µs of simulated time) — roughly a
/// round trip of the paper's cost model; doubled on every further attempt
/// for the same frame (exponential backoff).
pub const DEFAULT_RETRANSMIT_RTO_US: u64 = 20_000;

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Authentication level for inter-node tuples; `None` disables
    /// authentication entirely (plain NDlog).
    pub says_level: Option<SaysLevel>,
    /// Verify `says` proofs on import (on by default whenever authentication
    /// is enabled).
    pub verify_imports: bool,
    /// Which semiring annotation to maintain per tuple.
    pub provenance: ProvenanceKind,
    /// Whether and where derivation graphs are recorded.
    pub graph_mode: GraphMode,
    /// Proactive or reactive provenance maintenance.
    pub maintenance: MaintenanceMode,
    /// Sampling policy for provenance recording.
    pub sampling: SamplingPolicy,
    /// Node- or AS-level provenance granularity.
    pub granularity: Granularity,
    /// Record an offline archive entry for every derivation.
    pub archive_offline: bool,
    /// Default TTL (microseconds of simulated time) for derived soft-state
    /// tuples; `None` keeps them until explicitly removed.
    pub default_ttl_us: Option<u64>,
    /// Cost model driving the simulated clock.
    pub cost_model: CostModel,
    /// RSA modulus size used when `says_level` is `Rsa`.
    pub rsa_modulus_bits: usize,
    /// Seed for key provisioning (kept separate from workload seeds so the
    /// same keys can be reused across a parameter sweep).
    pub key_seed: u64,
    /// Per-principal security levels for quantifiable provenance; principals
    /// not listed default to level 1.
    pub security_levels: HashMap<u32, u8>,
    /// Answer joins with bound key columns through secondary hash indexes
    /// (on by default).  Disabling forces every join back to a full ordered
    /// scan — the pre-index evaluation strategy — which the benches use to
    /// measure the index speedup.
    pub use_secondary_indexes: bool,
    /// Simulated-time batching window in microseconds.  Tuples produced
    /// during one window flush together at the next window boundary: one
    /// delta batch per `(node, predicate)` for local work, and one signed
    /// multi-tuple shipment frame per `(source, destination, predicate)`
    /// for remote work — so plan dispatch, `says` signatures/verifications
    /// and message headers are paid per batch instead of per tuple.  `0`
    /// (the default) disables batching and reproduces per-tuple evaluation
    /// bit for bit.
    ///
    /// With batching on, joins stay exactly tuple-at-a-time-visible (each
    /// delta only joins rows inserted no later than itself), so monotone
    /// rules fire the identical derivations under any batch split.  What
    /// does follow the coarser batch interleaving: pipelined `a_MIN` /
    /// `a_MAX` aggregates may emit fewer intermediate improvements (the
    /// final aggregate value is unchanged), and provenance tags of joined
    /// rows reflect in-batch duplicate merges.
    pub batch_window_us: u64,
    /// Maximum tuples per delta batch / shipment frame.  A batch that fills
    /// up stops accepting rows; later tuples of the same window open a new
    /// batch flushed at the same window boundary (after the full one, in
    /// creation order).  Ignored while `batch_window_us` is `0`.
    pub max_batch_tuples: usize,
    /// Frames a session channel may authenticate before it expires and the
    /// link must be rebound with a fresh RSA-signed handshake at the next
    /// epoch (only meaningful at [`SaysLevel::Session`]).  The default is
    /// high enough that ordinary runs perform exactly one handshake per
    /// live directed link; lower it to exercise the rebind path.
    pub channel_rebind_frames: u64,
    /// Arms the network-dynamics machinery: the engine maintains the
    /// per-node deletion ledger (support counts and the firing log) that
    /// provenance-guided incremental deletion replays, schedules TTL expiry
    /// as first-class simulator work (soft state dies *during* evaluation
    /// instead of waiting for a manual `expire_all`), and enforces per-link
    /// in-order delivery (retraction streams assume FIFO links, as the
    /// session-channel transport already does).  Off by default: static
    /// runs pay no ledger memory and keep their exact schedules.
    /// `DistributedEngine::run_scenario` arms it automatically on a fresh
    /// engine.
    pub dynamics: bool,
    /// Unreliable-network mode: a deterministic, seeded fault plan the
    /// transport consults for every remote frame (drop / duplicate / extra
    /// delay decisions plus scheduled crash-without-drain events).
    /// Installing a plan arms the sender-side reliability layer — per-link
    /// send buffers, cumulative acks, timeout retransmission with
    /// exponential backoff — and the network-dynamics machinery.  `None`
    /// (the default) is today's reliable in-order transport, byte for byte.
    pub fault_plan: Option<FaultPlan>,
    /// Delivery attempts one frame gets before the reliability layer stops
    /// retransmitting and reconciles it like a cut-link casualty (only
    /// meaningful with a [`EngineConfig::fault_plan`]).
    pub retry_budget: u32,
    /// Base retransmission timeout in µs of simulated time; attempt `n`
    /// waits `rto << min(n, 6)` (exponential backoff).
    pub retransmit_rto_us: u64,
    /// Worker threads for parallel sharded evaluation.  Nodes are partitioned
    /// `node_id % workers`; same-instant waves of independent deliveries are
    /// fanned out to the pool and their effects merged back in deterministic
    /// `(due, rank, seq)` order, so any worker count produces bit-identical
    /// fixpoints and counters.  `1` (the default) is today's sequential path,
    /// byte for byte.  Presets honour the `PASN_WORKERS` environment variable
    /// so an unmodified test suite can be re-run against the pool.
    pub workers: usize,
    /// Flight-recorder configuration.  `None` (the default) disables tracing
    /// entirely — the runtime takes a single `Option` check per hook and
    /// allocates nothing.  `Some` records structured spans and events in
    /// simulated time; see `pasn_trace::TraceRecorder`.  Tracing never
    /// perturbs a counter, a schedule, or the fixpoint.
    pub trace: Option<TraceConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::ndlog()
    }
}

impl EngineConfig {
    /// The NDLog baseline: no authentication, no provenance.
    pub fn ndlog() -> Self {
        EngineConfig {
            says_level: None,
            verify_imports: false,
            provenance: ProvenanceKind::None,
            graph_mode: GraphMode::None,
            maintenance: MaintenanceMode::Proactive,
            sampling: SamplingPolicy::always(),
            granularity: Granularity::Node,
            archive_offline: false,
            default_ttl_us: None,
            cost_model: CostModel::paper_2008(),
            rsa_modulus_bits: 512,
            key_seed: 0x5eed,
            security_levels: HashMap::new(),
            use_secondary_indexes: true,
            batch_window_us: 0,
            max_batch_tuples: DEFAULT_MAX_BATCH_TUPLES,
            channel_rebind_frames: pasn_crypto::channel::DEFAULT_REBIND_AFTER_FRAMES,
            dynamics: false,
            fault_plan: None,
            retry_budget: DEFAULT_RETRY_BUDGET,
            retransmit_rto_us: DEFAULT_RETRANSMIT_RTO_US,
            workers: env_workers().unwrap_or(1),
            trace: None,
        }
    }

    /// Builder: re-applies the `PASN_WORKERS` environment override (presets
    /// already honour it; this restores it after an explicit
    /// [`EngineConfig::with_workers`] or on a config built elsewhere).
    pub fn from_env(mut self) -> Self {
        if let Some(n) = env_workers() {
            self.workers = n;
        }
        self
    }

    /// SeNDLog over session-keyed channels: RSA amortised to one
    /// key-establishment handshake per directed link, every frame HMAC'd
    /// under the link's session key ([`SaysLevel::Session`]).  Same
    /// authentication topology as [`EngineConfig::sendlog`] — the receiver
    /// still learns who `says` every tuple — at near-HMAC steady-state cost.
    pub fn sendlog_session() -> Self {
        EngineConfig {
            says_level: Some(SaysLevel::Session),
            ..EngineConfig::sendlog()
        }
    }

    /// SeNDLog: RSA-authenticated communication, no provenance.
    pub fn sendlog() -> Self {
        EngineConfig {
            says_level: Some(SaysLevel::Rsa),
            verify_imports: true,
            ..EngineConfig::ndlog()
        }
    }

    /// SeNDLogProv: RSA-authenticated communication plus condensed
    /// provenance — the most expensive configuration of the evaluation.
    pub fn sendlog_prov() -> Self {
        EngineConfig {
            provenance: ProvenanceKind::Condensed,
            ..EngineConfig::sendlog()
        }
    }

    /// Builder: sets the `says` level (and enables import verification).
    pub fn with_says(mut self, level: SaysLevel) -> Self {
        self.says_level = Some(level);
        self.verify_imports = true;
        self
    }

    /// Builder: disables secondary-index join probing (full-scan joins, the
    /// pre-index evaluation strategy; used by benches as a baseline).
    pub fn without_secondary_indexes(mut self) -> Self {
        self.use_secondary_indexes = false;
        self
    }

    /// Builder: enables delta batching with the default window
    /// ([`DEFAULT_BATCH_WINDOW_US`]).
    pub fn with_batching(self) -> Self {
        self.with_batch_window_us(DEFAULT_BATCH_WINDOW_US)
    }

    /// Builder: sets the simulated-time batching window (`0` disables
    /// batching and reproduces per-tuple evaluation bit for bit).
    pub fn with_batch_window_us(mut self, window_us: u64) -> Self {
        self.batch_window_us = window_us;
        self
    }

    /// Builder: caps the tuples per delta batch / shipment frame.
    pub fn with_max_batch_tuples(mut self, max: usize) -> Self {
        self.max_batch_tuples = max;
        self
    }

    /// Builder: sets how many frames a session channel authenticates before
    /// it must be rebound with a fresh handshake.
    pub fn with_channel_rebind_frames(mut self, frames: u64) -> Self {
        self.channel_rebind_frames = frames.max(1);
        self
    }

    /// Builder: arms the network-dynamics machinery (deletion ledger,
    /// scheduled TTL expiry, FIFO links) from the first evaluated tuple on.
    pub fn with_dynamics(mut self) -> Self {
        self.dynamics = true;
        self
    }

    /// Builder: installs an unreliable-network fault plan (and arms
    /// dynamics — reconciliation needs the deletion ledger).  The plan's
    /// seed is replaced by the `PASN_FAULT_SEED` environment override when
    /// one is exported, so CI can re-run the suite under a different fault
    /// schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan.with_env_seed());
        self.dynamics = true;
        self
    }

    /// Builder: sets the reliability layer's per-frame retry budget
    /// (clamped to at least one attempt).
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget.max(1);
        self
    }

    /// Builder: sets the base retransmission timeout in µs of simulated
    /// time (clamped to at least 1 µs).
    pub fn with_retransmit_rto_us(mut self, rto_us: u64) -> Self {
        self.retransmit_rto_us = rto_us.max(1);
        self
    }

    /// Builder: sets the provenance kind.
    pub fn with_provenance(mut self, kind: ProvenanceKind) -> Self {
        self.provenance = kind;
        self
    }

    /// Builder: sets the graph mode.
    pub fn with_graph_mode(mut self, mode: GraphMode) -> Self {
        self.graph_mode = mode;
        self
    }

    /// Builder: sets the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost_model = cost;
        self
    }

    /// Builder: sets a default TTL for derived tuples.
    pub fn with_default_ttl_us(mut self, ttl: u64) -> Self {
        self.default_ttl_us = Some(ttl);
        self
    }

    /// Builder: sets the worker-pool size for parallel sharded evaluation
    /// (`1` = sequential; clamped to at least one worker).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder: enables the deterministic flight recorder.  The engine
    /// records simulated-time spans and events into a
    /// `pasn_trace::TraceRecorder` readable after the run via
    /// `DistributedEngine::trace`.
    pub fn with_tracing(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Builder: sets a principal's security level.
    pub fn with_security_level(mut self, principal: u32, level: u8) -> Self {
        self.security_levels.insert(principal, level);
        self
    }

    /// True when inter-node tuples are signed.
    pub fn authenticated(&self) -> bool {
        self.says_level.is_some()
    }

    /// True when any provenance (tag or graph) is maintained.
    pub fn tracks_provenance(&self) -> bool {
        self.provenance != ProvenanceKind::None || self.graph_mode != GraphMode::None
    }
}

/// The three system variants of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemVariant {
    /// No authentication, no provenance.
    NDLog,
    /// Authenticated communication.
    SeNDLog,
    /// Authenticated communication plus condensed provenance.
    SeNDLogProv,
}

impl SystemVariant {
    /// All variants in the order the paper plots them.
    pub const ALL: [SystemVariant; 3] = [
        SystemVariant::NDLog,
        SystemVariant::SeNDLog,
        SystemVariant::SeNDLogProv,
    ];

    /// The paper's name for the variant.
    pub fn name(self) -> &'static str {
        match self {
            SystemVariant::NDLog => "NDLog",
            SystemVariant::SeNDLog => "SeNDLog",
            SystemVariant::SeNDLogProv => "SeNDLogProv",
        }
    }

    /// The engine configuration implementing this variant.
    pub fn config(self) -> EngineConfig {
        match self {
            SystemVariant::NDLog => EngineConfig::ndlog(),
            SystemVariant::SeNDLog => EngineConfig::sendlog(),
            SystemVariant::SeNDLogProv => EngineConfig::sendlog_prov(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper_variants() {
        let nd = SystemVariant::NDLog.config();
        assert!(!nd.authenticated());
        assert!(!nd.tracks_provenance());

        let se = SystemVariant::SeNDLog.config();
        assert!(se.authenticated());
        assert_eq!(se.says_level, Some(SaysLevel::Rsa));
        assert!(!se.tracks_provenance());
        assert!(se.verify_imports);

        let sp = SystemVariant::SeNDLogProv.config();
        assert!(sp.authenticated());
        assert_eq!(sp.provenance, ProvenanceKind::Condensed);
        assert!(sp.tracks_provenance());

        assert_eq!(SystemVariant::ALL.len(), 3);
        assert_eq!(SystemVariant::SeNDLogProv.name(), "SeNDLogProv");
    }

    #[test]
    fn builders_compose() {
        let cfg = EngineConfig::ndlog()
            .with_says(SaysLevel::Hmac)
            .with_provenance(ProvenanceKind::Vote)
            .with_graph_mode(GraphMode::Distributed)
            .with_default_ttl_us(5_000_000)
            .with_security_level(3, 4);
        assert_eq!(cfg.says_level, Some(SaysLevel::Hmac));
        assert!(cfg.verify_imports);
        assert_eq!(cfg.provenance, ProvenanceKind::Vote);
        assert_eq!(cfg.graph_mode, GraphMode::Distributed);
        assert_eq!(cfg.default_ttl_us, Some(5_000_000));
        assert_eq!(cfg.security_levels[&3], 4);
        assert_eq!(GraphMode::Distributed.name(), "distributed");
        assert_eq!(GraphMode::default(), GraphMode::None);
    }

    #[test]
    fn default_config_is_the_baseline() {
        let cfg = EngineConfig::default();
        assert!(!cfg.authenticated());
        assert_eq!(cfg.provenance, ProvenanceKind::None);
        // Per-tuple evaluation unless batching is explicitly enabled.
        assert_eq!(cfg.batch_window_us, 0);
        assert_eq!(cfg.max_batch_tuples, DEFAULT_MAX_BATCH_TUPLES);
    }

    #[test]
    fn batching_builders_set_the_knobs() {
        let cfg = EngineConfig::sendlog().with_batching();
        assert_eq!(cfg.batch_window_us, DEFAULT_BATCH_WINDOW_US);
        let cfg = EngineConfig::ndlog()
            .with_batch_window_us(2_500)
            .with_max_batch_tuples(8);
        assert_eq!(cfg.batch_window_us, 2_500);
        assert_eq!(cfg.max_batch_tuples, 8);
    }

    #[test]
    fn worker_builder_clamps_to_at_least_one() {
        let cfg = EngineConfig::ndlog().with_workers(4);
        assert_eq!(cfg.workers, 4);
        let cfg = EngineConfig::ndlog().with_workers(0);
        assert_eq!(cfg.workers, 1, "a pool needs at least one worker");
        // from_env keeps an explicit choice when no override is exported.
        if std::env::var("PASN_WORKERS").is_err() {
            assert_eq!(EngineConfig::ndlog().with_workers(3).from_env().workers, 3);
        }
    }

    #[test]
    fn fault_plan_builder_arms_dynamics_and_clamps_knobs() {
        let cfg = EngineConfig::sendlog_session().with_fault_plan(FaultPlan::new(7));
        assert!(cfg.dynamics, "reconciliation needs the deletion ledger");
        assert!(cfg.fault_plan.is_some());
        assert_eq!(cfg.retry_budget, DEFAULT_RETRY_BUDGET);
        assert_eq!(cfg.retransmit_rto_us, DEFAULT_RETRANSMIT_RTO_US);
        let cfg = cfg.with_retry_budget(0).with_retransmit_rto_us(0);
        assert_eq!(cfg.retry_budget, 1);
        assert_eq!(cfg.retransmit_rto_us, 1);
    }

    #[test]
    fn session_preset_amortises_rsa_over_the_channel() {
        let cfg = EngineConfig::sendlog_session();
        assert!(cfg.authenticated());
        assert!(cfg.verify_imports);
        assert_eq!(cfg.says_level, Some(SaysLevel::Session));
        assert_eq!(
            cfg.channel_rebind_frames,
            pasn_crypto::channel::DEFAULT_REBIND_AFTER_FRAMES
        );
        let cfg = cfg.with_channel_rebind_frames(0);
        assert_eq!(cfg.channel_rebind_frames, 1, "a channel must carry a frame");
    }
}
