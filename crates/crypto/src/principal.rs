//! Security principals and key management.
//!
//! In SeNDlog every rule executes within the *context* of a principal
//! (Section 2.2 of the paper); derived tuples exported to another context are
//! asserted with `says`.  This module provides principal identities, their
//! key material, and a simulation-wide [`KeyAuthority`] that plays the role
//! of the out-of-band key distribution the paper assumes ("derived tuples
//! signed using the private key of the exporting context can be imported into
//! another context and checked using the corresponding public key").

use crate::hmac::TAG_LEN;
use crate::rsa::{RsaError, RsaKeyPair, RsaPublicKey, DEFAULT_MODULUS_BITS};
use crate::sha256::sha256;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A compact identifier for a security principal (in the network setting a
/// principal is a node, or an AS when provenance is kept at AS granularity).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct PrincipalId(pub u32);

impl fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for PrincipalId {
    fn from(v: u32) -> Self {
        PrincipalId(v)
    }
}

/// A principal together with its human-readable name and security level.
///
/// The security level feeds the *quantifiable provenance* axis (Section 4.5):
/// a derivation's trust level is the max over alternative derivations of the
/// min security level along each derivation.
#[derive(Clone, Debug)]
pub struct Principal {
    /// Stable identifier.
    pub id: PrincipalId,
    /// Human-readable name (e.g. `"a"`, `"node7"`, `"AS701"`).
    pub name: String,
    /// Security level used by quantifiable provenance; higher is more trusted.
    pub security_level: u8,
}

impl Principal {
    /// Creates a principal with the default security level of 1.
    pub fn new(id: impl Into<PrincipalId>, name: impl Into<String>) -> Self {
        Principal {
            id: id.into(),
            name: name.into(),
            security_level: 1,
        }
    }

    /// Sets the security level (builder style).
    pub fn with_security_level(mut self, level: u8) -> Self {
        self.security_level = level;
        self
    }
}

/// Private key material held by a single principal, plus the public directory
/// needed to verify assertions made by others.
#[derive(Clone)]
pub struct Keyring {
    owner: PrincipalId,
    rsa: Arc<RsaKeyPair>,
    /// Public keys of every known principal (including the owner).
    directory: Arc<HashMap<PrincipalId, RsaPublicKey>>,
    /// Per-principal MAC secrets.  In a real deployment these would be
    /// pairwise; the simulator models them as per-principal secrets shared
    /// with the key authority, which preserves the per-tuple MAC cost.
    mac_secrets: Arc<HashMap<PrincipalId, [u8; TAG_LEN]>>,
}

impl fmt::Debug for Keyring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keyring")
            .field("owner", &self.owner)
            .field("known_principals", &self.directory.len())
            .finish()
    }
}

impl Keyring {
    /// The principal that owns this keyring.
    pub fn owner(&self) -> PrincipalId {
        self.owner
    }

    /// The owner's RSA key pair.
    pub fn rsa_keypair(&self) -> &RsaKeyPair {
        &self.rsa
    }

    /// Looks up the public key of `principal`.
    pub fn public_key_of(&self, principal: PrincipalId) -> Option<&RsaPublicKey> {
        self.directory.get(&principal)
    }

    /// Looks up the MAC secret of `principal`.
    pub fn mac_secret_of(&self, principal: PrincipalId) -> Option<&[u8; TAG_LEN]> {
        self.mac_secrets.get(&principal)
    }

    /// The owner's MAC secret.
    pub fn own_mac_secret(&self) -> &[u8; TAG_LEN] {
        self.mac_secrets
            .get(&self.owner)
            .expect("keyring always contains the owner's MAC secret")
    }

    /// Number of principals in the public directory.
    pub fn known_principals(&self) -> usize {
        self.directory.len()
    }
}

/// Simulation-wide key authority: generates key material for every principal
/// and hands out per-principal [`Keyring`] views.
///
/// Key generation is by far the most expensive setup step, so the authority
/// is constructed once per experiment (outside the timed region), mirroring
/// the paper's setup where certificates are provisioned before the query is
/// issued.
pub struct KeyAuthority {
    modulus_bits: usize,
    keypairs: HashMap<PrincipalId, Arc<RsaKeyPair>>,
    directory: Arc<HashMap<PrincipalId, RsaPublicKey>>,
    mac_secrets: Arc<HashMap<PrincipalId, [u8; TAG_LEN]>>,
    principals: Vec<Principal>,
}

impl fmt::Debug for KeyAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeyAuthority")
            .field("principals", &self.principals.len())
            .field("modulus_bits", &self.modulus_bits)
            .finish()
    }
}

impl KeyAuthority {
    /// Provisions key material for `principals` with the default modulus size.
    pub fn provision(principals: &[Principal], seed: u64) -> Result<Self, RsaError> {
        Self::provision_with_modulus(principals, seed, DEFAULT_MODULUS_BITS)
    }

    /// Provisions key material with an explicit RSA modulus size.
    pub fn provision_with_modulus(
        principals: &[Principal],
        seed: u64,
        modulus_bits: usize,
    ) -> Result<Self, RsaError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keypairs = HashMap::with_capacity(principals.len());
        let mut directory = HashMap::with_capacity(principals.len());
        let mut mac_secrets = HashMap::with_capacity(principals.len());
        for p in principals {
            let kp = RsaKeyPair::generate(modulus_bits, &mut rng)?;
            directory.insert(p.id, kp.public_key().clone());
            keypairs.insert(p.id, Arc::new(kp));

            let mut secret = [0u8; TAG_LEN];
            rng.fill_bytes(&mut secret);
            // Bind the secret to the principal id so identical RNG states for
            // different principals cannot collide.
            let bound = sha256(&[&secret[..], &p.id.0.to_be_bytes()[..]].concat());
            mac_secrets.insert(p.id, bound);
        }
        Ok(KeyAuthority {
            modulus_bits,
            keypairs,
            directory: Arc::new(directory),
            mac_secrets: Arc::new(mac_secrets),
            principals: principals.to_vec(),
        })
    }

    /// The RSA modulus size used for every principal.
    pub fn modulus_bits(&self) -> usize {
        self.modulus_bits
    }

    /// The provisioned principals.
    pub fn principals(&self) -> &[Principal] {
        &self.principals
    }

    /// Returns the keyring view for `principal`, or `None` if it was not
    /// provisioned.
    pub fn keyring_for(&self, principal: PrincipalId) -> Option<Keyring> {
        let rsa = self.keypairs.get(&principal)?.clone();
        Some(Keyring {
            owner: principal,
            rsa,
            directory: Arc::clone(&self.directory),
            mac_secrets: Arc::clone(&self.mac_secrets),
        })
    }

    /// Security level of a principal (0 if unknown).
    pub fn security_level_of(&self, principal: PrincipalId) -> u8 {
        self.principals
            .iter()
            .find(|p| p.id == principal)
            .map(|p| p.security_level)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn principals(n: u32) -> Vec<Principal> {
        (0..n)
            .map(|i| Principal::new(i, format!("n{i}")).with_security_level((i % 3 + 1) as u8))
            .collect()
    }

    #[test]
    fn provision_creates_distinct_keys() {
        let auth = KeyAuthority::provision(&principals(3), 42).unwrap();
        let k0 = auth.keyring_for(PrincipalId(0)).unwrap();
        let k1 = auth.keyring_for(PrincipalId(1)).unwrap();
        assert_ne!(
            k0.rsa_keypair().public_key().fingerprint(),
            k1.rsa_keypair().public_key().fingerprint()
        );
        assert_ne!(k0.own_mac_secret(), k1.own_mac_secret());
        assert_eq!(k0.known_principals(), 3);
    }

    #[test]
    fn keyrings_share_a_directory() {
        let auth = KeyAuthority::provision(&principals(3), 7).unwrap();
        let k0 = auth.keyring_for(PrincipalId(0)).unwrap();
        let k2 = auth.keyring_for(PrincipalId(2)).unwrap();
        // Node 0 can verify node 2's signatures via the directory.
        let msg = b"reachable(a,c)";
        let sig = k2.rsa_keypair().sign(msg);
        assert!(k0.public_key_of(PrincipalId(2)).unwrap().verify(msg, &sig));
        assert!(!k0.public_key_of(PrincipalId(1)).unwrap().verify(msg, &sig));
    }

    #[test]
    fn unknown_principal_has_no_keyring() {
        let auth = KeyAuthority::provision(&principals(2), 1).unwrap();
        assert!(auth.keyring_for(PrincipalId(99)).is_none());
        assert_eq!(auth.security_level_of(PrincipalId(99)), 0);
    }

    #[test]
    fn provisioning_is_deterministic_for_a_seed() {
        let a = KeyAuthority::provision(&principals(2), 1234).unwrap();
        let b = KeyAuthority::provision(&principals(2), 1234).unwrap();
        assert_eq!(
            a.keyring_for(PrincipalId(0))
                .unwrap()
                .rsa_keypair()
                .public_key()
                .fingerprint(),
            b.keyring_for(PrincipalId(0))
                .unwrap()
                .rsa_keypair()
                .public_key()
                .fingerprint()
        );
        let c = KeyAuthority::provision(&principals(2), 9999).unwrap();
        assert_ne!(
            a.keyring_for(PrincipalId(0))
                .unwrap()
                .rsa_keypair()
                .public_key()
                .fingerprint(),
            c.keyring_for(PrincipalId(0))
                .unwrap()
                .rsa_keypair()
                .public_key()
                .fingerprint()
        );
    }

    #[test]
    fn security_levels_are_exposed() {
        let auth = KeyAuthority::provision(&principals(4), 3).unwrap();
        assert_eq!(auth.security_level_of(PrincipalId(0)), 1);
        assert_eq!(auth.security_level_of(PrincipalId(1)), 2);
        assert_eq!(auth.security_level_of(PrincipalId(2)), 3);
        assert_eq!(auth.principals().len(), 4);
    }
}
