//! # pasn-crypto
//!
//! Cryptographic substrate for the *Provenance-aware Secure Networks*
//! reproduction (Zhou, Cronin, Loo — ICDE 2008).
//!
//! The paper's prototype extends the P2 declarative networking system with
//! *authenticated communication*: every tuple exported from one principal's
//! context to another is signed (the `says` construct of SeNDlog), using RSA
//! signatures via OpenSSL in the original evaluation.  This crate provides a
//! from-scratch replacement for that stack so the reproduction has no
//! external cryptographic dependencies:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), the message digest under both MACs
//!   and signatures;
//! * [`hmac`] — HMAC-SHA-256, the "benign world" middle ground for `says`;
//! * [`bigint`] — arbitrary-precision arithmetic with Montgomery modular
//!   exponentiation, the engine under RSA;
//! * [`prime`] — Miller–Rabin primality testing and prime generation;
//! * [`rsa`] — textbook RSA-PKCS#1-v1.5 signatures over SHA-256;
//! * [`principal`] — security principals, key material, and the
//!   simulation-wide key authority;
//! * [`says`] — the SeNDlog `says` construct at four strength levels
//!   (cleartext header, HMAC, session channel, RSA) with per-level
//!   wire-overhead accounting;
//! * [`channel`] — session-keyed authenticated channels: one RSA-signed
//!   key-establishment handshake per directed link, then HMAC'd frames with
//!   a monotonic replay counter — the amortisation behind
//!   [`says::SaysLevel::Session`].
//!
//! Everything here is deterministic given a seed, which keeps the
//! experiments in `pasn-bench` reproducible run to run.
//!
//! ## Quick example
//!
//! ```
//! use pasn_crypto::principal::{KeyAuthority, Principal, PrincipalId};
//! use pasn_crypto::says::{Authenticator, SaysLevel};
//!
//! let principals = vec![Principal::new(0u32, "a"), Principal::new(1u32, "b")];
//! let authority = KeyAuthority::provision_with_modulus(&principals, 42, 512).unwrap();
//!
//! let alice = Authenticator::new(authority.keyring_for(PrincipalId(0)).unwrap(), SaysLevel::Rsa);
//! let bob = Authenticator::new(authority.keyring_for(PrincipalId(1)).unwrap(), SaysLevel::Rsa);
//!
//! // "a says reachable(a,c)"
//! let assertion = alice.assert(b"reachable(a,c)");
//! assert!(bob.verify(b"reachable(a,c)", &assertion).is_ok());
//! assert!(bob.verify(b"reachable(a,d)", &assertion).is_err());
//! ```

// Unsafe is denied crate-wide with one documented exception: the
// runtime-gated SHA-256 hardware kernel (`sha256::x86`), which cannot call
// `core::arch` intrinsics from safe code.  Every other module is unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod channel;
pub mod hmac;
pub mod prime;
pub mod principal;
pub mod rsa;
pub mod says;
pub mod sha256;

pub use bigint::BigUint;
pub use channel::{ChannelHandshake, ChannelProof, ReceiverChannel, SenderChannel};
pub use principal::{KeyAuthority, Keyring, Principal, PrincipalId};
pub use rsa::{RsaKeyPair, RsaPublicKey};
pub use says::{Authenticator, SaysAssertion, SaysError, SaysLevel, SaysProof};
pub use sha256::{sha256, Digest};
