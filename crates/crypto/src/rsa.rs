//! Textbook RSA signatures with deterministic PKCS#1 v1.5-style padding over
//! SHA-256 digests.
//!
//! The paper's prototype signs every exported tuple with an RSA signature
//! generated through OpenSSL (Section 6).  This module reproduces that cost
//! profile: signing is a full private-key exponentiation, verification is a
//! short public-key exponentiation with `e = 65537`, and the signature length
//! equals the modulus length, which is what the bandwidth accounting in
//! `pasn-net` charges per authenticated tuple.

use crate::bigint::{BigUint, MontgomeryCtx};
use crate::prime::gen_prime_pair;
use crate::sha256::{sha256, Digest};
use rand::RngCore;
use std::fmt;
use std::sync::Arc;

/// Minimum supported modulus size.  PKCS#1 v1.5 padding of a SHA-256 digest
/// requires at least 62 bytes of modulus.
pub const MIN_MODULUS_BITS: usize = 512;

/// Default modulus size used by the simulator (a compromise between realism
/// and the cost of signing every tuple in a 100-node in-process simulation;
/// the paper used 1024-bit keys, which remain available via
/// [`RsaKeyPair::generate`]).
pub const DEFAULT_MODULUS_BITS: usize = 512;

/// DER prefix of the SHA-256 `DigestInfo` structure used in EMSA-PKCS1-v1_5.
const SHA256_DIGEST_INFO_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// Errors produced by RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// The requested modulus size is below [`MIN_MODULUS_BITS`].
    ModulusTooSmall(usize),
    /// A signature failed structural validation (wrong length).
    MalformedSignature {
        /// Expected signature length in bytes (the modulus length).
        expected: usize,
        /// Actual length received.
        got: usize,
    },
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::ModulusTooSmall(bits) => write!(
                f,
                "modulus of {bits} bits is below the minimum of {MIN_MODULUS_BITS} bits"
            ),
            RsaError::MalformedSignature { expected, got } => {
                write!(f, "signature is {got} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RsaError {}

/// An RSA public key (modulus and public exponent).  The verification
/// context is precomputed once, so checking a signature never rebuilds
/// Montgomery state — the directory hands out clones of one shared context.
#[derive(Clone)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    modulus_bytes: usize,
    ctx: Arc<MontgomeryCtx>,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The context is derived from `n`; the key material alone decides
        // equality.
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RsaPublicKey")
            .field("bits", &(self.modulus_bytes * 8))
            .finish()
    }
}

impl RsaPublicKey {
    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent (65537 for keys generated here).
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Length of signatures produced under this key, in bytes.
    pub fn signature_len(&self) -> usize {
        self.modulus_bytes
    }

    /// A stable fingerprint of the public key (SHA-256 of `n || e`), used as
    /// a compact principal identifier on the wire.
    pub fn fingerprint(&self) -> Digest {
        let mut data = self.n.to_bytes_be();
        data.extend_from_slice(&self.e.to_bytes_be());
        sha256(&data)
    }

    /// Verifies `signature` over `message` (the message is hashed with
    /// SHA-256 internally).
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        if signature.len() != self.modulus_bytes {
            return false;
        }
        let sig_int = BigUint::from_bytes_be(signature);
        if sig_int >= self.n {
            return false;
        }
        let recovered = self.ctx.mod_pow(&sig_int, &self.e);
        let expected = emsa_pkcs1_v15_encode(&sha256(message), self.modulus_bytes);
        recovered.to_bytes_be_padded(self.modulus_bytes) == expected
    }
}

/// CRT private-key material: the prime factorisation of the modulus plus
/// the reduced exponents and Montgomery contexts that let a signature be
/// computed as two half-width exponentiations instead of one full-width one.
struct CrtKey {
    p: BigUint,
    q: BigUint,
    /// `d mod (p - 1)`.
    d_p: BigUint,
    /// `d mod (q - 1)`.
    d_q: BigUint,
    /// `q^{-1} mod p` (the Garner recombination coefficient).
    q_inv: BigUint,
    p_ctx: MontgomeryCtx,
    q_ctx: MontgomeryCtx,
}

/// An RSA key pair.  The private exponentiation contexts — the full-width
/// one and one per CRT prime — are precomputed so signing does not
/// repeatedly rebuild Montgomery state.
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
    ctx: Arc<MontgomeryCtx>,
    crt: Arc<CrtKey>,
}

impl Clone for RsaKeyPair {
    fn clone(&self) -> Self {
        RsaKeyPair {
            public: self.public.clone(),
            d: self.d.clone(),
            ctx: Arc::clone(&self.ctx),
            crt: Arc::clone(&self.crt),
        }
    }
}

impl fmt::Debug for RsaKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RsaKeyPair")
            .field("bits", &(self.public.modulus_bytes * 8))
            .finish()
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of `modulus_bits` bits.
    pub fn generate<R: RngCore>(modulus_bits: usize, rng: &mut R) -> Result<Self, RsaError> {
        if modulus_bits < MIN_MODULUS_BITS {
            return Err(RsaError::ModulusTooSmall(modulus_bits));
        }
        let e = BigUint::from_u64(65537);
        loop {
            let (p, q) = gen_prime_pair(modulus_bits, rng);
            let n = p.mul(&q);
            if n.bit_len() != modulus_bits {
                continue;
            }
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let Some(d) = e.mod_inverse(&phi) else {
                // e shares a factor with phi; extremely unlikely, retry.
                continue;
            };
            let Some(q_inv) = q.mod_inverse(&p) else {
                // Distinct primes are always coprime; unreachable, but a
                // retry is strictly safer than a panic here.
                continue;
            };
            let modulus_bytes = modulus_bits.div_ceil(8);
            let ctx = Arc::new(MontgomeryCtx::new(&n).expect("RSA modulus is odd"));
            let crt = CrtKey {
                d_p: d.rem(&p.sub(&one)),
                d_q: d.rem(&q.sub(&one)),
                q_inv,
                p_ctx: MontgomeryCtx::new(&p).expect("RSA primes are odd"),
                q_ctx: MontgomeryCtx::new(&q).expect("RSA primes are odd"),
                p,
                q,
            };
            return Ok(RsaKeyPair {
                public: RsaPublicKey {
                    n,
                    e,
                    modulus_bytes,
                    ctx: Arc::clone(&ctx),
                },
                d,
                ctx,
                crt: Arc::new(crt),
            });
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Length of signatures produced by this key, in bytes.
    pub fn signature_len(&self) -> usize {
        self.public.modulus_bytes
    }

    /// Signs `message` (hashed with SHA-256 internally) and returns a
    /// signature of exactly [`Self::signature_len`] bytes.
    ///
    /// The private exponentiation runs over the CRT: two half-width
    /// exponentiations modulo `p` and `q`, recombined with Garner's formula
    /// — algebraically identical to the full-width `m^d mod n`, so the
    /// signature bytes match [`Self::sign_classic`] exactly, at roughly a
    /// quarter of the cost.  Debug builds re-derive the signature through
    /// the classic path as a fault check (a single arithmetic slip in a CRT
    /// half leaks the factorisation of `n` to anyone holding the bad
    /// signature).
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let encoded = emsa_pkcs1_v15_encode(&sha256(message), self.public.modulus_bytes);
        let m = BigUint::from_bytes_be(&encoded);
        debug_assert!(m < self.public.n);
        let crt = &self.crt;
        let m_p = crt.p_ctx.mod_pow(&m, &crt.d_p);
        let m_q = crt.q_ctx.mod_pow(&m, &crt.d_q);
        // Garner: sig = m_q + q * (q_inv * (m_p - m_q) mod p).
        let m_q_mod_p = m_q.rem(&crt.p);
        let diff = if m_p >= m_q_mod_p {
            m_p.sub(&m_q_mod_p)
        } else {
            crt.p.sub(&m_q_mod_p).add(&m_p)
        };
        let h = crt.p_ctx.mod_mul(&crt.q_inv, &diff);
        let sig = m_q.add(&h.mul(&crt.q));
        debug_assert_eq!(
            sig,
            self.ctx.mod_pow(&m, &self.d),
            "CRT signature diverged from the classic full-width path"
        );
        sig.to_bytes_be_padded(self.public.modulus_bytes)
    }

    /// Signs through the classic full-width private exponentiation
    /// (`m^d mod n`), bypassing the CRT.
    ///
    /// Byte-for-byte identical to [`Self::sign`]; kept public as the
    /// reference the CRT equivalence proptest and the `crypto_says` bench
    /// compare against.
    pub fn sign_classic(&self, message: &[u8]) -> Vec<u8> {
        let encoded = emsa_pkcs1_v15_encode(&sha256(message), self.public.modulus_bytes);
        let m = BigUint::from_bytes_be(&encoded);
        self.ctx
            .mod_pow(&m, &self.d)
            .to_bytes_be_padded(self.public.modulus_bytes)
    }

    /// Convenience: verifies with this key pair's public half.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        self.public.verify(message, signature)
    }
}

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `em_len` bytes:
/// `0x00 || 0x01 || 0xFF.. || 0x00 || DigestInfo || digest`.
fn emsa_pkcs1_v15_encode(digest: &Digest, em_len: usize) -> Vec<u8> {
    let t_len = SHA256_DIGEST_INFO_PREFIX.len() + digest.len();
    assert!(
        em_len >= t_len + 11,
        "modulus too small for PKCS#1 v1.5 encoding"
    );
    let mut em = Vec::with_capacity(em_len);
    em.push(0x00);
    em.push(0x01);
    em.resize(em_len - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO_PREFIX);
    em.extend_from_slice(digest);
    debug_assert_eq!(em.len(), em_len);
    em
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(1234);
        RsaKeyPair::generate(512, &mut rng).unwrap()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        let msg = b"reachable(a,c) asserted by a";
        let sig = kp.sign(msg);
        assert_eq!(sig.len(), kp.signature_len());
        assert!(kp.verify(msg, &sig));
    }

    #[test]
    fn verify_rejects_tampered_message_and_signature() {
        let kp = keypair();
        let msg = b"link(a,b)";
        let sig = kp.sign(msg);
        assert!(!kp.verify(b"link(a,c)", &sig));

        let mut bad_sig = sig.clone();
        bad_sig[10] ^= 0x40;
        assert!(!kp.verify(msg, &bad_sig));

        // Wrong length is rejected outright.
        assert!(!kp.verify(msg, &sig[1..]));
    }

    #[test]
    fn verify_rejects_signature_from_other_key() {
        let kp1 = keypair();
        let mut rng = StdRng::seed_from_u64(999);
        let kp2 = RsaKeyPair::generate(512, &mut rng).unwrap();
        let msg = b"bestPath(a,d,[a,b,d],2)";
        let sig = kp2.sign(msg);
        assert!(kp2.verify(msg, &sig));
        assert!(!kp1.verify(msg, &sig));
    }

    #[test]
    fn generation_rejects_small_modulus() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            RsaKeyPair::generate(128, &mut rng).unwrap_err(),
            RsaError::ModulusTooSmall(128)
        );
    }

    #[test]
    fn signature_is_deterministic() {
        // PKCS#1 v1.5 signing is deterministic, which the provenance layer
        // relies on for idempotent re-signing of identical assertions.
        let kp = keypair();
        let msg = b"path(a,c,[a,b,c],7)";
        assert_eq!(kp.sign(msg), kp.sign(msg));
    }

    #[test]
    fn fingerprint_is_stable_and_distinct() {
        let kp1 = keypair();
        let mut rng = StdRng::seed_from_u64(31337);
        let kp2 = RsaKeyPair::generate(512, &mut rng).unwrap();
        assert_eq!(
            kp1.public_key().fingerprint(),
            kp1.public_key().fingerprint()
        );
        assert_ne!(
            kp1.public_key().fingerprint(),
            kp2.public_key().fingerprint()
        );
    }

    #[test]
    fn emsa_encoding_structure() {
        let em = emsa_pkcs1_v15_encode(&sha256(b"x"), 64);
        assert_eq!(em.len(), 64);
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x01);
        assert_eq!(em[64 - 32 - 19 - 1], 0x00);
        assert!(em[2..64 - 32 - 19 - 1].iter().all(|&b| b == 0xff));
    }

    #[test]
    fn empty_message_signs() {
        let kp = keypair();
        let sig = kp.sign(b"");
        assert!(kp.verify(b"", &sig));
        assert!(!kp.verify(b" ", &sig));
    }

    #[test]
    fn public_key_equality_ignores_the_cached_context() {
        let kp = keypair();
        let a = kp.public_key().clone();
        let b = RsaPublicKey {
            n: a.n.clone(),
            e: a.e.clone(),
            modulus_bytes: a.modulus_bytes,
            ctx: Arc::new(MontgomeryCtx::new(&a.n).unwrap()),
        };
        assert_eq!(a, b);
        let other = {
            let mut rng = StdRng::seed_from_u64(999);
            RsaKeyPair::generate(512, &mut rng).unwrap()
        };
        assert_ne!(&a, other.public_key());
    }

    #[test]
    fn known_answer_signature_vector() {
        // Pinned wire bytes of the seed-1234 512-bit key signing a fixed
        // message.  Any change to key generation, EMSA encoding or the
        // private exponentiation — CRT or otherwise — that alters
        // signatures on the wire trips this before it can ship.
        let kp = keypair();
        let sig = kp.sign(b"reachable(a,c) asserted by a");
        assert_eq!(hex(&sig), KNOWN_ANSWER_SIG_HEX);
        assert_eq!(
            hex(&kp.sign_classic(b"reachable(a,c) asserted by a")),
            KNOWN_ANSWER_SIG_HEX
        );
    }

    const KNOWN_ANSWER_SIG_HEX: &str = "08e743aa0f10268eb3024152be4e1af5fab0e43b6e307ae639582f4290dde480edde75c5e132aa27967a489312478105d8059852481727307159bd90f180554c";

    proptest! {
        // Key generation dominates each case; a handful of cases over
        // several sizes and seeds is plenty for an algebraic identity.
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn prop_crt_sign_matches_classic_byte_for_byte(
            bits_sel in 0usize..3,
            seed in 0u64..1_000,
            msg in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let bits = [512usize, 576, 704][bits_sel];
            let mut rng = StdRng::seed_from_u64(seed);
            let kp = RsaKeyPair::generate(bits, &mut rng).unwrap();
            let sig = kp.sign(&msg);
            prop_assert_eq!(&sig, &kp.sign_classic(&msg));
            prop_assert!(kp.verify(&msg, &sig));
        }
    }
}
