//! Session-keyed authenticated channels: amortising RSA to one handshake
//! per directed link.
//!
//! At the `Rsa` `says` level every shipment frame pays a full private-key
//! exponentiation on the sender and a public-key exponentiation on the
//! receiver.  The paper's assurance spectrum (Section 2.2) and the standard
//! secure-channel designs of the declarative-networking literature point at
//! the classic amortisation: authenticate the *channel* once with RSA, then
//! MAC every subsequent frame under a session key.  Steady-state crypto cost
//! drops from `O(frames × RSA)` to `O(links × RSA + frames × HMAC)`.
//!
//! The protocol, per directed `(src, dst)` link:
//!
//! 1. **Handshake** — the initiator builds a [`HandshakeTranscript`] binding
//!    *both* principals and a channel epoch, derives a fresh HMAC-SHA-256
//!    session key from the transcript, and signs the transcript with its RSA
//!    key ([`ChannelHandshake`]).  The receiver checks the signature against
//!    `src`'s public key and that it is the named recipient, then derives
//!    the same key.  Because the transcript names the asserting principal,
//!    the receiver still learns *who* `says` every tuple on the channel.
//! 2. **Frames** — every subsequent frame is authenticated with one HMAC
//!    over `epoch ‖ counter ‖ payload` ([`ChannelProof`]).  The per-channel
//!    counter is strictly monotonic: a replayed (or reordered) frame carries
//!    a stale counter and is rejected ([`SaysError::ReplayedFrame`]).
//! 3. **Rebind** — after [`SenderChannel::rebind_after`] frames the channel
//!    [`SenderChannel::expired`]s and the initiator must perform a fresh
//!    handshake at the next epoch; frames MAC'd under a stale epoch are
//!    rejected.
//!
//! Key derivation mirrors the MAC-secret model of [`crate::principal`]: the
//! simulator provisions per-principal secrets through the key authority
//! (standing in for the pairwise secrets a real deployment would negotiate),
//! so both ends can derive `HMAC(src_secret, transcript)` while the RSA
//! signature over the transcript is what actually authenticates the channel
//! binding.  What the simulation preserves is the paper-relevant *cost
//! profile*: one RSA operation per link per epoch, one HMAC per frame.

use crate::hmac::{constant_time_eq, hmac_sha256, HmacKey, TAG_LEN};
use crate::principal::PrincipalId;
use crate::says::SaysError;

/// Default number of frames a channel may authenticate before it must be
/// rebound with a fresh handshake.  High enough that default experiment runs
/// perform exactly one handshake per live directed link; tests lower it to
/// exercise the rebind path.
pub const DEFAULT_REBIND_AFTER_FRAMES: u64 = 1 << 16;

/// Domain separator prefixed to every handshake transcript so transcript
/// signatures can never be confused with frame or tuple signatures.
const TRANSCRIPT_TAG: &[u8; 8] = b"pasnchan";

/// The signed content of a key-establishment handshake: both principals and
/// the channel epoch, canonically encoded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HandshakeTranscript {
    /// The initiating (sending) principal — the `P` of every `P says tuple`
    /// subsequently asserted on this channel.
    pub src: PrincipalId,
    /// The receiving principal the channel is bound to.
    pub dst: PrincipalId,
    /// Channel epoch: 0 for the first binding of a link, incremented on
    /// every rebind.  Folded into the key derivation, so each epoch uses a
    /// fresh session key.
    pub epoch: u32,
}

impl HandshakeTranscript {
    /// Canonical byte encoding — the exact bytes signed by the initiator
    /// and fed to the key derivation.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(TRANSCRIPT_TAG.len() + 12);
        v.extend_from_slice(TRANSCRIPT_TAG);
        v.extend_from_slice(&self.src.0.to_be_bytes());
        v.extend_from_slice(&self.dst.0.to_be_bytes());
        v.extend_from_slice(&self.epoch.to_be_bytes());
        v
    }

    /// Encoded transcript length in bytes (charged on the wire).
    pub fn wire_len(&self) -> usize {
        TRANSCRIPT_TAG.len() + 12
    }
}

/// Derives the channel's HMAC-SHA-256 session key from the initiator's MAC
/// secret and the full transcript — fresh per `(src, dst, epoch)`.
pub fn derive_session_key(
    src_secret: &[u8; TAG_LEN],
    transcript: &HandshakeTranscript,
) -> [u8; TAG_LEN] {
    hmac_sha256(src_secret, &transcript.encode())
}

/// A key-establishment handshake message: the transcript plus the
/// initiator's RSA signature over its canonical encoding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChannelHandshake {
    /// The signed transcript.
    pub transcript: HandshakeTranscript,
    /// RSA signature by `transcript.src` over [`HandshakeTranscript::encode`].
    pub signature: Vec<u8>,
}

impl ChannelHandshake {
    /// Bytes this handshake occupies on the wire (transcript + signature);
    /// the message header is charged separately by `net::wire`.
    pub fn wire_len(&self) -> usize {
        self.transcript.wire_len() + self.signature.len()
    }

    /// Whether this handshake's epoch clears the receiver's epoch floor.
    ///
    /// Receivers raise the floor past every retired channel epoch —
    /// including crash-style evictions, where the old channel died with
    /// frames still in flight — so a replayed (or delayed) handshake from
    /// before the crash can never reinstall a retired epoch and roll the
    /// replay counter back.  A sender rebinding after a crash picks a fresh
    /// epoch above its own send floor, which this check then admits.
    pub fn supersedes(&self, floor: u32) -> bool {
        self.transcript.epoch >= floor
    }
}

/// The MAC authenticating one frame on an established channel: the channel
/// epoch, the frame's position in the channel's monotonic counter, and the
/// HMAC tag over `epoch ‖ counter ‖ payload`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelProof {
    /// Epoch of the channel the frame was MAC'd on.
    pub epoch: u32,
    /// Monotonic per-channel frame counter (starts at 0 per epoch).
    pub counter: u64,
    /// `HMAC-SHA256(session_key, epoch ‖ counter ‖ payload)`.
    pub tag: [u8; TAG_LEN],
}

/// Bytes a [`ChannelProof`] adds to a frame on the wire.
pub const CHANNEL_PROOF_LEN: usize = 4 + 8 + TAG_LEN;

/// `HMAC(session_key, epoch ‖ counter ‖ payload)`, streamed straight into
/// the precomputed-key hasher — no intermediate buffer, and the two
/// padded-key compressions were paid once at channel establishment.
fn frame_tag(key: &HmacKey, epoch: u32, counter: u64, payload: &[u8]) -> [u8; TAG_LEN] {
    let mut inner = key.begin();
    inner.update(&epoch.to_be_bytes());
    inner.update(&counter.to_be_bytes());
    inner.update(payload);
    key.finish(inner)
}

/// The initiator's half of an established channel: MACs outgoing frames
/// under the session key, advancing the monotonic counter.
#[derive(Clone, Debug)]
pub struct SenderChannel {
    key: HmacKey,
    transcript: HandshakeTranscript,
    next_counter: u64,
    rebind_after: u64,
}

impl SenderChannel {
    pub(crate) fn new(
        key: [u8; TAG_LEN],
        transcript: HandshakeTranscript,
        rebind_after: u64,
    ) -> Self {
        SenderChannel {
            key: HmacKey::new(&key),
            transcript,
            next_counter: 0,
            rebind_after: rebind_after.max(1),
        }
    }

    /// The channel's epoch.
    pub fn epoch(&self) -> u32 {
        self.transcript.epoch
    }

    /// The receiving principal this channel is bound to.
    pub fn peer(&self) -> PrincipalId {
        self.transcript.dst
    }

    /// Frames MAC'd on this channel so far.
    pub fn frames_sent(&self) -> u64 {
        self.next_counter
    }

    /// True once the channel has authenticated `rebind_after` frames and
    /// must be rebound (fresh handshake, next epoch) before the next frame.
    pub fn expired(&self) -> bool {
        self.next_counter >= self.rebind_after
    }

    /// MACs one frame payload, consuming the next counter value.
    ///
    /// Callers must check [`SenderChannel::expired`] first and rebind when
    /// the channel is exhausted; MAC'ing past the limit is a logic error.
    pub fn mac_frame(&mut self, payload: &[u8]) -> ChannelProof {
        debug_assert!(!self.expired(), "channel must be rebound before reuse");
        let counter = self.next_counter;
        self.next_counter += 1;
        ChannelProof {
            epoch: self.transcript.epoch,
            counter,
            tag: frame_tag(&self.key, self.transcript.epoch, counter, payload),
        }
    }
}

/// The receiver's half of an established channel: verifies frame MACs and
/// enforces the strictly monotonic counter (replay protection).
#[derive(Clone, Debug)]
pub struct ReceiverChannel {
    key: HmacKey,
    transcript: HandshakeTranscript,
    last_counter: Option<u64>,
}

impl ReceiverChannel {
    pub(crate) fn new(key: [u8; TAG_LEN], transcript: HandshakeTranscript) -> Self {
        ReceiverChannel {
            key: HmacKey::new(&key),
            transcript,
            last_counter: None,
        }
    }

    /// The asserting principal every frame on this channel speaks for.
    pub fn peer(&self) -> PrincipalId {
        self.transcript.src
    }

    /// The channel's epoch.
    pub fn epoch(&self) -> u32 {
        self.transcript.epoch
    }

    /// Verifies one frame: the proof must carry a valid MAC over
    /// `epoch ‖ counter ‖ payload` under this channel's session key, this
    /// channel's epoch, and a counter strictly greater than any previously
    /// accepted one.
    ///
    /// The MAC is checked first and unconditionally: a rejected frame costs
    /// the verifier exactly one HMAC regardless of the rejection reason
    /// (uniform work, and what the engine's `hmac_ops` accounting charges).
    /// A frame MAC'd under a stale epoch fails the MAC check itself — the
    /// session key is fresh per epoch.
    pub fn verify_frame(&mut self, payload: &[u8], proof: &ChannelProof) -> Result<(), SaysError> {
        let src = self.transcript.src;
        let expected = frame_tag(&self.key, proof.epoch, proof.counter, payload);
        if !constant_time_eq(&expected, &proof.tag) || proof.epoch != self.transcript.epoch {
            return Err(SaysError::InvalidProof(src));
        }
        if let Some(last) = self.last_counter {
            if proof.counter <= last {
                return Err(SaysError::ReplayedFrame {
                    principal: src,
                    counter: proof.counter,
                    last_accepted: last,
                });
            }
        }
        self.last_counter = Some(proof.counter);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::{KeyAuthority, Principal};
    use crate::says::{Authenticator, SaysError, SaysLevel};

    fn setup() -> (Authenticator, Authenticator, Authenticator) {
        let principals = vec![
            Principal::new(0u32, "a"),
            Principal::new(1u32, "b"),
            Principal::new(2u32, "m"),
        ];
        let auth = KeyAuthority::provision(&principals, 17).unwrap();
        let mk = |id: u32| {
            Authenticator::new(
                auth.keyring_for(PrincipalId(id)).unwrap(),
                SaysLevel::Session,
            )
        };
        (mk(0), mk(1), mk(2))
    }

    #[test]
    fn handshake_establishes_a_working_channel() {
        let (a, b, _) = setup();
        let (handshake, mut tx) = a.open_channel(PrincipalId(1), 0, 100);
        assert_eq!(handshake.transcript.src, PrincipalId(0));
        assert_eq!(handshake.transcript.dst, PrincipalId(1));
        assert!(handshake.wire_len() > handshake.transcript.wire_len());
        let mut rx = b.accept_channel(&handshake).unwrap();
        assert_eq!(rx.peer(), PrincipalId(0));

        for payload in [b"frame one".as_ref(), b"frame two", b"frame three"] {
            let proof = tx.mac_frame(payload);
            assert!(rx.verify_frame(payload, &proof).is_ok());
        }
        assert_eq!(tx.frames_sent(), 3);
        assert!(!tx.expired());
    }

    #[test]
    fn tampered_frames_are_rejected() {
        let (a, b, _) = setup();
        let (handshake, mut tx) = a.open_channel(PrincipalId(1), 0, 100);
        let mut rx = b.accept_channel(&handshake).unwrap();
        let proof = tx.mac_frame(b"reachable(a,c)");
        assert_eq!(
            rx.verify_frame(b"reachable(a,d)", &proof),
            Err(SaysError::InvalidProof(PrincipalId(0)))
        );
        // The genuine frame still verifies (the forgery consumed no counter).
        assert!(rx.verify_frame(b"reachable(a,c)", &proof).is_ok());
    }

    #[test]
    fn replayed_frames_are_rejected() {
        let (a, b, _) = setup();
        let (handshake, mut tx) = a.open_channel(PrincipalId(1), 0, 100);
        let mut rx = b.accept_channel(&handshake).unwrap();
        let first = tx.mac_frame(b"one");
        let second = tx.mac_frame(b"two");
        assert!(rx.verify_frame(b"one", &first).is_ok());
        assert!(rx.verify_frame(b"two", &second).is_ok());
        // Replaying either earlier frame presents a stale counter.
        assert_eq!(
            rx.verify_frame(b"two", &second),
            Err(SaysError::ReplayedFrame {
                principal: PrincipalId(0),
                counter: 1,
                last_accepted: 1,
            })
        );
        assert!(matches!(
            rx.verify_frame(b"one", &first),
            Err(SaysError::ReplayedFrame { .. })
        ));
    }

    #[test]
    fn handshake_signed_by_the_wrong_principal_is_rejected() {
        let (a, b, m) = setup();
        // Mallory signs a transcript claiming to bind a→b.
        let (mut forged, _) = m.open_channel(PrincipalId(1), 0, 100);
        forged.transcript.src = PrincipalId(0);
        assert_eq!(
            b.accept_channel(&forged).unwrap_err(),
            SaysError::BadHandshake(PrincipalId(0))
        );
        // A handshake for a different recipient is refused too.
        let (to_mallory, _) = a.open_channel(PrincipalId(2), 0, 100);
        assert_eq!(
            b.accept_channel(&to_mallory).unwrap_err(),
            SaysError::BadHandshake(PrincipalId(0))
        );
        // An unknown initiator cannot be checked at all.
        let (mut unknown, _) = a.open_channel(PrincipalId(1), 0, 100);
        unknown.transcript.src = PrincipalId(9);
        assert_eq!(
            b.accept_channel(&unknown).unwrap_err(),
            SaysError::UnknownPrincipal(PrincipalId(9))
        );
    }

    #[test]
    fn channels_expire_and_rebind_at_the_next_epoch() {
        let (a, b, _) = setup();
        let (handshake, mut tx) = a.open_channel(PrincipalId(1), 0, 2);
        let mut rx = b.accept_channel(&handshake).unwrap();
        let p0 = tx.mac_frame(b"x");
        let p1 = tx.mac_frame(b"y");
        assert!(tx.expired());
        assert!(rx.verify_frame(b"x", &p0).is_ok());
        assert!(rx.verify_frame(b"y", &p1).is_ok());

        // Rebind: next epoch, fresh key, counter restarts.
        let (rebind, mut tx2) = a.open_channel(PrincipalId(1), 1, 2);
        let mut rx2 = b.accept_channel(&rebind).unwrap();
        assert_eq!(tx2.epoch(), 1);
        let p2 = tx2.mac_frame(b"z");
        assert_eq!(p2.counter, 0);
        assert!(rx2.verify_frame(b"z", &p2).is_ok());
        // A frame MAC'd under the old epoch is refused on the new channel.
        let stale = {
            let (old, mut tx_old) = a.open_channel(PrincipalId(1), 0, 2);
            let _ = old;
            tx_old.mac_frame(b"z")
        };
        assert_eq!(
            rx2.verify_frame(b"z", &stale),
            Err(SaysError::InvalidProof(PrincipalId(0)))
        );
    }

    #[test]
    fn replayed_handshakes_cannot_roll_a_channel_back() {
        let (a, b, _) = setup();
        // Epoch 0 lives its life: handshake, frames, expiry.
        let (old_handshake, mut tx0) = a.open_channel(PrincipalId(1), 0, 2);
        let mut rx = b.accept_channel(&old_handshake).unwrap();
        let captured = tx0.mac_frame(b"secret frame");
        assert!(rx.verify_frame(b"secret frame", &captured).is_ok());

        // The link rebinds to epoch 1.
        let (rebind, _tx1) = a.open_channel(PrincipalId(1), 1, 2);
        rx = b.accept_rebind(&rebind, &rx).unwrap();
        assert_eq!(rx.epoch(), 1);

        // An attacker re-delivers the recorded epoch-0 handshake: still
        // validly signed, but its epoch does not supersede the channel —
        // rejected, so the captured epoch-0 frame stays dead.
        assert_eq!(
            b.accept_rebind(&old_handshake, &rx).unwrap_err(),
            SaysError::ReplayedHandshake {
                principal: PrincipalId(0),
                epoch: 0,
                current_epoch: 1,
            }
        );
        assert_eq!(
            rx.verify_frame(b"secret frame", &captured),
            Err(SaysError::InvalidProof(PrincipalId(0)))
        );
        // A same-epoch replay of the current handshake is refused too, and
        // a rebind from a different initiator never matches the link.
        assert!(matches!(
            b.accept_rebind(&rebind, &rx).unwrap_err(),
            SaysError::ReplayedHandshake { .. }
        ));
        let (_, _, m) = setup();
        let (cross, _) = m.open_channel(PrincipalId(1), 5, 2);
        assert_eq!(
            b.accept_rebind(&cross, &rx).unwrap_err(),
            SaysError::BadHandshake(PrincipalId(2))
        );
    }

    #[test]
    fn session_keys_are_fresh_per_link_and_epoch() {
        let (a, _, _) = setup();
        let secret = *a.keyring().own_mac_secret();
        let key = |dst: u32, epoch: u32| {
            derive_session_key(
                &secret,
                &HandshakeTranscript {
                    src: PrincipalId(0),
                    dst: PrincipalId(dst),
                    epoch,
                },
            )
        };
        assert_ne!(key(1, 0), key(2, 0), "distinct links, distinct keys");
        assert_ne!(key(1, 0), key(1, 1), "rebinding refreshes the key");
        assert_eq!(key(1, 0), key(1, 0), "derivation is deterministic");
    }
}
