//! Probabilistic primality testing and prime generation for RSA key
//! generation.
//!
//! Candidates are first sieved against a table of small primes, then subjected
//! to Miller–Rabin with random bases.  The number of rounds defaults to a
//! value giving a negligible error probability for the key sizes used by the
//! simulator.

use crate::bigint::{BigUint, MontgomeryCtx};
use rand::RngCore;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Default number of Miller–Rabin rounds.
pub const DEFAULT_ROUNDS: usize = 24;

/// Returns `true` if `n` is (very probably) prime.
///
/// Uses trial division by [`SMALL_PRIMES`] followed by `rounds` iterations of
/// Miller–Rabin with uniformly random bases.
pub fn is_probable_prime<R: RngCore>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from_u64(p);
        if n == &p_big {
            return true;
        }
        if n.mod_u64(p) == 0 {
            return false;
        }
    }
    // n is odd and > 281 here; write n - 1 = d * 2^s with d odd.
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_one = n.sub(&one);
    let mut d = n_minus_one.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr_bits(1);
        s += 1;
    }

    let ctx = match MontgomeryCtx::new(n) {
        Some(c) => c,
        None => return false, // even composite
    };

    'witness: for _ in 0..rounds {
        // Base in [2, n-2].
        let upper = n_minus_one.sub(&one); // n - 2
        let mut a = BigUint::random_below(&upper, rng);
        if a < two {
            a = two.clone();
        }
        let mut x = ctx.mod_pow(&a, &d);
        if x == one || x == n_minus_one {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.mod_mul(&x, &x);
            if x == n_minus_one {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The top two bits are forced to one (so that the product of two such primes
/// has exactly `2 * bits` bits, as required for a fixed-size RSA modulus) and
/// the low bit is forced to one.
pub fn gen_prime<R: RngCore>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 16, "prime size of {bits} bits is too small");
    loop {
        // random_with_bits already forces the top bit; additionally force the
        // second-highest bit (so a product of two such primes keeps its
        // nominal width) and the low bit (odd).  Setting an unset bit by
        // addition cannot carry.
        let mut candidate = BigUint::random_with_bits(bits, rng);
        if bits >= 2 && !candidate.bit(bits - 2) {
            candidate = candidate.add(&BigUint::one().shl_bits(bits - 2));
        }
        if candidate.is_even() {
            candidate = candidate.add_u64(1);
        }
        debug_assert_eq!(candidate.bit_len(), bits);
        if is_probable_prime(&candidate, DEFAULT_ROUNDS, rng) {
            return candidate;
        }
    }
}

/// Returns `true` when `|p - q|` fits in `min_diff_bits` bits or fewer —
/// primes close enough that Fermat factorisation of `p * q` starts from
/// `ceil(sqrt(n))` and wins almost immediately.  Equal primes are the
/// degenerate case (`|p - q| = 0`).
pub fn primes_too_close(p: &BigUint, q: &BigUint, min_diff_bits: usize) -> bool {
    let diff = if p >= q { p.sub(q) } else { q.sub(p) };
    diff.bit_len() <= min_diff_bits
}

/// Generates a "safe enough" prime pair for an RSA modulus of `modulus_bits`
/// bits: the two primes must differ by more than `2^(modulus_bits/2 - 100)`
/// (the FIPS 186-5 closeness bound), or `q` is re-drawn.
///
/// Two independently drawn primes of this size violate the bound with
/// probability around `2^-100`, so the rejection loop effectively never
/// re-draws — seeded key generation stays deterministic in practice.
pub fn gen_prime_pair<R: RngCore>(modulus_bits: usize, rng: &mut R) -> (BigUint, BigUint) {
    let half = modulus_bits / 2;
    let min_diff_bits = half.saturating_sub(100).max(1);
    let p = gen_prime(half, rng);
    loop {
        let q = gen_prime(modulus_bits - half, rng);
        if !primes_too_close(&p, &q, min_diff_bits) {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xdecafbad)
    }

    #[test]
    fn small_primes_are_prime() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 101, 257, 65537, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_are_rejected() {
        let mut r = rng();
        for c in [
            0u64,
            1,
            4,
            6,
            9,
            15,
            21,
            91,
            561,
            341,
            645,
            1_000_000_006,
            65537 * 3,
        ] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_are_rejected() {
        // Classic Fermat pseudoprimes that Miller–Rabin must still catch.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 62745] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "Carmichael number {c} should be composite"
            );
        }
    }

    #[test]
    fn known_large_prime_accepted() {
        // 2^127 - 1 is a Mersenne prime.
        let m127 = BigUint::one().shl_bits(127).sub(&BigUint::one());
        let mut r = rng();
        assert!(is_probable_prime(&m127, 16, &mut r));
        // 2^128 - 1 is composite.
        let c = BigUint::one().shl_bits(128).sub(&BigUint::one());
        assert!(!is_probable_prime(&c, 16, &mut r));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut r = rng();
        for bits in [64usize, 96, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            assert!(is_probable_prime(&p, 16, &mut r));
        }
    }

    #[test]
    fn prime_pair_is_distinct_and_sized() {
        let mut r = rng();
        let (p, q) = gen_prime_pair(256, &mut r);
        assert_ne!(p, q);
        let n = p.mul(&q);
        assert_eq!(n.bit_len(), 256);
    }

    #[test]
    fn close_prime_pairs_are_detected() {
        // Twin primes: the closest distinct pair possible.
        let p = BigUint::from_u64(1_000_000_007);
        let q = BigUint::from_u64(1_000_000_009);
        assert!(primes_too_close(&p, &q, 28));
        assert!(primes_too_close(&q, &p, 28)); // symmetric
        assert!(primes_too_close(&p, &p, 1)); // equal primes always fail
                                              // |p - q| = 2 fits in 2 bits, so a 1-bit bound passes it.
        assert!(!primes_too_close(&p, &q, 1));
        // A pair a full half-width apart clears any realistic bound.
        let far = BigUint::from_u64(3);
        assert!(!primes_too_close(&p, &far, 28));
    }

    #[test]
    fn generated_pairs_respect_the_closeness_bound() {
        let mut r = rng();
        for modulus_bits in [256usize, 512] {
            let (p, q) = gen_prime_pair(modulus_bits, &mut r);
            let bound = (modulus_bits / 2).saturating_sub(100).max(1);
            assert!(!primes_too_close(&p, &q, bound));
        }
    }
}
